//! Deployment configurations (§4.1 "Memory pool configurations").
//!
//! The paper's microbenchmarks compare three 4-server deployments with a
//! total memory budget of 96 GB:
//!
//! | name | local per server | pool | notes |
//! |---|---|---|---|
//! | Logical | 24 GB (all poolable) | union of shared regions | |
//! | Physical cache | 8 GB (used as a cache of the pool) | 64 GB appliance | upfront memcpy per miss |
//! | Physical no-cache | 8 GB (unused by the benchmark) | 64 GB appliance | all pool accesses remote |
//!
//! Both UPI-emulated links (Link0, Link1) are supported, as are custom
//! budgets for sweeps.

use lmp_fabric::LinkProfile;
use lmp_physical::AdmissionPolicy;
use lmp_mem::DramProfile;
use lmp_sim::units::GIB;

/// Which pool architecture a cluster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolArch {
    /// Logical memory pool: shared regions carved from server DRAM.
    Logical,
    /// Physical pool with server-local memory used as a frame cache.
    PhysicalCache,
    /// Physical pool accessed directly; local memory unused.
    PhysicalNoCache,
}

impl PoolArch {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            PoolArch::Logical => "Logical",
            PoolArch::PhysicalCache => "Physical cache",
            PoolArch::PhysicalNoCache => "Physical no-cache",
        }
    }
}

/// Full description of a deployment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Architecture under test.
    pub arch: PoolArch,
    /// Number of servers (the paper uses 4).
    pub servers: u32,
    /// Cores per server (the paper's Xeon Gold 5120 has 14).
    pub cores_per_server: u32,
    /// Fabric link class.
    pub link: LinkProfile,
    /// Server DRAM timing.
    pub dram: DramProfile,
    /// Per-server memory for `Logical` (all poolable), or per-server local
    /// memory for the physical setups.
    pub local_per_server: u64,
    /// Physical pool capacity (ignored for `Logical`).
    pub pool_capacity: u64,
    /// Per-server translation-cache capacity (Logical only).
    pub tlb_capacity: usize,
    /// Cache admission policy (PhysicalCache only).
    pub cache_policy: AdmissionPolicy,
}

impl ClusterConfig {
    /// The paper's §4.1 configuration for `arch` over `link`:
    /// 96 GB total; Logical = 4×24 GB, physical = 4×8 GB + 64 GB pool.
    pub fn paper(arch: PoolArch, link: LinkProfile) -> Self {
        let (local, pool) = match arch {
            PoolArch::Logical => (24 * GIB, 0),
            PoolArch::PhysicalCache | PoolArch::PhysicalNoCache => (8 * GIB, 64 * GIB),
        };
        ClusterConfig {
            arch,
            servers: 4,
            cores_per_server: 14,
            link,
            dram: DramProfile::xeon_gold_5120(),
            local_per_server: local,
            pool_capacity: pool,
            tlb_capacity: 1024,
            cache_policy: AdmissionPolicy::PinUntilFull,
        }
    }

    /// Total memory bought for the deployment.
    pub fn total_memory(&self) -> u64 {
        self.servers as u64 * self.local_per_server + self.pool_capacity
    }

    /// Memory available for pooled data.
    pub fn disaggregated_capacity(&self) -> u64 {
        match self.arch {
            PoolArch::Logical => self.servers as u64 * self.local_per_server,
            _ => self.pool_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budgets_match_section_4_1() {
        for arch in [
            PoolArch::Logical,
            PoolArch::PhysicalCache,
            PoolArch::PhysicalNoCache,
        ] {
            let c = ClusterConfig::paper(arch, LinkProfile::link1());
            assert_eq!(c.total_memory(), 96 * GIB, "{arch:?} total budget");
            assert_eq!(c.servers, 4);
            assert_eq!(c.cores_per_server, 14);
        }
        let logical = ClusterConfig::paper(PoolArch::Logical, LinkProfile::link0());
        assert_eq!(logical.disaggregated_capacity(), 96 * GIB);
        let phys = ClusterConfig::paper(PoolArch::PhysicalCache, LinkProfile::link0());
        assert_eq!(phys.disaggregated_capacity(), 64 * GIB);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(PoolArch::Logical.label(), "Logical");
        assert_eq!(PoolArch::PhysicalCache.label(), "Physical cache");
        assert_eq!(PoolArch::PhysicalNoCache.label(), "Physical no-cache");
    }
}
