//! Runnable clusters.
//!
//! A [`Cluster`] instantiates one of the three §4.1 deployments behind a
//! single interface: allocate a vector in disaggregated memory, scan it
//! from a server with N cores, repeat. The benchmark harness compares
//! architectures by running the identical workload on each.

use crate::config::{ClusterConfig, PoolArch};
use lmp_compute::{scan_ranges, DistVector, ScanOutcome, ScanParams};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, NodeId};
use lmp_mem::{FrameId, FRAME_BYTES};
use lmp_physical::{PhysicalPool, PoolCache};
use lmp_sim::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Why a workload cannot run on a deployment (the Figure 5 outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The deployment's disaggregated memory cannot hold the working set.
    Infeasible {
        /// Bytes requested.
        requested: u64,
        /// Bytes available in the pool.
        available: u64,
    },
    /// An underlying pool error.
    Pool(PoolError),
    /// The handle does not belong to this cluster's backend architecture,
    /// or a backend invariant broke mid-operation.
    Backend(&'static str),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Infeasible {
                requested,
                available,
            } => write!(
                f,
                "workload infeasible: needs {} but the pool holds {}",
                fmt_bytes(*requested),
                fmt_bytes(*available)
            ),
            ClusterError::Pool(e) => write!(f, "{e}"),
            ClusterError::Backend(what) => write!(f, "cluster backend error: {what}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<PoolError> for ClusterError {
    fn from(e: PoolError) -> Self {
        ClusterError::Pool(e)
    }
}

/// A vector allocated in a cluster's disaggregated memory.
#[derive(Debug)]
pub enum VectorHandle {
    /// Logical pool: striped segments.
    Logical(DistVector),
    /// Physical pool: a run of pool frames.
    Physical {
        /// The pool frames backing the vector, in order.
        frames: Vec<FrameId>,
        /// Vector length in bytes.
        len: u64,
    },
}

impl VectorHandle {
    /// Vector length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            VectorHandle::Logical(v) => v.len(),
            VectorHandle::Physical { len, .. } => *len,
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum Backend {
    Logical(LogicalPool),
    Physical {
        pool: PhysicalPool,
        caches: Option<Vec<PoolCache>>,
    },
}

/// The autonomous failure-handling stack of a logical cluster: lease
/// detector, epoch-versioned membership, protection bookkeeping, and the
/// throttled recovery orchestrator. Driven by [`Cluster::tick_health`].
struct SelfHealing {
    detector: FailureDetector,
    orchestrator: RecoveryOrchestrator,
    protection: ProtectionManager,
}

/// One of the paper's deployments, ready to run workloads.
// Manual impl below: the backend holds full memory images, which are not
// useful (or cheap) to format.
pub struct Cluster {
    config: ClusterConfig,
    fabric: Fabric,
    backend: Backend,
    /// Fabric id of the pool appliance (physical architectures only).
    pool_node: Option<NodeId>,
    /// Present once [`Cluster::enable_self_healing`] ran (Logical only).
    healing: Option<SelfHealing>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("arch", &self.config.arch)
            .field("pool_node", &self.pool_node)
            .field("self_healing", &self.healing.is_some())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Build a cluster for `config`.
    pub fn new(config: ClusterConfig) -> Self {
        match config.arch {
            PoolArch::Logical => {
                let fabric = Fabric::new(config.link.clone(), config.servers);
                let pool = LogicalPool::new(PoolConfig {
                    servers: config.servers,
                    capacity_per_server: config.local_per_server,
                    shared_per_server: config.local_per_server,
                    dram: config.dram.clone(),
                    tlb_capacity: config.tlb_capacity,
                });
                Cluster {
                    config,
                    fabric,
                    backend: Backend::Logical(pool),
                    pool_node: None,
                    healing: None,
                }
            }
            PoolArch::PhysicalCache | PoolArch::PhysicalNoCache => {
                // The pool attaches as one extra fabric node.
                let pool_node = NodeId(config.servers);
                let fabric = Fabric::new(config.link.clone(), config.servers + 1);
                let pool =
                    PhysicalPool::new(pool_node, config.pool_capacity, config.dram.clone());
                let caches = if config.arch == PoolArch::PhysicalCache {
                    Some(
                        (0..config.servers)
                            .map(|s| {
                                PoolCache::with_policy(
                                    NodeId(s),
                                    config.local_per_server,
                                    config.dram.clone(),
                                    config.cache_policy,
                                )
                            })
                            .collect(),
                    )
                } else {
                    None
                };
                Cluster {
                    config,
                    fabric,
                    backend: Backend::Physical { pool, caches },
                    pool_node: Some(pool_node),
                    healing: None,
                }
            }
        }
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The fabric (telemetry).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The logical pool, when this cluster is a Logical deployment.
    pub fn logical_pool(&mut self) -> Option<&mut LogicalPool> {
        match &mut self.backend {
            Backend::Logical(p) => Some(p),
            _ => None,
        }
    }

    /// Bytes of disaggregated memory still free.
    pub fn pool_available(&self) -> u64 {
        match &self.backend {
            Backend::Logical(p) => (0..self.config.servers)
                .map(|s| p.free_shared_frames(NodeId(s)) * FRAME_BYTES)
                .sum(),
            Backend::Physical { pool, .. } => pool.available_bytes(),
        }
    }

    /// Allocate a `len`-byte vector in disaggregated memory, preferring
    /// locality to `server` where the architecture allows it.
    ///
    /// Returns [`ClusterError::Infeasible`] when the pool cannot hold it —
    /// for the physical architectures this is a hard wall (Figure 5);
    /// a logical pool can instead grow shared regions (§4.5).
    pub fn alloc_vector(
        &mut self,
        len: u64,
        server: NodeId,
    ) -> Result<VectorHandle, ClusterError> {
        let available = self.pool_available();
        if len > available {
            return Err(ClusterError::Infeasible {
                requested: len,
                available,
            });
        }
        match &mut self.backend {
            Backend::Logical(pool) => {
                let v = DistVector::place_local_first(pool, len, server)
                    .map_err(ClusterError::Pool)?;
                Ok(VectorHandle::Logical(v))
            }
            Backend::Physical { pool, .. } => {
                let frames = pool
                    .alloc_frames(len.div_ceil(FRAME_BYTES))
                    .map_err(|_| ClusterError::Infeasible {
                        requested: len,
                        available,
                    })?;
                Ok(VectorHandle::Physical { frames, len })
            }
        }
    }

    /// Free a vector.
    pub fn free_vector(&mut self, handle: VectorHandle) -> Result<(), ClusterError> {
        match (&mut self.backend, handle) {
            (Backend::Logical(pool), VectorHandle::Logical(v)) => {
                v.free(pool)?;
                Ok(())
            }
            (Backend::Physical { pool, caches }, VectorHandle::Physical { frames, .. }) => {
                for f in frames {
                    pool.free_frame(f)
                        .map_err(|_| ClusterError::Backend("vector frame was not allocated"))?;
                }
                if let Some(caches) = caches {
                    for c in caches {
                        c.clear();
                    }
                }
                Ok(())
            }
            _ => Err(ClusterError::Backend("handle from another cluster architecture")),
        }
    }

    /// Scan the whole vector from `server` with `params.cores` parallel
    /// streams — the §4.1 aggregation microbenchmark's access pattern.
    pub fn scan_vector(
        &mut self,
        start: SimTime,
        server: NodeId,
        handle: &VectorHandle,
        params: ScanParams,
    ) -> Result<ScanOutcome, ClusterError> {
        match (&mut self.backend, handle) {
            (Backend::Logical(pool), VectorHandle::Logical(v)) => {
                let ranges: Vec<(SegmentId, u64, u64)> =
                    v.stripes.iter().map(|(_, s, l)| (*s, 0, *l)).collect();
                Ok(scan_ranges(
                    pool,
                    &mut self.fabric,
                    start,
                    server,
                    &ranges,
                    params,
                )?)
            }
            (Backend::Physical { pool, caches }, VectorHandle::Physical { frames, len }) => {
                if self.pool_node.is_none() {
                    return Err(ClusterError::Backend("physical cluster has no pool node"));
                }
                Ok(scan_physical(
                    pool,
                    caches.as_mut(),
                    &mut self.fabric,
                    start,
                    server,
                    frames,
                    *len,
                    params,
                ))
            }
            _ => Err(ClusterError::Backend("handle from another cluster architecture")),
        }
    }

    /// Arm the self-healing stack: a lease failure detector over the
    /// fabric plus an automatic recovery orchestrator, with leases
    /// starting at `now`. Logical deployments only (a physical pool is a
    /// single appliance; its failure model is out of scope here).
    /// Returns whether the stack was armed.
    pub fn enable_self_healing(&mut self, cfg: HealthConfig, now: SimTime) -> bool {
        if !matches!(self.backend, Backend::Logical(_)) {
            return false;
        }
        self.healing = Some(SelfHealing {
            detector: FailureDetector::new(cfg, self.config.servers, now),
            orchestrator: RecoveryOrchestrator::new(),
            protection: ProtectionManager::new(),
        });
        true
    }

    /// Whether self-healing is armed.
    pub fn self_healing_enabled(&self) -> bool {
        self.healing.is_some()
    }

    /// The protection manager, once self-healing is armed. Use it to
    /// mirror or parity-protect segments; the orchestrator repairs them
    /// automatically after a confirmed crash.
    pub fn protection(&mut self) -> Option<&mut ProtectionManager> {
        self.healing.as_mut().map(|h| &mut h.protection)
    }

    /// The epoch-versioned membership view, once self-healing is armed.
    pub fn membership(&self) -> Option<&Membership> {
        self.healing.as_ref().map(|h| h.detector.membership())
    }

    /// Current membership epoch, once self-healing is armed.
    pub fn membership_epoch(&self) -> Option<u64> {
        self.healing.as_ref().map(|h| h.detector.epoch())
    }

    /// The detector's current view of `node`, once self-healing is armed.
    pub fn node_health(&self, node: NodeId) -> Option<NodeHealth> {
        self.healing.as_ref().map(|h| h.detector.health(node))
    }

    /// Segments still queued for automatic repair.
    pub fn pending_repairs(&self) -> usize {
        self.healing
            .as_ref()
            .map_or(0, |h| h.orchestrator.pending_segments())
    }

    /// Mirror `seg` onto another server, tracked by the self-healing
    /// protection manager. Requires self-healing to be armed.
    pub fn protect_mirror(
        &mut self,
        now: SimTime,
        seg: SegmentId,
    ) -> Result<SegmentId, ClusterError> {
        let (Some(h), Backend::Logical(pool)) = (self.healing.as_mut(), &mut self.backend)
        else {
            return Err(ClusterError::Pool(PoolError::UnknownSegment(seg)));
        };
        h.protection
            .mirror(pool, &mut self.fabric, now, seg)
            .map_err(ClusterError::Pool)
    }

    /// XOR-protect `members` with one parity segment, tracked by the
    /// self-healing protection manager. Requires self-healing to be armed.
    pub fn protect_parity(
        &mut self,
        now: SimTime,
        members: &[SegmentId],
    ) -> Result<GroupId, ClusterError> {
        let (Some(h), Backend::Logical(pool)) = (self.healing.as_mut(), &mut self.backend)
        else {
            return Err(ClusterError::Pool(PoolError::UnknownSegment(members[0])));
        };
        h.protection
            .protect_parity(pool, &mut self.fabric, now, members)
            .map_err(ClusterError::Pool)
    }

    /// Protected write: keeps the mirror replica and parity in sync.
    /// Requires self-healing to be armed.
    pub fn write_protected(
        &mut self,
        addr: LogicalAddr,
        data: &[u8],
    ) -> Result<WriteAmplification, ClusterError> {
        let (Some(h), Backend::Logical(pool)) = (self.healing.as_mut(), &mut self.backend)
        else {
            return Err(ClusterError::Pool(PoolError::UnknownSegment(addr.segment)));
        };
        h.protection.write(pool, addr, data).map_err(ClusterError::Pool)
    }

    /// One self-healing tick at `now`: sweep every node with heartbeat
    /// probes, react to confirmations by queueing repair work, and run one
    /// throttled repair step. Call on the detector's `probe_interval`
    /// cadence. Returns the health transitions this tick produced.
    pub fn tick_health(&mut self, now: SimTime) -> Vec<HealthEvent> {
        let (Some(h), Backend::Logical(pool)) = (self.healing.as_mut(), &mut self.backend)
        else {
            return Vec::new();
        };
        let events = h.detector.probe_tick(&mut self.fabric, now);
        for ev in &events {
            if let HealthEvent::ConfirmedDown { node, epoch, .. } = ev {
                h.orchestrator.on_confirmed_down(pool, *node, *epoch);
            }
        }
        if h.orchestrator.has_pending() {
            h.orchestrator.step(
                pool,
                &mut self.fabric,
                &mut h.protection,
                now,
                h.detector.config().recovery_batch,
            );
        }
        events
    }

    /// Serve a read through the degraded path (mirror, or on-the-fly XOR
    /// of parity survivors) when the primary copy is crashed or
    /// unreachable. Requires self-healing to be armed.
    pub fn read_degraded(
        &mut self,
        now: SimTime,
        requester: NodeId,
        addr: LogicalAddr,
        len: u64,
    ) -> Result<DegradedRead, ClusterError> {
        let (Some(h), Backend::Logical(pool)) = (self.healing.as_mut(), &mut self.backend)
        else {
            return Err(ClusterError::Pool(PoolError::UnknownSegment(addr.segment)));
        };
        h.protection
            .read_degraded(pool, &mut self.fabric, now, requester, addr, len)
            .map_err(ClusterError::Pool)
    }

    /// Fault injection: crash `server` — its pool shard dies and its
    /// fabric port drops. Returns the segments that were mapped to it
    /// (Logical only). The detector notices on its own; nothing else is
    /// told.
    pub fn inject_crash(&mut self, server: NodeId) -> Option<Vec<SegmentId>> {
        let Backend::Logical(pool) = &mut self.backend else {
            return None;
        };
        let affected = pool.crash_server(server);
        self.fabric.set_port_down(server, true);
        Some(affected)
    }

    /// Fault injection: cold-restart `server` — empty memory, port back
    /// up. With self-healing armed the restart goes through the epoch
    /// rule: the node re-enters with whatever epoch it last joined under,
    /// so segments already rebuilt elsewhere cannot be resurrected.
    pub fn inject_restart(&mut self, server: NodeId) -> Option<RejoinOutcome> {
        let Backend::Logical(pool) = &mut self.backend else {
            return None;
        };
        self.fabric.set_port_down(server, false);
        match self.healing.as_mut() {
            Some(h) => {
                let claimed = h.detector.membership().incarnation(server);
                Some(h.orchestrator.admit_rejoin(
                    pool,
                    h.detector.membership(),
                    server,
                    claimed,
                    false,
                ))
            }
            None => {
                pool.restart_server(server);
                None
            }
        }
    }

    /// Run the paper's aggregation microbenchmark: `reps` sequential scans
    /// of a `size`-byte vector from `server`, reporting per-rep and average
    /// bandwidth.
    pub fn run_aggregation(
        &mut self,
        size: u64,
        server: NodeId,
        reps: u32,
    ) -> Result<AggregationResult, ClusterError> {
        let handle = self.alloc_vector(size, server)?;
        let params = ScanParams::with_cores(self.config.cores_per_server);
        let mut now = SimTime::ZERO;
        let mut per_rep = Vec::with_capacity(reps as usize);
        for _ in 0..reps {
            let rep_start = now;
            let out = self.scan_vector(now, server, &handle, params)?;
            now = out.complete;
            per_rep.push(
                Bandwidth::measured(size, now.duration_since(rep_start)).as_gbps(),
            );
        }
        self.free_vector(handle)?;
        let avg = per_rep.iter().sum::<f64>() / per_rep.len() as f64;
        Ok(AggregationResult {
            arch: self.config.arch,
            size,
            avg_bandwidth_gbps: avg,
            per_rep_gbps: per_rep,
        })
    }
}

/// Result of the aggregation microbenchmark on one deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregationResult {
    /// Architecture measured.
    pub arch: PoolArch,
    /// Vector size in bytes.
    pub size: u64,
    /// Average bandwidth over all repetitions (the paper's reported
    /// metric).
    pub avg_bandwidth_gbps: f64,
    /// Per-repetition bandwidth.
    pub per_rep_gbps: Vec<f64>,
}

/// Multi-core closed-loop scan over physical-pool frames, with or without
/// the local cache.
#[allow(clippy::too_many_arguments)]
fn scan_physical(
    pool: &mut PhysicalPool,
    mut caches: Option<&mut Vec<PoolCache>>,
    fabric: &mut Fabric,
    start: SimTime,
    server: NodeId,
    frames: &[FrameId],
    len: u64,
    params: ScanParams,
) -> ScanOutcome {
    let ScanParams { cores, chunk, per_core } = params;
    // lmp-lint: allow(no-panic) — ScanParams construction validates these;
    // a zero here is a bench-configuration bug, not a recoverable fault.
    assert!(cores > 0 && chunk > 0);
    let mut outcome = ScanOutcome {
        complete: start,
        local_bytes: 0,
        remote_bytes: 0,
    };
    let per_core_len = len / cores as u64;
    let remainder = len % cores as u64;
    let mut heap: BinaryHeap<Reverse<(SimTime, u64, u64, u64)>> = BinaryHeap::new();
    let mut cursor = 0u64;
    for c in 0..cores as u64 {
        let slice = per_core_len + if c < remainder { 1 } else { 0 };
        if slice > 0 {
            heap.push(Reverse((start, c, cursor, slice)));
        }
        cursor += slice;
    }
    while let Some(Reverse((now, c, pos, left))) = heap.pop() {
        let frame_idx = (pos / FRAME_BYTES) as usize;
        let within = pos % FRAME_BYTES;
        // Clamp to frame boundary so cache accesses are per-frame.
        let this = left.min(chunk).min(FRAME_BYTES - within);
        let frame = frames[frame_idx];
        let complete = match caches.as_deref_mut() {
            Some(caches) => {
                let cache = &mut caches[server.0 as usize];
                let a = cache.access(fabric, pool, now, frame, this);
                if a.hit {
                    outcome.local_bytes += this;
                } else {
                    outcome.remote_bytes += this;
                }
                a.complete
            }
            None => {
                outcome.remote_bytes += this;
                pool.read(fabric, now, server, this, Some(frame)).complete
            }
        };
        outcome.complete = outcome.complete.max(complete);
        if left > this {
            // Pacing: the core also has to consume what it fetched.
            let next = complete.max(now + per_core.time_to_transfer(this));
            heap.push(Reverse((next, c, pos + this, left - this)));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_sim::units::GIB;

    fn paper(arch: PoolArch) -> Cluster {
        Cluster::new(ClusterConfig::paper(arch, LinkProfile::link1()))
    }

    /// Shrunk configs (frames instead of GBs) for fast tests.
    fn small(arch: PoolArch) -> Cluster {
        let mut cfg = ClusterConfig::paper(arch, LinkProfile::link1());
        cfg.local_per_server = match arch {
            PoolArch::Logical => 24 * FRAME_BYTES,
            _ => 8 * FRAME_BYTES,
        };
        cfg.pool_capacity = match arch {
            PoolArch::Logical => 0,
            _ => 64 * FRAME_BYTES,
        };
        Cluster::new(cfg)
    }

    #[test]
    fn pool_capacity_by_architecture() {
        assert_eq!(paper(PoolArch::Logical).pool_available(), 96 * GIB);
        assert_eq!(paper(PoolArch::PhysicalCache).pool_available(), 64 * GIB);
        assert_eq!(paper(PoolArch::PhysicalNoCache).pool_available(), 64 * GIB);
    }

    #[test]
    fn oversized_vector_infeasible_on_physical_feasible_on_logical() {
        // The Figure 5 scenario, shrunk: 96 "GB" of frames.
        let mut logical = small(PoolArch::Logical);
        let mut physical = small(PoolArch::PhysicalNoCache);
        let size = 96 * FRAME_BYTES;
        assert!(logical.alloc_vector(size, NodeId(0)).is_ok());
        let err = physical.alloc_vector(size, NodeId(0)).unwrap_err();
        assert!(matches!(err, ClusterError::Infeasible { .. }));
    }

    #[test]
    fn scan_surfaces_crash_as_recoverable_error() {
        let mut c = small(PoolArch::Logical);
        // 40 frames against a 24-frame local share forces striping across
        // servers.
        let h = c.alloc_vector(40 * FRAME_BYTES, NodeId(0)).unwrap();
        let victim = match &h {
            VectorHandle::Logical(v) => v
                .stripes
                .iter()
                .map(|(n, _, _)| *n)
                .find(|n| *n != NodeId(0))
                .expect("vector spans servers"),
            _ => unreachable!(),
        };
        c.logical_pool().unwrap().crash_server(victim);
        // The scan fails with a recoverable error, never a panic.
        let err = c
            .scan_vector(SimTime::ZERO, NodeId(0), &h, ScanParams::default())
            .unwrap_err();
        assert!(matches!(err, ClusterError::Pool(PoolError::SegmentLost(_))));
    }

    #[test]
    fn small_vector_local_on_logical() {
        let mut c = small(PoolArch::Logical);
        let h = c.alloc_vector(8 * FRAME_BYTES, NodeId(0)).unwrap();
        let out = c
            .scan_vector(SimTime::ZERO, NodeId(0), &h, ScanParams { cores: 4, chunk: FRAME_BYTES, ..ScanParams::default() })
            .unwrap();
        assert_eq!(out.remote_bytes, 0, "8 frames fit in server 0's share");
        c.free_vector(h).unwrap();
        assert_eq!(c.pool_available(), 96 * FRAME_BYTES);
    }

    #[test]
    fn nocache_scan_is_all_remote() {
        let mut c = small(PoolArch::PhysicalNoCache);
        let h = c.alloc_vector(8 * FRAME_BYTES, NodeId(0)).unwrap();
        let out = c
            .scan_vector(SimTime::ZERO, NodeId(0), &h, ScanParams { cores: 4, chunk: FRAME_BYTES, ..ScanParams::default() })
            .unwrap();
        assert_eq!(out.local_bytes, 0);
        assert_eq!(out.remote_bytes, 8 * FRAME_BYTES);
    }

    #[test]
    fn cache_scan_warms_up() {
        let mut c = small(PoolArch::PhysicalCache);
        let h = c.alloc_vector(4 * FRAME_BYTES, NodeId(0)).unwrap();
        let cold = c
            .scan_vector(SimTime::ZERO, NodeId(0), &h, ScanParams { cores: 2, chunk: FRAME_BYTES, ..ScanParams::default() })
            .unwrap();
        assert_eq!(cold.remote_bytes, 4 * FRAME_BYTES, "cold pass misses");
        let warm = c
            .scan_vector(cold.complete, NodeId(0), &h, ScanParams { cores: 2, chunk: FRAME_BYTES, ..ScanParams::default() })
            .unwrap();
        assert_eq!(warm.local_bytes, 4 * FRAME_BYTES, "warm pass hits");
    }

    #[test]
    fn aggregation_result_shape() {
        let mut c = small(PoolArch::Logical);
        let r = c.run_aggregation(8 * FRAME_BYTES, NodeId(0), 3).unwrap();
        assert_eq!(r.per_rep_gbps.len(), 3);
        assert!(r.avg_bandwidth_gbps > 0.0);
        assert_eq!(r.arch, PoolArch::Logical);
    }

    #[test]
    fn self_healing_arms_only_on_logical() {
        let mut c = small(PoolArch::PhysicalNoCache);
        assert!(!c.enable_self_healing(HealthConfig::default_chaos(), SimTime::ZERO));
        let mut c = small(PoolArch::Logical);
        assert!(c.enable_self_healing(HealthConfig::default_chaos(), SimTime::ZERO));
        assert!(c.self_healing_enabled());
        assert_eq!(c.membership_epoch(), Some(0));
    }

    #[test]
    fn cluster_heals_a_crash_without_manual_recover() {
        let mut c = small(PoolArch::Logical);
        let cfg = HealthConfig::default_chaos();
        assert!(c.enable_self_healing(cfg, SimTime::ZERO));

        // A mirrored segment homed on server 1.
        let seg = c
            .logical_pool()
            .unwrap()
            .alloc(FRAME_BYTES, Placement::On(NodeId(1)))
            .unwrap();
        let addr = LogicalAddr::new(seg, 17);
        c.protect_mirror(SimTime::ZERO, seg).unwrap();
        c.write_protected(addr, b"healed").unwrap();

        c.inject_crash(NodeId(1));
        assert_eq!(c.node_health(NodeId(1)), Some(NodeHealth::Healthy));

        // The detection-to-repair gap: a plain read faults, the degraded
        // path serves the same bytes from the replica.
        assert!(matches!(
            c.logical_pool().unwrap().read_bytes(addr, 6),
            Err(PoolError::SegmentLost(_))
        ));
        let r = c.read_degraded(SimTime::ZERO, NodeId(0), addr, 6).unwrap();
        assert_eq!(r.bytes, b"healed");
        let degraded_served = true;

        // Tick the detector until it confirms and the orchestrator heals.
        let mut now = SimTime::ZERO;
        for k in 1..=40u64 {
            now = SimTime::ZERO + cfg.probe_interval * k;
            c.tick_health(now);
        }
        // Confirmed, repaired, epoch advanced — no manual recover() call.
        assert_eq!(c.node_health(NodeId(1)), Some(NodeHealth::Down));
        assert_eq!(c.membership_epoch(), Some(1));
        assert_eq!(c.pending_repairs(), 0);
        let pool = c.logical_pool().unwrap();
        assert_eq!(pool.read_bytes(addr, 6).unwrap(), b"healed");
        assert_ne!(pool.holder_of(seg), Some(NodeId(1)));

        // Restart: the node rejoins under a fresh epoch; the rebuilt copy
        // stays authoritative.
        let out = c.inject_restart(NodeId(1)).unwrap();
        assert!(!out.resurrected);
        c.tick_health(now + cfg.probe_interval);
        assert_eq!(c.node_health(NodeId(1)), Some(NodeHealth::Healthy));
        assert_eq!(c.membership_epoch(), Some(2));
        assert!(degraded_served, "the recovery window was exercised");
    }

    #[test]
    fn paper_scale_8gb_logical_vs_nocache() {
        // The Figure 2 headline at full scale: 8 GB vector, Link1.
        let mut logical = paper(PoolArch::Logical);
        let mut nocache = paper(PoolArch::PhysicalNoCache);
        let size = 8 * GIB;
        let l = logical.run_aggregation(size, NodeId(0), 2).unwrap();
        let n = nocache.run_aggregation(size, NodeId(0), 2).unwrap();
        let ratio = l.avg_bandwidth_gbps / n.avg_bandwidth_gbps;
        assert!(
            ratio > 3.5 && ratio < 5.5,
            "expected ~4.7x advantage, got {ratio:.2} ({:.1} vs {:.1})",
            l.avg_bandwidth_gbps,
            n.avg_bandwidth_gbps
        );
    }
}
