// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-cluster — runnable deployments
//!
//! Wires the substrates into the three §4.1 deployments (Logical,
//! Physical cache, Physical no-cache) behind one interface, so the
//! benchmark harness runs the identical workload on each and the
//! differences are purely architectural.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod config;

pub use cluster::{AggregationResult, Cluster, ClusterError, VectorHandle};
pub use config::{ClusterConfig, PoolArch};
