// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests over whole deployments: physical resource caps and
//! architecture orderings hold for arbitrary configurations.

use lmp_cluster::{Cluster, ClusterConfig, PoolArch};
use lmp_fabric::{LinkProfile, NodeId};
use lmp_mem::FRAME_BYTES;
use proptest::prelude::*;

fn cluster(arch: PoolArch, local_frames: u64, pool_frames: u64) -> Cluster {
    let mut cfg = ClusterConfig::paper(arch, LinkProfile::link1());
    cfg.local_per_server = local_frames * FRAME_BYTES;
    cfg.pool_capacity = pool_frames * FRAME_BYTES;
    Cluster::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Aggregation bandwidth never exceeds what the architecture's
    /// resources permit: local DRAM for logical, and for physical setups
    /// the sum of local DRAM (cache hits) and the pool uplink.
    #[test]
    fn bandwidth_physically_plausible(
        size_frames in 1u64..48,
        arch_idx in 0usize..3,
    ) {
        let arch = [PoolArch::Logical, PoolArch::PhysicalCache, PoolArch::PhysicalNoCache][arch_idx];
        let (local, pool) = match arch {
            PoolArch::Logical => (16, 0),
            _ => (8, 48),
        };
        let mut c = cluster(arch, local, pool);
        match c.run_aggregation(size_frames * FRAME_BYTES, NodeId(0), 2) {
            Ok(r) => {
                prop_assert!(r.avg_bandwidth_gbps > 0.0);
                // A vector spanning local and remote shares streams from
                // both memory systems in parallel, so the hard cap is
                // DRAM + link, not DRAM alone.
                prop_assert!(
                    r.avg_bandwidth_gbps <= 97.0 + 21.5,
                    "{arch:?} exceeded DRAM+link: {}",
                    r.avg_bandwidth_gbps
                );
                if arch == PoolArch::PhysicalNoCache {
                    prop_assert!(
                        r.avg_bandwidth_gbps <= 21.5,
                        "no-cache exceeded Link1: {}",
                        r.avg_bandwidth_gbps
                    );
                }
            }
            Err(_) => {
                // Infeasible is only legitimate when the pool really is
                // too small.
                let capacity = match arch {
                    PoolArch::Logical => 4 * local,
                    _ => pool,
                };
                prop_assert!(size_frames > capacity, "spurious infeasibility");
            }
        }
    }

    /// The logical pool dominates physical no-cache for every feasible
    /// size (the Figure 2–4 ordering, generalized).
    #[test]
    fn logical_dominates_nocache(size_frames in 1u64..40) {
        let mut logical = cluster(PoolArch::Logical, 12, 0);
        let mut nocache = cluster(PoolArch::PhysicalNoCache, 8, 48);
        let size = size_frames * FRAME_BYTES;
        let l = logical.run_aggregation(size, NodeId(0), 2);
        let n = nocache.run_aggregation(size, NodeId(0), 2);
        if let (Ok(l), Ok(n)) = (l, n) {
            prop_assert!(
                l.avg_bandwidth_gbps >= n.avg_bandwidth_gbps * 0.99,
                "logical {} < no-cache {} at {size_frames} frames",
                l.avg_bandwidth_gbps,
                n.avg_bandwidth_gbps
            );
        }
    }

    /// alloc/free round-trips restore full pool capacity on every
    /// architecture.
    #[test]
    fn alloc_free_conserves_capacity(
        sizes in proptest::collection::vec(1u64..16, 1..8),
        arch_idx in 0usize..3,
    ) {
        let arch = [PoolArch::Logical, PoolArch::PhysicalCache, PoolArch::PhysicalNoCache][arch_idx];
        let (local, pool) = match arch {
            PoolArch::Logical => (16, 0),
            _ => (8, 48),
        };
        let mut c = cluster(arch, local, pool);
        let before = c.pool_available();
        let mut handles = Vec::new();
        for s in sizes {
            if let Ok(h) = c.alloc_vector(s * FRAME_BYTES, NodeId(0)) {
                handles.push(h);
            }
        }
        for h in handles {
            c.free_vector(h).unwrap();
        }
        prop_assert_eq!(c.pool_available(), before);
    }
}
