// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-harness — deterministic fault injection for the LMP stack
//!
//! A FoundationDB-style simulation-testing layer over the repo's
//! discrete-event engine. The paper's §5 lists the failure remedies an
//! LMP must get right — masking via replication or erasure coding,
//! exceptions for the rest — and this crate is how we trust that code:
//! every fault schedule is a pure function of a seed, every run produces
//! a digestible event trace, and cross-layer invariants are checked both
//! during recovery and at the end of the run.
//!
//! * [`plan`] — [`plan::FaultPlan`]: seeded schedules of server crashes,
//!   restarts, port flaps, and link-latency degradation.
//! * [`retry`] — [`retry::RetryPolicy`]: exponential backoff in simulated
//!   time; transient vs. permanent error classification.
//! * [`invariants`] — translation consistency, recovery completeness,
//!   write-amplification accounting, coherence mutual exclusion under
//!   snoop-filter overflow, lease-confirmation audit, epoch monotonicity,
//!   degraded-read byte identity, and telemetry conservation (the
//!   instrument books must balance in every rack snapshot).
//! * [`trace`] — [`trace::ChaosTrace`]: the append-only run log and its
//!   digest (same seed ⇒ same digest, byte for byte).
//! * [`scenario`] — the seven shipped chaos scenarios and their runner,
//!   including the self-healing pair (autonomous crash recovery, and
//!   flap absorption without spurious recovery).
//!
//! ```
//! use lmp_harness::prelude::*;
//!
//! let a = run_scenario(Scenario::CrashMirrored, 7);
//! let b = run_scenario(Scenario::CrashMirrored, 7);
//! assert!(a.passed());
//! assert_eq!(a.digest, b.digest, "determinism is the contract");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod invariants;
pub mod plan;
pub mod retry;
pub mod scenario;
pub mod trace;

/// Commonly used items.
pub mod prelude {
    pub use crate::invariants::{
        check_coherence_mutex, check_degraded_read, check_epoch_monotonic,
        check_lease_confirmations, check_recovery, check_telemetry_conservation,
        check_translation, check_write_amplification, CheckResult, ContentModel, WriteLedger,
    };
    pub use crate::plan::{Fault, FaultPlan, PlanConfig, PlannedFault};
    pub use crate::retry::{access_with_retry, is_retryable, retry, RetryOutcome, RetryPolicy};
    pub use crate::scenario::{run_scenario, ChaosReport, Scenario};
    pub use crate::trace::ChaosTrace;
}

pub use prelude::*;
