//! Cross-layer invariant checkers.
//!
//! Each checker states one property the system must hold under any fault
//! schedule, and verifies it against an independently maintained model —
//! never against the implementation's own bookkeeping alone:
//!
//! * **Translation consistency** — every live segment's two-level
//!   translation agrees from every server, and the bytes read through the
//!   logical address match a shadow copy maintained by the workload.
//! * **Recovery completeness** — after a crash, every protected segment is
//!   restored byte-identical at its old logical address, and the
//!   [`RecoveryReport`] names exactly the affected segments.
//! * **Write-amplification accounting** — protection never writes more
//!   (or fewer) extra bytes than its contract: one replica or one parity
//!   update per protected write.
//! * **Coherence mutual exclusion** — a spinlock on the coherent region
//!   still excludes under snoop-filter overflow (back-invalidation).
//! * **Lease confirmation audit** — the failure detector never confirms a
//!   node Down while any probe of it succeeded inside the lease window,
//!   verified against the detector's own probe evidence log.
//! * **Epoch monotonicity** — every confirmed membership transition
//!   (ConfirmedDown, Rejoined) carries a strictly larger epoch than the
//!   one before it.
//! * **Degraded-read identity** — bytes served from a mirror or rebuilt
//!   on the fly from parity survivors are identical to what the primary
//!   would have returned.

use lmp_coherence::{CoherenceConfig, CoherentRegion, SpinLock};
use lmp_core::prelude::*;
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Shadow copy of segment contents, maintained by the workload beside the
/// pool. `BTreeMap` so iteration (and therefore traces) is deterministic.
pub type ContentModel = BTreeMap<SegmentId, Vec<u8>>;

/// Verdict of one invariant check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResult {
    /// Which invariant was checked.
    pub name: &'static str,
    /// Whether it held.
    pub passed: bool,
    /// Failure explanation ("ok" when passed).
    pub detail: String,
}

impl CheckResult {
    /// A passing verdict.
    pub fn pass(name: &'static str) -> Self {
        CheckResult {
            name,
            passed: true,
            detail: "ok".into(),
        }
    }

    /// A failing verdict.
    pub fn fail(name: &'static str, detail: impl Into<String>) -> Self {
        CheckResult {
            name,
            passed: false,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for CheckResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}: {}",
            if self.passed { "PASS" } else { "FAIL" },
            self.name,
            self.detail
        )
    }
}

/// Translation consistency: for every segment in `model`, the global map
/// names a live holder, the holder's fine map covers the segment, every
/// server's (possibly stale) translation cache resolves to that holder
/// after at most one fault, and the bytes at the logical address are
/// byte-identical to the model.
pub fn check_translation(pool: &mut LogicalPool, model: &ContentModel) -> CheckResult {
    const NAME: &str = "translation-consistency";
    for (&seg, expect) in model {
        let holder = match pool.holder_of(seg) {
            Some(h) => h,
            None => return CheckResult::fail(NAME, format!("{seg}: no holder in global map")),
        };
        if pool.node(holder).is_failed() {
            return CheckResult::fail(NAME, format!("{seg}: holder {holder} is crashed"));
        }
        if !pool.local_map(holder).holds(seg) {
            return CheckResult::fail(
                NAME,
                format!("{seg}: holder {holder}'s fine map does not cover it"),
            );
        }
        for r in 0..pool.servers() {
            match pool.translate(lmp_fabric::NodeId(r), seg) {
                Ok((loc, _faults)) => {
                    if loc.server != holder {
                        return CheckResult::fail(
                            NAME,
                            format!(
                                "{seg}: server {r} translates to {} but holder is {holder}",
                                loc.server
                            ),
                        );
                    }
                }
                Err(e) => {
                    return CheckResult::fail(NAME, format!("{seg}: server {r} translate: {e}"))
                }
            }
        }
        match pool.read_bytes(LogicalAddr::new(seg, 0), expect.len() as u64) {
            Ok(got) if &got == expect => {}
            Ok(_) => {
                return CheckResult::fail(NAME, format!("{seg}: contents differ from model"))
            }
            Err(e) => return CheckResult::fail(NAME, format!("{seg}: read failed: {e}")),
        }
    }
    CheckResult::pass(NAME)
}

/// Recovery completeness: after recovering a crash that affected
/// `protected` (segments with surviving protection) and `unprotected`
/// segments, the report must restore every protected segment — naming it
/// in `promoted` or `reconstructed`, nothing else — report exactly the
/// unprotected ones lost, and every restored segment must read
/// byte-identical to the model at its unchanged logical address.
pub fn check_recovery(
    pool: &LogicalPool,
    report: &RecoveryReport,
    protected: &[SegmentId],
    unprotected: &[SegmentId],
    model: &ContentModel,
) -> CheckResult {
    const NAME: &str = "recovery-completeness";
    let mut restored: Vec<SegmentId> = report
        .promoted
        .iter()
        .chain(&report.reconstructed)
        .copied()
        .collect();
    restored.sort_unstable();
    let mut expect_restored = protected.to_vec();
    expect_restored.sort_unstable();
    if restored != expect_restored {
        return CheckResult::fail(
            NAME,
            format!("restored {restored:?}, expected exactly {expect_restored:?}"),
        );
    }
    let mut expect_lost = unprotected.to_vec();
    expect_lost.sort_unstable();
    if report.lost != expect_lost {
        return CheckResult::fail(
            NAME,
            format!("lost {:?}, expected exactly {expect_lost:?}", report.lost),
        );
    }
    for &seg in protected {
        let holder = match pool.holder_of(seg) {
            Some(h) => h,
            None => return CheckResult::fail(NAME, format!("restored {seg} has no holder")),
        };
        if pool.node(holder).is_failed() {
            return CheckResult::fail(NAME, format!("restored {seg} homed on crashed {holder}"));
        }
        let expect = match model.get(&seg) {
            Some(e) => e,
            None => return CheckResult::fail(NAME, format!("{seg} missing from model")),
        };
        match pool.read_bytes(LogicalAddr::new(seg, 0), expect.len() as u64) {
            Ok(got) if &got == expect => {}
            Ok(_) => {
                return CheckResult::fail(
                    NAME,
                    format!("restored {seg} is not byte-identical to pre-crash contents"),
                )
            }
            Err(e) => return CheckResult::fail(NAME, format!("restored {seg} unreadable: {e}")),
        }
    }
    CheckResult::pass(NAME)
}

/// Running tally of protected-write amplification, checked against the
/// protection contract: every write to a mirrored or parity-protected
/// segment incurs exactly `len` extra bytes; unprotected writes none.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteLedger {
    /// Writes recorded.
    pub writes: u64,
    /// Primary bytes written.
    pub primary_bytes: u64,
    /// Extra bytes the protection layer reported.
    pub actual_extra: u64,
    /// Extra bytes the contract predicts.
    pub expected_extra: u64,
}

impl WriteLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one write's [`WriteAmplification`]. `protected` is whether
    /// the segment had a mirror or parity group at write time.
    pub fn record(&mut self, amp: WriteAmplification, protected: bool) {
        self.writes += 1;
        self.primary_bytes += amp.primary_bytes;
        self.actual_extra += amp.extra_bytes;
        if protected {
            self.expected_extra += amp.primary_bytes;
        }
    }
}

/// Write-amplification accounting balances against the contract.
pub fn check_write_amplification(ledger: &WriteLedger) -> CheckResult {
    const NAME: &str = "write-amplification";
    if ledger.actual_extra == ledger.expected_extra {
        CheckResult::pass(NAME)
    } else {
        CheckResult::fail(
            NAME,
            format!(
                "{} writes: protection wrote {} extra bytes, contract predicts {}",
                ledger.writes, ledger.actual_extra, ledger.expected_extra
            ),
        )
    }
}

/// Lease confirmation audit: for every `ConfirmedDown { node, at }` in
/// `events`, no probe of `node` in the detector's evidence log may have
/// succeeded within the lease window `(at - lease, at]`. A violation means
/// the detector confirmed a node that was demonstrably alive — the
/// spurious-recovery bug leases exist to prevent.
pub fn check_lease_confirmations(
    probes: &[ProbeOutcome],
    events: &[HealthEvent],
    lease: SimDuration,
) -> CheckResult {
    const NAME: &str = "lease-confirmation-audit";
    for ev in events {
        let HealthEvent::ConfirmedDown { node, at, .. } = ev else {
            continue;
        };
        for p in probes {
            if p.node == *node && p.ok && p.at <= *at && at.duration_since(p.at) < lease {
                return CheckResult::fail(
                    NAME,
                    format!(
                        "{node} confirmed Down at {at} but a probe succeeded at {} — \
                         inside the {} ns lease",
                        p.at,
                        lease.as_nanos()
                    ),
                );
            }
        }
    }
    CheckResult::pass(NAME)
}

/// Epoch monotonicity: membership epochs carried by confirmed transitions
/// must strictly increase in event order. A repeated or regressing epoch
/// would let a stale restart be mistaken for current state.
pub fn check_epoch_monotonic(events: &[HealthEvent]) -> CheckResult {
    const NAME: &str = "epoch-monotonicity";
    let mut last = 0u64;
    for ev in events {
        let epoch = match ev {
            HealthEvent::ConfirmedDown { epoch, .. } | HealthEvent::Rejoined { epoch, .. } => {
                *epoch
            }
            _ => continue,
        };
        if epoch <= last {
            return CheckResult::fail(
                NAME,
                format!("epoch {epoch} follows epoch {last}; transitions must strictly advance"),
            );
        }
        last = epoch;
    }
    CheckResult::pass(NAME)
}

/// Degraded-read identity: the bytes a [`DegradedRead`] served must be
/// exactly what the primary would have returned (`expect`, taken from the
/// workload's shadow model).
pub fn check_degraded_read(expect: &[u8], got: &DegradedRead) -> CheckResult {
    const NAME: &str = "degraded-read-identity";
    if got.bytes == expect {
        CheckResult::pass(NAME)
    } else {
        CheckResult::fail(
            NAME,
            format!(
                "degraded read via {:?} returned {} bytes that differ from the model",
                got.source,
                got.bytes.len()
            ),
        )
    }
}

/// Telemetry conservation: the pool's instruments must balance.
///
/// Three books have to agree in any rack snapshot:
/// * every access is either local or remote, so
///   `pool.accesses.local + pool.accesses.remote` equals
///   `pool.ops.read + pool.ops.write`;
/// * the per-server `by_server` breakdowns sum exactly to their totals;
/// * every remote access crossed the fabric at least once, so
///   `fabric.reads + fabric.writes` is at least `pool.accesses.remote`
///   (the fabric also carries protection and migration traffic, hence ≥).
///
/// An imbalance means an instrument was skipped or double-counted
/// somewhere between the pool hook and the exporters.
pub fn check_telemetry_conservation(snap: &lmp_telemetry::TelemetrySnapshot) -> CheckResult {
    const NAME: &str = "telemetry-conservation";
    let local = snap.counter("pool.accesses.local", &[]);
    let remote = snap.counter("pool.accesses.remote", &[]);
    let reads = snap.counter("pool.ops.read", &[]);
    let writes = snap.counter("pool.ops.write", &[]);
    if local + remote != reads + writes {
        return CheckResult::fail(
            NAME,
            format!(
                "local {local} + remote {remote} != reads {reads} + writes {writes}"
            ),
        );
    }
    let local_by = snap.counter_total("pool.accesses.local.by_server");
    if local_by != local {
        return CheckResult::fail(
            NAME,
            format!("by_server local sum {local_by} != total {local}"),
        );
    }
    let remote_by = snap.counter_total("pool.accesses.remote.by_server");
    if remote_by != remote {
        return CheckResult::fail(
            NAME,
            format!("by_server remote sum {remote_by} != total {remote}"),
        );
    }
    let fabric_ops = snap.counter("fabric.reads", &[]) + snap.counter("fabric.writes", &[]);
    if fabric_ops < remote {
        return CheckResult::fail(
            NAME,
            format!("fabric carried {fabric_ops} transfers for {remote} remote accesses"),
        );
    }
    CheckResult::pass(NAME)
}

/// Coherence mutual exclusion under snoop-filter overflow.
///
/// Runs a seeded schedule of lock acquire/release interleaved with enough
/// unrelated coherent traffic to overflow a tiny (8-entry) snoop filter,
/// forcing back-invalidations. A shadow owner tracks who *should* hold the
/// lock; a counter word incremented non-atomically inside the critical
/// section detects lost updates. The check also asserts the filter really
/// overflowed — otherwise it proved nothing.
pub fn check_coherence_mutex(seed: u64, nodes: u32, rounds: u32) -> CheckResult {
    const NAME: &str = "coherence-mutual-exclusion";
    assert!(nodes >= 2, "mutual exclusion needs contenders");
    const LOCK_ADDR: u64 = 0;
    const CTR_ADDR: u64 = 64;
    let config = CoherenceConfig {
        filter_capacity: 8,
        ..CoherenceConfig::default_lmp()
    };
    let mut region = CoherentRegion::new(config, 4096);
    let lock = SpinLock::new(LOCK_ADDR);
    let mut rng = DetRng::new(seed).fork("coherence-mutex");
    // Shadow state: who holds the lock, and the counter value they read on
    // entry (the write-back at exit is deliberately non-atomic).
    let mut shadow: Option<(u32, u64)> = None;
    let mut critical_sections = 0u64;
    for _ in 0..rounds {
        // Background sharers hammer scratch blocks to overflow the filter.
        let t = rng.below(nodes as u64) as u32;
        let scratch = 128 + rng.below(60) * 16;
        if region.load(t, scratch).is_err() {
            return CheckResult::fail(NAME, "scratch access out of region");
        }
        match shadow {
            Some((holder, entry_val)) => {
                if rng.chance(0.5) {
                    // Finish the critical section and release.
                    if region.store(holder, CTR_ADDR, entry_val + 1).is_err() {
                        return CheckResult::fail(NAME, "counter store failed");
                    }
                    critical_sections += 1;
                    if lock.holder(&mut region, holder) != Some(holder) {
                        return CheckResult::fail(
                            NAME,
                            format!("lock word lost its holder {holder}"),
                        );
                    }
                    if lock.release(&mut region, holder).is_err() {
                        return CheckResult::fail(NAME, "release failed");
                    }
                    shadow = None;
                } else {
                    // A contender must be refused while the lock is held.
                    let c = rng.below(nodes as u64) as u32;
                    match lock.try_acquire(&mut region, c) {
                        Ok((false, _)) => {}
                        Ok((true, _)) => {
                            return CheckResult::fail(
                                NAME,
                                format!("node {c} acquired while {holder} held the lock"),
                            )
                        }
                        Err(_) => return CheckResult::fail(NAME, "acquire out of region"),
                    }
                }
            }
            None => {
                let c = rng.below(nodes as u64) as u32;
                match lock.try_acquire(&mut region, c) {
                    Ok((true, _)) => {
                        let entry_val = match region.load(c, CTR_ADDR) {
                            Ok((v, _)) => v,
                            Err(_) => return CheckResult::fail(NAME, "counter load failed"),
                        };
                        shadow = Some((c, entry_val));
                    }
                    Ok((false, _)) => {
                        return CheckResult::fail(
                            NAME,
                            format!("node {c} failed to acquire a free lock"),
                        )
                    }
                    Err(_) => return CheckResult::fail(NAME, "acquire out of region"),
                }
            }
        }
    }
    // Drain a still-held critical section so the count is exact. A failure
    // here is a breach in its own right: the holder was inside the region
    // moments ago, so the store and release must both succeed.
    if let Some((holder, entry_val)) = shadow.take() {
        if region.store(holder, CTR_ADDR, entry_val + 1).is_err() {
            return CheckResult::fail(NAME, "drain store left the region");
        }
        critical_sections += 1;
        if lock.release(&mut region, holder).is_err() {
            return CheckResult::fail(NAME, "drain release failed for the holder");
        }
    }
    match region.load(0, CTR_ADDR) {
        Ok((v, _)) if v == critical_sections => {}
        Ok((v, _)) => {
            return CheckResult::fail(
                NAME,
                format!("counter {v} after {critical_sections} critical sections: lost update"),
            )
        }
        Err(_) => return CheckResult::fail(NAME, "final counter load failed"),
    }
    if region.filter().back_invalidation_count() == 0 {
        return CheckResult::fail(
            NAME,
            "snoop filter never overflowed; the check exercised nothing",
        );
    }
    CheckResult::pass(NAME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::{Fabric, LinkProfile, MemOp, NodeId};
    use lmp_telemetry::{CounterValue, MetricKey, TelemetrySnapshot};
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn world(servers: u32) -> (LogicalPool, Fabric, ProtectionManager) {
        let cfg = PoolConfig {
            servers,
            capacity_per_server: 32 * FRAME_BYTES,
            shared_per_server: 24 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (
            LogicalPool::new(cfg),
            Fabric::new(LinkProfile::link1(), servers),
            ProtectionManager::new(),
        )
    }

    #[test]
    fn translation_check_passes_on_healthy_pool() {
        let (mut p, _, _) = world(3);
        let mut model = ContentModel::new();
        for i in 0..3 {
            let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(i))).unwrap();
            let data = vec![i as u8 + 1; 100];
            p.write_bytes(LogicalAddr::new(seg, 0), &data).unwrap();
            model.insert(seg, data);
        }
        let r = check_translation(&mut p, &model);
        assert!(r.passed, "{r}");
    }

    #[test]
    fn translation_check_catches_divergence() {
        let (mut p, _, _) = world(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        p.write_bytes(LogicalAddr::new(seg, 0), b"real").unwrap();
        let mut model = ContentModel::new();
        model.insert(seg, b"fake".to_vec());
        let r = check_translation(&mut p, &model);
        assert!(!r.passed);
        assert!(r.detail.contains("differ"), "{r}");
    }

    #[test]
    fn recovery_check_passes_for_promoted_mirror() {
        let (mut p, mut f, mut pm) = world(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        pm.write(&mut p, LogicalAddr::new(seg, 0), b"payload").unwrap();
        let mut model = ContentModel::new();
        model.insert(seg, p.read_bytes(LogicalAddr::new(seg, 0), FRAME_BYTES).unwrap());
        let affected = p.crash_server(NodeId(0));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        let r = check_recovery(&p, &report, &[seg], &[], &model);
        assert!(r.passed, "{r}");
    }

    #[test]
    fn recovery_check_catches_misreported_loss() {
        let (mut p, mut f, mut pm) = world(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let affected = p.crash_server(NodeId(1));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(1), &affected);
        // Caller wrongly claims the segment was protected.
        let model = ContentModel::new();
        let r = check_recovery(&p, &report, &[seg], &[], &model);
        assert!(!r.passed);
    }

    #[test]
    fn ledger_balances_for_mirrored_writes() {
        let (mut p, mut f, mut pm) = world(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let mut ledger = WriteLedger::new();
        let amp = pm.write(&mut p, LogicalAddr::new(seg, 0), b"abcd").unwrap();
        ledger.record(amp, pm.is_protected(seg));
        assert!(check_write_amplification(&ledger).passed);
        // Tamper: claim the write was unprotected.
        let mut bad = WriteLedger::new();
        bad.record(amp, false);
        assert!(!check_write_amplification(&bad).passed);
    }

    #[test]
    fn lease_audit_passes_when_beats_predate_the_lease() {
        let lease = SimDuration::from_nanos(3000);
        let probes = vec![
            ProbeOutcome {
                node: NodeId(1),
                at: SimTime::from_nanos(1000),
                ok: true,
            },
            ProbeOutcome {
                node: NodeId(1),
                at: SimTime::from_nanos(1500),
                ok: false,
            },
        ];
        let events = vec![HealthEvent::ConfirmedDown {
            node: NodeId(1),
            at: SimTime::from_nanos(4000),
            epoch: 1,
        }];
        assert!(check_lease_confirmations(&probes, &events, lease).passed);
    }

    #[test]
    fn lease_audit_catches_a_confirmation_over_a_live_beat() {
        let lease = SimDuration::from_nanos(3000);
        let probes = vec![ProbeOutcome {
            node: NodeId(2),
            at: SimTime::from_nanos(2500),
            ok: true,
        }];
        let events = vec![HealthEvent::ConfirmedDown {
            node: NodeId(2),
            at: SimTime::from_nanos(4000),
            epoch: 1,
        }];
        let r = check_lease_confirmations(&probes, &events, lease);
        assert!(!r.passed);
        assert!(r.detail.contains("inside"), "{r}");
    }

    #[test]
    fn epoch_check_requires_strict_advance() {
        let at = SimTime::from_nanos(1);
        let good = vec![
            HealthEvent::ConfirmedDown {
                node: NodeId(0),
                at,
                epoch: 1,
            },
            HealthEvent::Rejoined {
                node: NodeId(0),
                at,
                epoch: 2,
            },
        ];
        assert!(check_epoch_monotonic(&good).passed);
        let bad = vec![
            HealthEvent::ConfirmedDown {
                node: NodeId(0),
                at,
                epoch: 2,
            },
            HealthEvent::Rejoined {
                node: NodeId(1),
                at,
                epoch: 2,
            },
        ];
        assert!(!check_epoch_monotonic(&bad).passed);
    }

    #[test]
    fn degraded_read_identity_compares_bytes() {
        let r = DegradedRead {
            bytes: b"abc".to_vec(),
            complete: SimTime::ZERO,
            source: DegradedSource::MirrorReplica,
        };
        assert!(check_degraded_read(b"abc", &r).passed);
        assert!(!check_degraded_read(b"abd", &r).passed);
    }

    #[test]
    fn telemetry_conservation_balances_on_instrumented_pool() {
        let (mut p, mut f, _) = world(3);
        p.attach_telemetry();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, 0);
        p.access(&mut f, SimTime::ZERO, NodeId(0), addr, 64, MemOp::Read)
            .unwrap();
        p.access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Write)
            .unwrap();
        let snap = rack_snapshot(&mut p, &mut f, SimTime::ZERO);
        let r = check_telemetry_conservation(&snap);
        assert!(r.passed, "{r}");
    }

    #[test]
    fn telemetry_conservation_catches_imbalanced_books() {
        let mut bad = TelemetrySnapshot::new();
        let one = CounterValue {
            value: 1,
            overflowed: false,
        };
        bad.insert_counter(MetricKey::new("pool.ops.read", &[]), CounterValue {
            value: 2,
            overflowed: false,
        });
        bad.insert_counter(MetricKey::new("pool.accesses.local", &[]), one);
        let r = check_telemetry_conservation(&bad);
        assert!(!r.passed);
        assert!(r.detail.contains("!="), "{r}");
    }

    #[test]
    fn coherence_mutex_holds_under_filter_overflow() {
        let r = check_coherence_mutex(1234, 4, 400);
        assert!(r.passed, "{r}");
    }

    #[test]
    fn coherence_mutex_check_is_deterministic() {
        let a = check_coherence_mutex(9, 3, 200);
        let b = check_coherence_mutex(9, 3, 200);
        assert_eq!(a, b);
    }
}
