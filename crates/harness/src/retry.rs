//! Retry, timeout, and backoff semantics for pool operations under
//! faults.
//!
//! The paper expects failures to surface to applications as memory
//! exceptions, not hangs or crashes. This module supplies the client-side
//! half: a [`RetryPolicy`] with exponential backoff in *simulated* time,
//! and a classification of [`PoolError`]s into transient errors worth
//! retrying (the holder may recover, the port may come back) versus
//! permanent ones that must surface immediately.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, MemOp, NodeId};
use lmp_sim::prelude::*;

/// When and how often to retry a failed pool operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles every retry.
    pub base_backoff: SimDuration,
    /// Give up once the next attempt would start later than
    /// `issue + timeout`, even with attempts left.
    pub timeout: SimDuration,
}

impl RetryPolicy {
    /// Defaults used by the chaos scenarios: 6 attempts, 200 ns initial
    /// backoff (≈ one fabric round trip), 50 µs budget — long enough to
    /// ride out a crash-detection window, short enough to fail fast on a
    /// permanently lost segment.
    pub fn default_chaos() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: SimDuration::from_nanos(200),
            timeout: SimDuration::from_micros(50),
        }
    }

    /// Backoff to wait after attempt number `attempt` (0-based) fails:
    /// `base · 2^attempt`, saturating.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        SimDuration::from_nanos(self.base_backoff.as_nanos().saturating_mul(factor))
    }

    /// Whether another attempt may be scheduled after `attempt` (0-based)
    /// failed at simulated time `now`, for an operation issued at `issued`.
    pub fn may_retry(&self, issued: SimTime, now: SimTime, attempt: u32) -> bool {
        attempt + 1 < self.max_attempts
            && (now + self.backoff_after(attempt)) <= issued + self.timeout
    }
}

/// Whether an error is worth retrying: the condition can clear (server
/// restart, port restore, protection-layer recovery, a tenant's token
/// bucket refilling). Capacity, bounds, and unknown-segment errors are
/// deterministic and permanent.
pub fn is_retryable(err: &PoolError) -> bool {
    matches!(
        err,
        PoolError::SegmentLost(_)
            | PoolError::ServerDown(_)
            | PoolError::AdmissionRejected(_)
    )
}

/// Terminal outcome of a retried operation.
#[derive(Debug, Clone, PartialEq)]
pub enum RetryOutcome<T> {
    /// An attempt succeeded.
    Ok {
        /// The successful attempt's result.
        value: T,
        /// Attempts consumed, including the successful one.
        attempts: u32,
    },
    /// Every permitted attempt failed with a transient error.
    GaveUp {
        /// Attempts consumed.
        attempts: u32,
        /// The final transient error.
        last: PoolError,
        /// When the final attempt failed.
        at: SimTime,
    },
}

impl<T> RetryOutcome<T> {
    /// Whether the operation ultimately succeeded.
    pub fn succeeded(&self) -> bool {
        matches!(self, RetryOutcome::Ok { .. })
    }
}

/// Drive `attempt(now, attempt_index)` under `policy`, advancing simulated
/// time by the backoff between attempts. Non-retryable errors surface as
/// `Err` immediately; transient exhaustion becomes [`RetryOutcome::GaveUp`].
///
/// The closure receives the simulated start time of each attempt, so
/// callers that interleave recovery (the chaos scenarios drive retries
/// through engine events instead) can also use this synchronous form when
/// the world does not change underneath them.
pub fn retry<T, F>(
    policy: &RetryPolicy,
    issued: SimTime,
    mut attempt: F,
) -> Result<RetryOutcome<T>, PoolError>
where
    F: FnMut(SimTime, u32) -> Result<T, PoolError>,
{
    // lmp-lint: allow(no-panic) — policy precondition: zero attempts means the
    // operation can never run; a configuration bug.
    assert!(policy.max_attempts >= 1, "policy allows no attempts");
    let mut now = issued;
    let mut n = 0;
    loop {
        match attempt(now, n) {
            Ok(value) => {
                return Ok(RetryOutcome::Ok {
                    value,
                    attempts: n + 1,
                })
            }
            Err(e) if !is_retryable(&e) => return Err(e),
            Err(e) => {
                if !policy.may_retry(issued, now, n) {
                    return Ok(RetryOutcome::GaveUp {
                        attempts: n + 1,
                        last: e,
                        at: now,
                    });
                }
                now += policy.backoff_after(n);
                n += 1;
            }
        }
    }
}

/// Convenience: a timed pool access with retries.
#[allow(clippy::too_many_arguments)]
pub fn access_with_retry(
    policy: &RetryPolicy,
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    now: SimTime,
    requester: NodeId,
    addr: LogicalAddr,
    len: u64,
    op: MemOp,
) -> Result<RetryOutcome<PoolAccess>, PoolError> {
    retry(policy, now, |t, _| {
        pool.access(fabric, t, requester, addr, len, op)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn world() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 3,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 8,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 3))
    }

    #[test]
    fn backoff_is_exponential() {
        let p = RetryPolicy::default_chaos();
        assert_eq!(p.backoff_after(0).as_nanos(), 200);
        assert_eq!(p.backoff_after(1).as_nanos(), 400);
        assert_eq!(p.backoff_after(3).as_nanos(), 1600);
    }

    #[test]
    fn first_try_success_uses_one_attempt() {
        let (mut pool, mut fabric) = world();
        let seg = pool.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let out = access_with_retry(
            &RetryPolicy::default_chaos(),
            &mut pool,
            &mut fabric,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            64,
            MemOp::Read,
        )
        .unwrap();
        assert!(matches!(out, RetryOutcome::Ok { attempts: 1, .. }));
    }

    #[test]
    fn permanent_errors_surface_immediately() {
        let (mut pool, mut fabric) = world();
        let r = access_with_retry(
            &RetryPolicy::default_chaos(),
            &mut pool,
            &mut fabric,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(SegmentId(99), 0),
            64,
            MemOp::Read,
        );
        assert!(matches!(r, Err(PoolError::UnknownSegment(_))));
    }

    #[test]
    fn transient_error_exhausts_with_gave_up() {
        let (mut pool, mut fabric) = world();
        let seg = pool.alloc(FRAME_BYTES, Placement::On(NodeId(2))).unwrap();
        pool.crash_server(NodeId(2));
        let out = access_with_retry(
            &RetryPolicy::default_chaos(),
            &mut pool,
            &mut fabric,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            64,
            MemOp::Read,
        )
        .unwrap();
        match out {
            RetryOutcome::GaveUp { attempts, last, at } => {
                assert_eq!(attempts, 6);
                assert_eq!(last, PoolError::SegmentLost(seg));
                // 200+400+800+1600+3200 ns of backoff elapsed.
                assert_eq!(at.as_nanos(), 6200);
            }
            other => panic!("expected GaveUp, got {other:?}"),
        }
    }

    #[test]
    fn retry_succeeds_once_condition_clears() {
        let policy = RetryPolicy::default_chaos();
        let mut failures_left = 3;
        let out = retry(&policy, SimTime::ZERO, |_, _| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(PoolError::ServerDown(NodeId(1)))
            } else {
                Ok(42u32)
            }
        })
        .unwrap();
        assert_eq!(
            out,
            RetryOutcome::Ok {
                value: 42,
                attempts: 4
            }
        );
    }

    #[test]
    fn timeout_caps_attempts() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: SimDuration::from_nanos(1000),
            timeout: SimDuration::from_nanos(2500),
        };
        let out = retry::<(), _>(&policy, SimTime::ZERO, |_, _| {
            Err(PoolError::ServerDown(NodeId(0)))
        })
        .unwrap();
        // Attempt 0 at t=0, attempt 1 at t=1000; next would start at
        // t=3000 > 2500, so only 2 attempts run.
        assert!(matches!(out, RetryOutcome::GaveUp { attempts: 2, .. }));
    }
}
