//! Fault plans: what breaks, and when.
//!
//! A [`FaultPlan`] is an ordered list of faults pinned to simulated
//! instants. Plans are either written explicitly (one fault per line, as
//! the integration tests do) or generated from a seed — the
//! FoundationDB-style mode where the plan itself is a deterministic
//! function of the seed, so a failing run is reproduced by its seed alone.

use lmp_fabric::NodeId;
use lmp_sim::prelude::*;

/// One injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The server's memory and fabric port vanish; its pool shard is gone.
    ServerCrash(NodeId),
    /// A crashed server comes back with empty memory and a live port.
    ServerRestart(NodeId),
    /// The node's links stretch every path's loaded latency by `factor`.
    LinkDegrade {
        /// Affected node.
        node: NodeId,
        /// Latency multiplier, ≥ 1.0.
        factor: f64,
    },
    /// The node's links return to full health.
    LinkRestore(NodeId),
    /// The node's fabric port drops without the server crashing (a NIC
    /// flap); remote operations touching the node fail until it returns.
    PortDown(NodeId),
    /// A flapped port comes back.
    PortUp(NodeId),
    /// An entire rack goes dark atomically — ToR switch or PDU loss: every
    /// host in the rack crashes (memory contents retained, as in a power
    /// loss with battery-backed DRAM) and every leaf port drops, in one
    /// event. Which hosts belong to the rack is the harness's domain map.
    RackDown(u32),
    /// A downed rack returns: ports come back and hosts announce warm
    /// rejoins (their memory survived the outage).
    RackUp(u32),
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::ServerCrash(n) => write!(f, "crash {n}"),
            Fault::ServerRestart(n) => write!(f, "restart {n}"),
            Fault::LinkDegrade { node, factor } => {
                write!(f, "degrade {node} x{factor:.1}")
            }
            Fault::LinkRestore(n) => write!(f, "restore {n}"),
            Fault::PortDown(n) => write!(f, "port-down {n}"),
            Fault::PortUp(n) => write!(f, "port-up {n}"),
            Fault::RackDown(r) => write!(f, "rack-down {r}"),
            Fault::RackUp(r) => write!(f, "rack-up {r}"),
        }
    }
}

/// A fault pinned to a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedFault {
    /// When the fault strikes.
    pub at: SimTime,
    /// What happens.
    pub fault: Fault,
}

/// Parameters for seeded plan generation.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Nodes eligible for faults.
    pub servers: u32,
    /// Faults are drawn in `[horizon/10, horizon)` so the workload gets a
    /// healthy warm-up window.
    pub horizon: SimDuration,
    /// Number of server crashes to inject.
    pub crashes: u32,
    /// Whether crashed servers restart (empty) before the horizon.
    pub restarts: bool,
    /// Number of link-degradation windows to inject.
    pub link_spikes: u32,
    /// Degradation factor for spikes (≥ 1.0).
    pub spike_factor: f64,
    /// Number of port flaps (NIC down/up pairs) to inject.
    pub port_flaps: u32,
    /// How long each flapped port stays down. Keeping this below a
    /// detector's lease makes flaps the canonical "suspect but never
    /// confirm" schedule.
    pub flap_width: SimDuration,
    /// Number of whole-rack outages (ToR/PDU losses) to inject. Requires
    /// `rack_count > 0`; each loss hits a random rack and is paired with a
    /// `RackUp` one `rack_width` later.
    pub rack_losses: u32,
    /// Racks the servers are spread over (0 = topology has no racks; rack
    /// faults are then never drawn).
    pub rack_count: u32,
    /// How long a downed rack stays dark. Keep this beyond the detector's
    /// lease so the whole rack is confirmed down before it returns.
    pub rack_width: SimDuration,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            servers: 4,
            horizon: SimDuration::from_micros(500),
            crashes: 1,
            restarts: true,
            link_spikes: 1,
            spike_factor: 8.0,
            port_flaps: 0,
            flap_width: SimDuration::from_micros(1),
            rack_losses: 0,
            rack_count: 0,
            rack_width: SimDuration::from_micros(10),
        }
    }
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a fault. Faults may be pushed out of order; [`Self::iter`]
    /// yields them sorted by time (ties keep push order).
    pub fn push(&mut self, at: SimTime, fault: Fault) -> &mut Self {
        self.faults.push(PlannedFault { at, fault });
        self
    }

    /// Generate a plan from a seed. Same seed and config ⇒ same plan.
    ///
    /// Crashes strike distinct servers (so a k-fault plan is survivable by
    /// k-independent protection); spikes may hit any node. All times land
    /// in `[horizon/10, horizon)`.
    pub fn generate(seed: u64, cfg: &PlanConfig) -> Self {
        // lmp-lint: allow(no-panic) — plan-generation precondition; a server-
        // free plan is a harness-configuration bug.
        assert!(cfg.servers > 0, "plan needs servers");
        // lmp-lint: allow(no-panic) — plan-generation precondition: crashing
        // more servers than exist is a harness-configuration bug.
        assert!(
            cfg.crashes <= cfg.servers,
            "more crashes than distinct servers"
        );
        let mut rng = DetRng::new(seed).fork("fault-plan");
        let lo = cfg.horizon.as_nanos() / 10;
        let hi = cfg.horizon.as_nanos().max(lo + 1);
        let draw_at = |rng: &mut DetRng| {
            SimTime::from_nanos(lo + rng.below(hi - lo))
        };
        let mut plan = FaultPlan::new();

        // Distinct crash victims via a seeded shuffle.
        let mut victims: Vec<u32> = (0..cfg.servers).collect();
        rng.shuffle(&mut victims);
        for &v in victims.iter().take(cfg.crashes as usize) {
            let at = draw_at(&mut rng);
            plan.push(at, Fault::ServerCrash(NodeId(v)));
            if cfg.restarts {
                // Restart strictly after the crash, still inside the horizon.
                let gap = 1 + rng.below((hi - at.as_nanos()).max(2) - 1);
                plan.push(
                    at + SimDuration::from_nanos(gap),
                    Fault::ServerRestart(NodeId(v)),
                );
            }
        }
        for _ in 0..cfg.link_spikes {
            let node = NodeId(rng.below(cfg.servers as u64) as u32);
            let at = draw_at(&mut rng);
            plan.push(
                at,
                Fault::LinkDegrade {
                    node,
                    factor: cfg.spike_factor,
                },
            );
            let width = 1 + rng.below((hi - at.as_nanos()).max(2) - 1);
            plan.push(at + SimDuration::from_nanos(width), Fault::LinkRestore(node));
        }
        // Port flaps are drawn last so plans that request none keep the
        // exact fault stream older seeds produced.
        for _ in 0..cfg.port_flaps {
            let node = NodeId(rng.below(cfg.servers as u64) as u32);
            let at = draw_at(&mut rng);
            plan.push(at, Fault::PortDown(node));
            let width = cfg.flap_width.as_nanos().max(1);
            plan.push(at + SimDuration::from_nanos(width), Fault::PortUp(node));
        }
        // Rack losses are drawn after everything else (same compatibility
        // rule as flaps): plans that request none keep the exact fault
        // stream older seeds produced.
        if cfg.rack_count > 0 {
            for _ in 0..cfg.rack_losses {
                let rack = rng.below(cfg.rack_count as u64) as u32;
                let at = draw_at(&mut rng);
                plan.push(at, Fault::RackDown(rack));
                let width = cfg.rack_width.as_nanos().max(1);
                plan.push(at + SimDuration::from_nanos(width), Fault::RackUp(rack));
            }
        }
        plan
    }

    /// Number of planned faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Faults sorted by strike time (stable for ties).
    pub fn iter(&self) -> impl Iterator<Item = PlannedFault> + '_ {
        let mut order: Vec<usize> = (0..self.faults.len()).collect();
        order.sort_by_key(|&i| (self.faults[i].at, i));
        order.into_iter().map(|i| self.faults[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = PlanConfig::default();
        let a = FaultPlan::generate(7, &cfg);
        let b = FaultPlan::generate(7, &cfg);
        let c = FaultPlan::generate(8, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn crashes_hit_distinct_servers() {
        let cfg = PlanConfig {
            servers: 4,
            crashes: 4,
            restarts: false,
            link_spikes: 0,
            ..PlanConfig::default()
        };
        let plan = FaultPlan::generate(3, &cfg);
        let mut victims: Vec<u32> = plan
            .iter()
            .filter_map(|p| match p.fault {
                Fault::ServerCrash(n) => Some(n.0),
                _ => None,
            })
            .collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 4);
    }

    #[test]
    fn restart_follows_its_crash() {
        let cfg = PlanConfig {
            crashes: 2,
            restarts: true,
            link_spikes: 0,
            ..PlanConfig::default()
        };
        let plan = FaultPlan::generate(11, &cfg);
        let mut crash_at = std::collections::HashMap::new();
        for p in plan.iter() {
            match p.fault {
                Fault::ServerCrash(n) => {
                    crash_at.insert(n, p.at);
                }
                Fault::ServerRestart(n) => {
                    assert!(p.at > crash_at[&n], "restart before crash");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn port_flaps_pair_up_with_the_requested_width() {
        let cfg = PlanConfig {
            crashes: 0,
            restarts: false,
            link_spikes: 0,
            port_flaps: 3,
            flap_width: SimDuration::from_nanos(1500),
            ..PlanConfig::default()
        };
        let a = FaultPlan::generate(21, &cfg);
        let b = FaultPlan::generate(21, &cfg);
        assert_eq!(a, b, "flap draws must replay");
        let mut downs = Vec::new();
        let mut ups = Vec::new();
        for p in a.iter() {
            match p.fault {
                Fault::PortDown(n) => downs.push((n, p.at.as_nanos() + 1500)),
                Fault::PortUp(n) => ups.push((n, p.at.as_nanos())),
                other => panic!("unexpected fault {other:?}"),
            }
        }
        downs.sort_unstable();
        ups.sort_unstable();
        assert_eq!(downs.len(), 3);
        assert_eq!(downs, ups, "every down must pair with an up one width later");
    }

    #[test]
    fn zero_flap_plans_are_unchanged_by_the_new_knobs() {
        let old = PlanConfig::default();
        let explicit = PlanConfig {
            port_flaps: 0,
            flap_width: SimDuration::from_nanos(999),
            ..PlanConfig::default()
        };
        assert_eq!(
            FaultPlan::generate(5, &old),
            FaultPlan::generate(5, &explicit),
            "flap knobs must not disturb the existing fault stream"
        );
    }

    #[test]
    fn zero_rack_loss_plans_are_unchanged_by_the_new_knobs() {
        let old = PlanConfig::default();
        let explicit = PlanConfig {
            rack_losses: 0,
            rack_count: 4,
            rack_width: SimDuration::from_nanos(777),
            ..PlanConfig::default()
        };
        assert_eq!(
            FaultPlan::generate(5, &old),
            FaultPlan::generate(5, &explicit),
            "rack knobs must not disturb the existing fault stream"
        );
    }

    #[test]
    fn rack_losses_pair_up_and_stay_in_range() {
        let cfg = PlanConfig {
            crashes: 0,
            restarts: false,
            link_spikes: 0,
            rack_losses: 3,
            rack_count: 2,
            rack_width: SimDuration::from_nanos(2500),
            ..PlanConfig::default()
        };
        let a = FaultPlan::generate(9, &cfg);
        let b = FaultPlan::generate(9, &cfg);
        assert_eq!(a, b, "rack draws must replay");
        let mut downs = Vec::new();
        let mut ups = Vec::new();
        for p in a.iter() {
            match p.fault {
                Fault::RackDown(r) => {
                    assert!(r < 2, "rack id within the topology");
                    downs.push((r, p.at.as_nanos() + 2500));
                }
                Fault::RackUp(r) => ups.push((r, p.at.as_nanos())),
                other => panic!("unexpected fault {other:?}"),
            }
        }
        downs.sort_unstable();
        ups.sort_unstable();
        assert_eq!(downs.len(), 3);
        assert_eq!(downs, ups, "every rack-down pairs with an up one width later");
    }

    #[test]
    fn iter_is_time_sorted() {
        let mut plan = FaultPlan::new();
        plan.push(SimTime::from_nanos(50), Fault::ServerCrash(NodeId(1)));
        plan.push(SimTime::from_nanos(10), Fault::LinkRestore(NodeId(0)));
        let times: Vec<u64> = plan.iter().map(|p| p.at.as_nanos()).collect();
        assert_eq!(times, vec![10, 50]);
    }
}
