//! Chaos traces: an append-only log of everything a run did, with a
//! digest for cheap same-seed comparison.
//!
//! Determinism is the harness's core promise: same seed ⇒ identical
//! trace, byte for byte. The digest (FNV-1a over every entry) makes the
//! comparison O(1) to store and report; [`ChaosTrace::diff`] finds the
//! first divergent entry when two runs that should match do not.

use lmp_sim::prelude::*;

/// One trace entry: when it happened and what happened.
pub type TraceEntry = (SimTime, String);

/// An append-only, timestamped event log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosTrace {
    entries: Vec<TraceEntry>,
}

impl ChaosTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one entry.
    pub fn record(&mut self, at: SimTime, entry: impl Into<String>) {
        self.entries.push((at, entry.into()));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, in record order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// FNV-1a digest of the whole trace (timestamps and text).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for (at, text) in &self.entries {
            for b in at.as_nanos().to_le_bytes() {
                eat(b);
            }
            for &b in text.as_bytes() {
                eat(b);
            }
            eat(b'\n');
        }
        h
    }

    /// Index and contents of the first entry where two traces diverge,
    /// or `None` when they are identical.
    pub fn diff<'a>(
        &'a self,
        other: &'a ChaosTrace,
    ) -> Option<(usize, Option<&'a TraceEntry>, Option<&'a TraceEntry>)> {
        let n = self.entries.len().max(other.entries.len());
        (0..n).find_map(|i| {
            let (a, b) = (self.entries.get(i), other.entries.get(i));
            (a != b).then_some((i, a, b))
        })
    }
}

impl std::fmt::Display for ChaosTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (at, text) in &self.entries {
            writeln!(f, "[{:>12} ns] {}", at.as_nanos(), text)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_content_sensitive() {
        let mut a = ChaosTrace::new();
        a.record(SimTime::from_nanos(10), "crash server1");
        a.record(SimTime::from_nanos(20), "recover server1");
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.record(SimTime::from_nanos(30), "extra");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_sees_timestamps() {
        let mut a = ChaosTrace::new();
        a.record(SimTime::from_nanos(10), "x");
        let mut b = ChaosTrace::new();
        b.record(SimTime::from_nanos(11), "x");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn diff_finds_first_divergence() {
        let mut a = ChaosTrace::new();
        let mut b = ChaosTrace::new();
        for t in 0..3 {
            a.record(SimTime::from_nanos(t), format!("e{t}"));
            b.record(SimTime::from_nanos(t), format!("e{t}"));
        }
        assert!(a.diff(&b).is_none());
        b.record(SimTime::from_nanos(3), "tail");
        let (i, x, y) = a.diff(&b).unwrap();
        assert_eq!(i, 3);
        assert!(x.is_none());
        assert_eq!(y.unwrap().1, "tail");
    }
}
