// Scenario orchestration is harness code: a failed setup step or breached
// invariant must abort the run loudly, exactly like an assert in a test.
#![allow(clippy::expect_used, clippy::unwrap_used)]

//! Chaos scenarios: seeded workloads under seeded fault plans, with the
//! invariant checkers wired in.
//!
//! Each [`Scenario`] builds a small rack (5 servers; the rack-loss
//! scenario builds a 4×3 multi-rack datacenter), allocates and
//! protects segments, generates a deterministic workload, injects its
//! fault plan through the discrete-event [`Engine`], and verifies the
//! cross-layer invariants as recovery happens and again at the end. The
//! whole run is a pure function of `(scenario, seed)`: the resulting
//! [`ChaosReport`] carries a trace digest that must be identical on
//! every rerun.

use crate::invariants::{
    check_coherence_mutex, check_degraded_read, check_epoch_monotonic,
    check_lease_confirmations, check_recovery, check_telemetry_conservation,
    check_translation, check_write_amplification, CheckResult, ContentModel, WriteLedger,
};
use crate::plan::{Fault, FaultPlan};
use crate::retry::{is_retryable, RetryPolicy};
use crate::trace::ChaosTrace;
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, MemOp, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// The fault scenarios the chaos harness ships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Crash the server of an unprotected segment: the loss must surface
    /// as a memory exception, never as wrong data.
    CrashUnprotected,
    /// Crash a mirrored segment's server: the replica is promoted in
    /// place, byte-identical, at the same logical address.
    CrashMirrored,
    /// Crash a parity-group member's server: the segment is rebuilt from
    /// the survivors by XOR reconstruction.
    CrashParity,
    /// Degrade one node's links mid-run: operations slow down but never
    /// fail, and latency recovers with the link.
    LinkSpike,
    /// Crashes, a restart, a port flap, and a link spike in one run, plus
    /// the coherence mutual-exclusion check.
    Combined,
    /// Crash a server under load with self-healing armed: the lease
    /// detector confirms the failure on its own, the orchestrator repairs
    /// it in throttled batches — no manual `recover()` call anywhere — and
    /// reads in the detection/repair window are served degraded from
    /// surviving redundancy, byte-identical.
    CrashAutoHeal,
    /// Port flaps shorter than the lease with self-healing armed: the
    /// detector must suspect and then clear, never confirm, and the
    /// orchestrator must perform zero recoveries.
    FlapNoHeal,
    /// A port drops in the middle of a stream of frame-spanning accesses
    /// and scatter-gather batches: accesses that hit the downed holder must
    /// fail whole — no counter, DRAM, or fabric accounting charged for a
    /// refused access — and the telemetry books must still balance.
    PortDropMidAccess,
    /// An entire rack goes dark — every host crashes and every leaf port
    /// drops in one instant. The lease detector confirms the whole
    /// failure domain on its own, the orchestrator rebuilds every
    /// protected segment from surviving racks (domain-aware placement
    /// guarantees no group lost all its copies), and the rack later
    /// returns warm under a fresh epoch, resurrecting the one
    /// unprotected segment that was written off.
    RackLoss,
    /// A bulk flood saturates a holder's up-wire, then the holder itself
    /// crashes: reads predicted past the tail deadline race a duplicate
    /// through the mirror twin and win, every race loser's completion
    /// event is cancelled through the engine, and reads inside the
    /// crash-repair window fall through the hedge to the degraded path —
    /// hedged reads keep serving while the rebuild runs.
    HedgedFlood,
}

impl Scenario {
    /// Every scenario, in the order the chaos binary runs them.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::CrashUnprotected,
            Scenario::CrashMirrored,
            Scenario::CrashParity,
            Scenario::LinkSpike,
            Scenario::Combined,
            Scenario::CrashAutoHeal,
            Scenario::FlapNoHeal,
            Scenario::PortDropMidAccess,
            Scenario::RackLoss,
            Scenario::HedgedFlood,
        ]
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::CrashUnprotected => "crash-unprotected",
            Scenario::CrashMirrored => "crash-mirrored",
            Scenario::CrashParity => "crash-parity",
            Scenario::LinkSpike => "link-spike",
            Scenario::Combined => "combined",
            Scenario::CrashAutoHeal => "crash-auto-heal",
            Scenario::FlapNoHeal => "flap-no-heal",
            Scenario::PortDropMidAccess => "port-drop-mid-access",
            Scenario::RackLoss => "rack-loss",
            Scenario::HedgedFlood => "hedged-flood",
        }
    }

    /// Whether the scenario arms the lease detector and recovery
    /// orchestrator instead of the harness's manual recovery schedule.
    pub fn self_healing(&self) -> bool {
        matches!(
            self,
            Scenario::CrashAutoHeal
                | Scenario::FlapNoHeal
                | Scenario::RackLoss
                | Scenario::HedgedFlood
        )
    }

    /// Memory servers the scenario provisions. Most scenarios run one
    /// small rack; the rack-loss scenario needs a multi-rack datacenter
    /// (4 racks × 3 hosts) so a whole failure domain can die at once.
    pub fn servers(&self) -> u32 {
        match self {
            Scenario::RackLoss => 12,
            _ => SERVERS,
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything one chaos run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Seed the run was derived from.
    pub seed: u64,
    /// Digest of the full event trace (same seed ⇒ same digest).
    pub digest: u64,
    /// Digest of the final rack telemetry snapshot. Fed into the trace as
    /// well, so a drifting instrument breaks `digest` too.
    pub telemetry_digest: u64,
    /// Events the engine processed.
    pub events: u64,
    /// The full trace (for diffing divergent runs).
    pub trace: ChaosTrace,
    /// Every invariant verdict, in check order.
    pub checks: Vec<CheckResult>,
    /// Operations that ultimately succeeded.
    pub ops_ok: u64,
    /// Operations that failed with a permanent error (memory exception).
    pub ops_failed: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Operations that exhausted their retry budget.
    pub gave_up: u64,
    /// Segments restored by mirror promotion.
    pub promoted: u64,
    /// Segments rebuilt from parity.
    pub reconstructed: u64,
    /// Segments whose protection was re-established.
    pub reprotected: u64,
    /// Segments lost (exceptions raised).
    pub lost: u64,
    /// Detector suspicions raised (self-healing scenarios; else 0).
    pub suspicions: u64,
    /// Detector Down confirmations (self-healing scenarios; else 0).
    pub confirmations: u64,
    /// Throttled recovery batches the orchestrator ran on its own.
    pub auto_recoveries: u64,
    /// Reads served from surviving redundancy while repair was pending.
    pub degraded_served: u64,
}

impl ChaosReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

const SERVERS: u32 = 5;
const SEG_BYTES: u64 = 2 * FRAME_BYTES;
/// Hedge probe segments ([`Scenario::HedgedFlood`]) are small so their
/// t=0 mirror copies drain the victim's up-wire well before the first
/// probe: the backlog the probes then see is the flood's alone.
const HEDGE_SEG_BYTES: u64 = 16 * 1024;
const HORIZON: SimDuration = SimDuration::from_micros(30);
const DETECTION_DELAY: SimDuration = SimDuration::from_micros(2);
const OPS: u64 = 60;

#[derive(Debug, Clone, Copy)]
struct OpSpec {
    at: SimTime,
    requester: NodeId,
    seg_idx: usize,
    offset: u64,
    len: u64,
    write: bool,
}

enum Ev {
    Fault(Fault),
    Recover(NodeId),
    Op { id: u64, attempt: u32 },
    Probe { idx: usize, seg_idx: usize, requester: NodeId },
    /// One detector sweep (self-healing scenarios only).
    HealthTick,
    /// One throttled orchestrator batch (self-healing scenarios only).
    RecoveryStep,
    /// A read pinned inside a fault window that must be served degraded
    /// (self-healing scenarios only).
    DegradedProbe { seg_idx: usize, requester: NodeId },
    /// One scatter-gather batch of frame-spanning reads across every
    /// application segment ([`Scenario::PortDropMidAccess`] only).
    BatchWave { idx: usize },
    /// One holder's pipelined stream of a batch wave drained — scheduled
    /// through `Engine::schedule_batch`, one event per holder per wave.
    HolderDone { wave: usize, holder: NodeId },
    /// One bulk transfer loading the victim holder's up-wire
    /// ([`Scenario::HedgedFlood`] only).
    Flood { from: NodeId, holder: NodeId, bytes: u64 },
    /// One latency-sensitive read served through [`hedged_read`]
    /// ([`Scenario::HedgedFlood`] only).
    HedgedProbe { idx: usize, seg_idx: usize, requester: NodeId },
    /// A hedged probe's winning payload delivered at the requester.
    HedgeDone { idx: usize },
    /// A race loser's completion — scheduled and immediately cancelled
    /// through [`Engine::cancel`]; firing means the cancellation failed.
    HedgeLoser { idx: usize },
}

/// The armed self-healing stack: detector plus orchestrator.
struct Healing {
    detector: FailureDetector,
    orchestrator: RecoveryOrchestrator,
}

struct World {
    scenario: Scenario,
    seed: u64,
    pool: LogicalPool,
    fabric: Fabric,
    pm: ProtectionManager,
    segments: Vec<SegmentId>,
    model: ContentModel,
    lost: BTreeSet<SegmentId>,
    ledger: WriteLedger,
    ops: Vec<OpSpec>,
    policy: RetryPolicy,
    trace: ChaosTrace,
    checks: Vec<CheckResult>,
    /// Crashed node → affected segments (sorted), saved until detection.
    pending_recovery: BTreeMap<u32, Vec<SegmentId>>,
    /// Rack topology (rack-loss scenario only): which hosts share a
    /// failure domain, for rack-wide fault injection and the placement
    /// independence checks.
    domains: Option<DomainMap>,
    /// Contents of segments written off as lost, kept so a warm rack
    /// rejoin that resurrects them can restore the shadow model and
    /// verify the revived bytes.
    lost_stash: BTreeMap<SegmentId, Vec<u8>>,
    /// Application segments that were protected when the run started —
    /// the population the zero-protected-losses check is scored over.
    protected_at_start: BTreeSet<SegmentId>,
    /// Losses among `protected_at_start`.
    protected_lost: u64,
    probe_latencies: Vec<u64>,
    /// Hedge probe segments and their expected contents
    /// ([`Scenario::HedgedFlood`] only; parallel vectors).
    hedge_segs: Vec<SegmentId>,
    hedge_model: Vec<Vec<u8>>,
    hedge_not_needed: u64,
    hedge_raced: u64,
    hedge_wins: u64,
    hedge_no_twin: u64,
    hedge_degraded: u64,
    hedge_mismatches: u64,
    hedge_cancels: u64,
    hedge_cancels_ok: u64,
    hedge_losers_fired: u64,
    healing: Option<Healing>,
    health_events: Vec<HealthEvent>,
    telemetry_digest: u64,
    degraded_served: u64,
    degraded_mismatches: u64,
    batch_ok: u64,
    batch_failed: u64,
    atomicity_violations: u64,
    ops_ok: u64,
    ops_failed: u64,
    retries: u64,
    gave_up: u64,
    promoted: u64,
    reconstructed: u64,
    reprotected: u64,
    lost_count: u64,
}

/// Deterministic payload for write op `id`.
fn write_data(seed: u64, id: u64, len: usize) -> Vec<u8> {
    let mut rng = DetRng::new(seed).fork_indexed("write-data", id);
    (0..len).map(|_| rng.below(256) as u8).collect()
}

impl World {
    fn build(scenario: Scenario, seed: u64) -> (World, FaultPlan) {
        let servers = scenario.servers();
        let config = PoolConfig {
            servers,
            capacity_per_server: 64 * FRAME_BYTES,
            shared_per_server: 48 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        let mut pool = LogicalPool::new(config);
        pool.attach_telemetry();
        let mut fabric = Fabric::new(LinkProfile::link1(), servers);
        let domains = (scenario == Scenario::RackLoss).then(|| DomainMap::uniform(4, 3));
        let mut pm = match &domains {
            Some(d) => {
                ProtectionManager::with_policy(PlacementPolicy::DomainAware(d.clone()))
            }
            None => ProtectionManager::new(),
        };
        let mut model = ContentModel::new();
        let mut segments = Vec::new();
        let rng = DetRng::new(seed).fork("chaos-setup");

        // Application segments: (home server, protection).
        #[derive(Clone, Copy, PartialEq)]
        enum Prot {
            None,
            Mirror,
            Parity,
        }
        let layout: Vec<(u32, Prot)> = match scenario {
            Scenario::CrashUnprotected => {
                vec![(0, Prot::None), (1, Prot::None), (2, Prot::None)]
            }
            Scenario::CrashMirrored => {
                vec![(0, Prot::Mirror), (1, Prot::Mirror), (2, Prot::None)]
            }
            Scenario::CrashParity => {
                vec![(0, Prot::Parity), (1, Prot::Parity), (4, Prot::None)]
            }
            Scenario::LinkSpike => {
                vec![(0, Prot::None), (1, Prot::None), (2, Prot::None)]
            }
            Scenario::Combined => vec![
                (0, Prot::Mirror),
                (1, Prot::Parity),
                (2, Prot::Parity),
                (3, Prot::None),
            ],
            // Node 0 hosts one mirrored and one parity segment, so its
            // crash queues two repairs — enough to watch batch-1 throttling
            // spread recovery over multiple ticks.
            Scenario::CrashAutoHeal => vec![
                (0, Prot::Mirror),
                (0, Prot::Parity),
                (1, Prot::Parity),
                (2, Prot::None),
            ],
            // The flapped nodes (1 and 3) host protected segments so
            // degraded reads can route around the flap.
            Scenario::FlapNoHeal => vec![
                (1, Prot::Mirror),
                (3, Prot::Parity),
                (4, Prot::Parity),
                (2, Prot::None),
            ],
            // Every segment remote to the batch requester (node 0); node 1
            // is the one whose port drops mid-run.
            Scenario::PortDropMidAccess => {
                vec![(1, Prot::None), (2, Prot::None), (3, Prot::None)]
            }
            // Rack 0 (hosts 0–2) homes a mirrored, a parity, and an
            // unprotected segment, so its blackout exercises every
            // protection path at once; the second parity member lives in
            // rack 1 so the group spans racks even before placement runs.
            Scenario::RackLoss => vec![
                (0, Prot::Mirror),
                (1, Prot::Parity),
                (3, Prot::Parity),
                (2, Prot::None),
            ],
            // The flood victim (node 1) homes only the small hedge probe
            // segments, added below; the workload segments stay off it so
            // the flood and crash windows are entirely the hedges' story.
            // Node 4 is left emptiest so both mirror twins land there —
            // off every flooded wire.
            Scenario::HedgedFlood => {
                vec![(0, Prot::None), (2, Prot::None), (3, Prot::None)]
            }
        };
        for (i, &(home, _)) in layout.iter().enumerate() {
            let seg = pool
                .alloc(SEG_BYTES, Placement::On(NodeId(home)))
                .expect("setup capacity");
            let mut content_rng = rng.fork_indexed("content", i as u64);
            let data: Vec<u8> = (0..SEG_BYTES).map(|_| content_rng.below(256) as u8).collect();
            pool.write_bytes(LogicalAddr::new(seg, 0), &data)
                .expect("setup write");
            model.insert(seg, data);
            segments.push(seg);
        }
        if scenario == Scenario::RackLoss {
            // Filler allocations leave rack 0 the freest failure domain:
            // a host-only policy would pack the redundancy right next to
            // its primaries (the contrast check proves that loses data),
            // while the domain-aware policy is forced across racks.
            for h in 3..servers {
                pool.alloc(8 * FRAME_BYTES, Placement::On(NodeId(h)))
                    .expect("setup filler");
            }
        }
        for (i, &(_, prot)) in layout.iter().enumerate() {
            if prot == Prot::Mirror {
                pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, segments[i])
                    .expect("setup mirror");
            }
        }
        let parity_members: Vec<SegmentId> = layout
            .iter()
            .enumerate()
            .filter(|(_, &(_, p))| p == Prot::Parity)
            .map(|(i, _)| segments[i])
            .collect();
        if !parity_members.is_empty() {
            pm.protect_parity(&mut pool, &mut fabric, SimTime::ZERO, &parity_members)
                .expect("setup parity");
        }
        let mut hedge_segs = Vec::new();
        let mut hedge_model: Vec<Vec<u8>> = Vec::new();
        if scenario == Scenario::HedgedFlood {
            // Two small mirrored segments homed on the flood victim; the
            // hedged probes read these. Kept out of `segments` so the
            // random workload (whose offsets assume SEG_BYTES) never
            // touches them.
            for i in 0..2u64 {
                let seg = pool
                    .alloc(HEDGE_SEG_BYTES, Placement::On(NodeId(1)))
                    .expect("setup hedge segment");
                let mut content_rng = rng.fork_indexed("hedge-content", i);
                let data: Vec<u8> = (0..HEDGE_SEG_BYTES)
                    .map(|_| content_rng.below(256) as u8)
                    .collect();
                pool.write_bytes(LogicalAddr::new(seg, 0), &data)
                    .expect("setup hedge write");
                pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, seg)
                    .expect("setup hedge mirror");
                hedge_segs.push(seg);
                hedge_model.push(data);
            }
        }

        // The fault plan, explicit per scenario but timed/derived from the
        // seed where it does not change which paths are exercised.
        let mut plan = FaultPlan::new();
        let us = |n: u64| SimTime::from_nanos(n * 1000);
        match scenario {
            Scenario::CrashUnprotected | Scenario::CrashMirrored | Scenario::CrashParity => {
                plan.push(us(5), Fault::ServerCrash(NodeId(0)));
                plan.push(us(20), Fault::ServerRestart(NodeId(0)));
            }
            Scenario::LinkSpike => {
                plan.push(
                    us(8),
                    Fault::LinkDegrade {
                        node: NodeId(1),
                        factor: 8.0,
                    },
                );
                plan.push(us(16), Fault::LinkRestore(NodeId(1)));
            }
            Scenario::Combined => {
                plan.push(us(4), Fault::ServerCrash(NodeId(0)));
                plan.push(us(10), Fault::ServerCrash(NodeId(1)));
                plan.push(us(13), Fault::PortDown(NodeId(2)));
                plan.push(us(14), Fault::PortUp(NodeId(2)));
                plan.push(
                    us(16),
                    Fault::LinkDegrade {
                        node: NodeId(4),
                        factor: 6.0,
                    },
                );
                plan.push(us(18), Fault::ServerRestart(NodeId(0)));
                plan.push(us(20), Fault::ServerRestart(NodeId(1)));
                plan.push(us(22), Fault::LinkRestore(NodeId(4)));
            }
            Scenario::CrashAutoHeal => {
                plan.push(us(5), Fault::ServerCrash(NodeId(0)));
                // Cold restart well after the repairs finish; the detector
                // rejoins the node under a fresh epoch.
                plan.push(us(24), Fault::ServerRestart(NodeId(0)));
            }
            Scenario::FlapNoHeal => {
                // Both flaps are shorter than the 3 µs lease: long enough
                // to cross the 2-miss suspicion threshold, never long
                // enough to confirm.
                plan.push(us(6), Fault::PortDown(NodeId(1)));
                plan.push(SimTime::from_nanos(7_500), Fault::PortUp(NodeId(1)));
                plan.push(us(14), Fault::PortDown(NodeId(3)));
                plan.push(us(15), Fault::PortUp(NodeId(3)));
            }
            Scenario::PortDropMidAccess => {
                plan.push(us(10), Fault::PortDown(NodeId(1)));
                plan.push(us(18), Fault::PortUp(NodeId(1)));
            }
            Scenario::RackLoss => {
                // One event kills the whole failure domain; power returns
                // well after the orchestrator has rebuilt from survivors.
                plan.push(us(5), Fault::RackDown(0));
                plan.push(us(20), Fault::RackUp(0));
            }
            Scenario::HedgedFlood => {
                // The flood (scheduled as engine events) runs 8–33 µs;
                // mid-flood the victim crashes outright, and rejoins cold
                // after the orchestrator has promoted both twins.
                plan.push(us(12), Fault::ServerCrash(NodeId(1)));
                plan.push(us(24), Fault::ServerRestart(NodeId(1)));
            }
        }

        // The seeded workload.
        let mut wl = rng.fork("workload");
        let ops = (0..OPS)
            .map(|_| {
                let at = SimTime::from_nanos(wl.below(HORIZON.as_nanos()));
                let requester = NodeId(wl.below(servers as u64) as u32);
                let seg_idx = wl.below(segments.len() as u64) as usize;
                // The port-drop scenario issues only frame-spanning ops
                // (len > FRAME_BYTES guarantees a two-chunk walk), so every
                // refused access is a multi-frame one — the shape whose
                // accounting used to be inflated on partial failure.
                let len = if scenario == Scenario::PortDropMidAccess {
                    FRAME_BYTES + 8 + wl.below(FRAME_BYTES - 16)
                } else {
                    8 + wl.below(120)
                };
                let offset = wl.below(SEG_BYTES - len);
                let write = wl.chance(0.5);
                OpSpec {
                    at,
                    requester,
                    seg_idx,
                    offset,
                    len,
                    write,
                }
            })
            .collect();

        let protected_at_start: BTreeSet<SegmentId> = segments
            .iter()
            .copied()
            .filter(|s| pm.is_protected(*s))
            .collect();
        let world = World {
            scenario,
            seed,
            pool,
            fabric,
            pm,
            segments,
            model,
            lost: BTreeSet::new(),
            ledger: WriteLedger::new(),
            ops,
            policy: RetryPolicy::default_chaos(),
            trace: ChaosTrace::new(),
            checks: Vec::new(),
            pending_recovery: BTreeMap::new(),
            domains,
            lost_stash: BTreeMap::new(),
            protected_at_start,
            protected_lost: 0,
            probe_latencies: Vec::new(),
            hedge_segs,
            hedge_model,
            hedge_not_needed: 0,
            hedge_raced: 0,
            hedge_wins: 0,
            hedge_no_twin: 0,
            hedge_degraded: 0,
            hedge_mismatches: 0,
            hedge_cancels: 0,
            hedge_cancels_ok: 0,
            hedge_losers_fired: 0,
            healing: scenario.self_healing().then(|| Healing {
                detector: FailureDetector::new(
                    HealthConfig::default_chaos(),
                    servers,
                    SimTime::ZERO,
                ),
                orchestrator: RecoveryOrchestrator::new(),
            }),
            health_events: Vec::new(),
            telemetry_digest: 0,
            degraded_served: 0,
            degraded_mismatches: 0,
            batch_ok: 0,
            batch_failed: 0,
            atomicity_violations: 0,
            ops_ok: 0,
            ops_failed: 0,
            retries: 0,
            gave_up: 0,
            promoted: 0,
            reconstructed: 0,
            reprotected: 0,
            lost_count: 0,
        };
        (world, plan)
    }

    fn handle(&mut self, eng: &mut Engine<Ev>, ev: Ev) {
        let now = eng.now();
        match ev {
            Ev::Fault(f) => {
                self.trace.record(now, format!("fault: {f}"));
                match f {
                    Fault::ServerCrash(n) => {
                        let mut affected = self.pool.crash_server(n);
                        affected.sort_unstable();
                        self.fabric.set_port_down(n, true);
                        self.trace
                            .record(now, format!("  affected: {affected:?}"));
                        if self.healing.is_none() {
                            // Manual mode: the harness plays the operator
                            // and schedules recovery itself. With healing
                            // armed the detector owns the whole response.
                            self.pending_recovery.insert(n.0, affected);
                            eng.schedule_after(DETECTION_DELAY, Ev::Recover(n));
                        }
                    }
                    Fault::ServerRestart(n) => {
                        self.fabric.set_port_down(n, false);
                        match &mut self.healing {
                            Some(h) => {
                                // A cold restart: memory is gone, so the
                                // epoch rule drops any leftover mappings
                                // instead of resurrecting them.
                                let Healing {
                                    detector,
                                    orchestrator,
                                } = h;
                                let claimed = detector.membership().incarnation(n);
                                let out = orchestrator.admit_rejoin(
                                    &mut self.pool,
                                    detector.membership(),
                                    n,
                                    claimed,
                                    false,
                                );
                                self.trace.record(
                                    now,
                                    format!(
                                        "  cold rejoin {n}: resurrected={} dropped={:?}",
                                        out.resurrected, out.dropped
                                    ),
                                );
                            }
                            None => self.pool.restart_server(n),
                        }
                    }
                    Fault::LinkDegrade { node, factor } => {
                        self.fabric.degrade_node(node, factor);
                    }
                    Fault::LinkRestore(n) => {
                        self.fabric.restore_node(n);
                    }
                    Fault::PortDown(n) => {
                        self.fabric.set_port_down(n, true);
                    }
                    Fault::PortUp(n) => {
                        self.fabric.set_port_down(n, false);
                    }
                    Fault::RackDown(r) => {
                        // ToR and PDU gone at once: every host in the rack
                        // crashes and its port drops in the same instant.
                        // DRAM is retained (the crash model keeps memory),
                        // so a later RackUp can warm-rejoin.
                        let hosts = self
                            .domains
                            .as_ref()
                            .map_or_else(Vec::new, |d| d.hosts_in(r));
                        for n in hosts {
                            let mut affected = self.pool.crash_server(n);
                            affected.sort_unstable();
                            self.fabric.set_port_down(n, true);
                            self.trace
                                .record(now, format!("  {n} affected: {affected:?}"));
                            if self.healing.is_none() {
                                self.pending_recovery.insert(n.0, affected);
                                eng.schedule_after(DETECTION_DELAY, Ev::Recover(n));
                            }
                        }
                    }
                    Fault::RackUp(r) => {
                        // Power restored: ports come back first, then each
                        // host announces a warm rejoin. The epoch rule
                        // decides whether the retained memory is honored.
                        let hosts = self
                            .domains
                            .as_ref()
                            .map_or_else(Vec::new, |d| d.hosts_in(r));
                        for &n in &hosts {
                            self.fabric.set_port_down(n, false);
                        }
                        match &mut self.healing {
                            Some(h) => {
                                let Healing {
                                    detector,
                                    orchestrator,
                                } = h;
                                let claimed = detector.membership().epoch();
                                for &n in &hosts {
                                    let out = orchestrator.admit_rejoin(
                                        &mut self.pool,
                                        detector.membership(),
                                        n,
                                        claimed,
                                        true,
                                    );
                                    self.trace.record(
                                        now,
                                        format!(
                                            "  warm rejoin {n}: resurrected={} dropped={:?}",
                                            out.resurrected, out.dropped
                                        ),
                                    );
                                }
                            }
                            None => {
                                for &n in &hosts {
                                    self.pool.revive_server(n);
                                }
                            }
                        }
                        // A warm resurrection brings back segments that
                        // were written off while the rack was dark:
                        // restore the shadow model for any stashed
                        // segment that resolves again, so post-rejoin
                        // reads are verified byte-for-byte.
                        let stash = std::mem::take(&mut self.lost_stash);
                        for (seg, data) in stash {
                            if self.pool.read_bytes(LogicalAddr::new(seg, 0), 1).is_ok() {
                                self.lost.remove(&seg);
                                self.model.insert(seg, data);
                                self.trace.record(
                                    now,
                                    format!("  {seg} resurrected with contents intact"),
                                );
                            } else {
                                self.lost_stash.insert(seg, data);
                            }
                        }
                    }
                }
            }
            Ev::Recover(n) => {
                let affected = self
                    .pending_recovery
                    .remove(&n.0)
                    .expect("recover without crash");
                // Application segments split by whether protection covers
                // them; replicas and parity segments are the protection
                // layer's own business.
                let protected: Vec<SegmentId> = affected
                    .iter()
                    .copied()
                    .filter(|s| self.model.contains_key(s) && self.pm.is_protected(*s))
                    .collect();
                let unprotected: Vec<SegmentId> = affected
                    .iter()
                    .copied()
                    .filter(|s| self.model.contains_key(s) && !self.pm.is_protected(*s))
                    .collect();
                let report =
                    self.pm
                        .recover(&mut self.pool, &mut self.fabric, now, n, &affected);
                self.trace.record(
                    now,
                    format!(
                        "recover {n}: promoted {:?} reconstructed {:?} reprotected {:?} lost {:?}",
                        report.promoted, report.reconstructed, report.reprotected, report.lost
                    ),
                );
                let check =
                    check_recovery(&self.pool, &report, &protected, &unprotected, &self.model);
                self.trace.record(now, format!("  check: {check}"));
                self.checks.push(check);
                self.promoted += report.promoted.len() as u64;
                self.reconstructed += report.reconstructed.len() as u64;
                self.reprotected += report.reprotected.len() as u64;
                self.lost_count += report.lost.len() as u64;
                self.note_lost(&report.lost);
            }
            Ev::Op { id, attempt } => self.run_op(eng, id, attempt),
            Ev::Probe {
                idx,
                seg_idx,
                requester,
            } => {
                let seg = self.segments[seg_idx];
                let a = self
                    .pool
                    .access(
                        &mut self.fabric,
                        now,
                        requester,
                        LogicalAddr::new(seg, 0),
                        64,
                        MemOp::Read,
                    )
                    .expect("probe target must stay healthy");
                let lat = a.complete.duration_since(now).as_nanos();
                self.trace
                    .record(now, format!("probe {idx}: {seg} read in {lat} ns"));
                self.probe_latencies.push(lat);
            }
            Ev::HealthTick => {
                let Some(h) = &mut self.healing else { return };
                let events = h.detector.probe_tick(&mut self.fabric, now);
                for hev in &events {
                    self.trace.record(now, format!("health: {hev:?}"));
                    if let HealthEvent::ConfirmedDown { node, epoch, .. } = hev {
                        let queued =
                            h.orchestrator.on_confirmed_down(&self.pool, *node, *epoch);
                        self.trace
                            .record(now, format!("  queued {queued} segments for repair"));
                        eng.schedule_after(
                            h.detector.config().recovery_tick,
                            Ev::RecoveryStep,
                        );
                    }
                }
                self.health_events.extend(events);
            }
            Ev::RecoveryStep => {
                let Some(h) = &mut self.healing else { return };
                let batch = h.detector.config().recovery_batch;
                let done =
                    h.orchestrator
                        .step(&mut self.pool, &mut self.fabric, &mut self.pm, now, batch);
                let mut lost_this_step: Vec<SegmentId> = Vec::new();
                for t in &done {
                    self.trace.record(
                        now,
                        format!(
                            "auto-recover {} epoch {}: promoted {:?} reconstructed {:?} \
                             reprotected {:?} lost {:?}",
                            t.node,
                            t.epoch,
                            t.report.promoted,
                            t.report.reconstructed,
                            t.report.reprotected,
                            t.report.lost
                        ),
                    );
                    self.promoted += t.report.promoted.len() as u64;
                    self.reconstructed += t.report.reconstructed.len() as u64;
                    self.reprotected += t.report.reprotected.len() as u64;
                    self.lost_count += t.report.lost.len() as u64;
                    lost_this_step.extend_from_slice(&t.report.lost);
                }
                if h.orchestrator.has_pending() {
                    eng.schedule_after(h.detector.config().recovery_tick, Ev::RecoveryStep);
                }
                self.note_lost(&lost_this_step);
            }
            Ev::DegradedProbe { seg_idx, requester } => {
                let seg = self.segments[seg_idx];
                let addr = LogicalAddr::new(seg, 16);
                match self
                    .pool
                    .access(&mut self.fabric, now, requester, addr, 96, MemOp::Read)
                {
                    Ok(_) => {
                        self.trace.record(
                            now,
                            format!("degraded probe {seg}: primary healthy"),
                        );
                    }
                    Err(_) => {
                        if !self.serve_degraded(now, "degraded probe", requester, seg, 16, 96) {
                            self.checks.push(CheckResult::fail(
                                "degraded-window-exercised",
                                format!("probe of {seg} unservable mid-fault"),
                            ));
                        }
                    }
                }
            }
            Ev::BatchWave { idx } => {
                // One scatter-gather batch of frame-spanning reads over
                // every application segment. Waves inside the port-down
                // window must fail whole: one downed holder refuses the
                // entire batch, and not a single counter, DRAM access, or
                // fabric transfer may have been charged for it.
                let counts = self.pool.access_counts();
                let fab = (self.fabric.read_count(), self.fabric.write_count());
                let ops: Vec<BatchOp> = self
                    .segments
                    .iter()
                    .map(|&s| BatchOp::read(LogicalAddr::new(s, FRAME_BYTES - 512), 1024))
                    .collect();
                match self
                    .pool
                    .access_batch(&mut self.fabric, now, NodeId(0), &ops)
                {
                    Ok(r) => {
                        self.batch_ok += 1;
                        self.trace.record(
                            now,
                            format!(
                                "batch wave {idx}: {} ops, {} remote bytes, done {}",
                                r.ops.len(),
                                r.remote_bytes,
                                r.complete
                            ),
                        );
                        // One completion event per holder, inserted as a
                        // single batch — the per-holder lists the access
                        // engine produces feed the kernel directly.
                        let ids = schedule_holder_completions(eng, &r, |holder, _| {
                            Ev::HolderDone { wave: idx, holder }
                        })
                        .expect("holder completions are never before now");
                        if ids.len() != r.holder_done.len() {
                            self.checks.push(CheckResult::fail(
                                "holder-completion-batch",
                                format!(
                                    "wave {idx}: {} holders, {} events",
                                    r.holder_done.len(),
                                    ids.len()
                                ),
                            ));
                        }
                    }
                    Err(e) => {
                        self.batch_failed += 1;
                        if self.pool.access_counts() != counts
                            || (self.fabric.read_count(), self.fabric.write_count()) != fab
                        {
                            self.atomicity_violations += 1;
                        }
                        self.trace
                            .record(now, format!("batch wave {idx}: failed whole ({e})"));
                    }
                }
            }
            Ev::HolderDone { wave, holder } => {
                // The stream-drain instant is part of the determinism
                // contract: it lands in the trace, so any kernel that
                // reorders or re-times holder completions breaks digests.
                self.trace
                    .record(now, format!("batch wave {wave}: holder {holder} drained"));
            }
            Ev::Flood { from, holder, bytes } => {
                match self.fabric.try_read(now, from, holder, bytes) {
                    Ok(c) => self.trace.record(
                        now,
                        format!("flood: {bytes} B {holder}->{from} drains at {}", c.complete),
                    ),
                    Err(e) => self.trace.record(now, format!("flood refused: {e}")),
                }
            }
            Ev::HedgedProbe {
                idx,
                seg_idx,
                requester,
            } => self.run_hedged_probe(eng, idx, seg_idx, requester),
            Ev::HedgeDone { idx } => {
                self.trace
                    .record(now, format!("hedged probe {idx}: winner delivered"));
            }
            Ev::HedgeLoser { idx } => {
                self.hedge_losers_fired += 1;
                self.trace.record(
                    now,
                    format!("hedged probe {idx}: cancelled loser fired anyway"),
                );
            }
        }
    }

    /// [`Scenario::HedgedFlood`] only: one latency-sensitive 4 KiB read
    /// through the hedging policy. A raced probe schedules the winner's
    /// delivery and the loser's would-be completion, then cancels the
    /// loser through the engine — the cancellation half of the race
    /// contract ([`HedgeOutcome::loser_done`]).
    fn run_hedged_probe(
        &mut self,
        eng: &mut Engine<Ev>,
        idx: usize,
        seg_idx: usize,
        requester: NodeId,
    ) {
        let now = eng.now();
        let seg = self.hedge_segs[seg_idx];
        // Median-based deadline: the flood pushes a tail of workload reads
        // out by tens of µs, which would drag a p99 deadline along with
        // it; the median stays at the uncongested service time.
        let cfg = HedgeConfig {
            floor: SimDuration::from_micros(2),
            quantile: 0.5,
            multiplier: 1.0,
        };
        let out = match hedged_read(
            &mut self.pool,
            &self.pm,
            &mut self.fabric,
            now,
            requester,
            LogicalAddr::new(seg, 0),
            4096,
            &cfg,
        ) {
            Ok(out) => out,
            Err(e) => {
                self.checks.push(CheckResult::fail(
                    "hedged-probe-served",
                    format!("probe {idx} of {seg}: {e}"),
                ));
                return;
            }
        };
        match &out {
            HedgeOutcome::NotNeeded { complete } => {
                self.hedge_not_needed += 1;
                self.trace.record(
                    now,
                    format!("hedged probe {idx}: {seg} inside deadline, done {complete}"),
                );
            }
            HedgeOutcome::Raced {
                winner,
                complete,
                primary_done,
                hedge_done,
                ..
            } => {
                self.hedge_raced += 1;
                if *winner == HedgeWinner::Hedge {
                    self.hedge_wins += 1;
                }
                self.trace.record(
                    now,
                    format!(
                        "hedged probe {idx}: {seg} raced, {winner:?} won \
                         (primary@{primary_done} hedge@{hedge_done}), done {complete}"
                    ),
                );
                eng.schedule_at(*complete, Ev::HedgeDone { idx })
                    .expect("winner completion is never before now");
                let loser_at = out.loser_done().expect("raced outcome has a loser");
                let id = eng
                    .schedule_at(loser_at, Ev::HedgeLoser { idx })
                    .expect("loser cancellation is never before now");
                self.hedge_cancels += 1;
                if eng.cancel(id) {
                    self.hedge_cancels_ok += 1;
                }
            }
            HedgeOutcome::NoTwin { complete } => {
                self.hedge_no_twin += 1;
                self.trace.record(
                    now,
                    format!("hedged probe {idx}: {seg} has no live twin, done {complete}"),
                );
            }
            HedgeOutcome::PrimaryFailed { read } => {
                let expect = &self.hedge_model[seg_idx][..4096];
                let check = check_degraded_read(expect, read);
                if !check.passed {
                    self.hedge_mismatches += 1;
                    self.checks.push(check);
                }
                self.hedge_degraded += 1;
                self.degraded_served += 1;
                if let Some(t) = self.pool.telemetry_mut() {
                    t.note_degraded_read();
                }
                self.trace.record(
                    now,
                    format!(
                        "hedged probe {idx}: {seg} primary dead, served degraded via {:?}",
                        read.source
                    ),
                );
            }
        }
    }

    fn run_op(&mut self, eng: &mut Engine<Ev>, id: u64, attempt: u32) {
        let now = eng.now();
        let spec = self.ops[id as usize];
        let seg = self.segments[spec.seg_idx];
        let addr = LogicalAddr::new(seg, spec.offset);
        let kind = if spec.write { "write" } else { "read" };
        let result: Result<(), PoolError> = if spec.write {
            if self.pool.node(spec.requester).is_failed() {
                Err(PoolError::ServerDown(spec.requester))
            } else {
                let data = write_data(self.seed, id, spec.len as usize);
                self.pm
                    .write(&mut self.pool, addr, &data)
                    .map(|amp| {
                        self.ledger.record(amp, self.pm.is_protected(seg));
                        if let Some(m) = self.model.get_mut(&seg) {
                            m[spec.offset as usize..(spec.offset + spec.len) as usize]
                                .copy_from_slice(&data);
                        } else {
                            self.checks.push(CheckResult::fail(
                                "exception-surfacing",
                                format!("write to lost {seg} succeeded"),
                            ));
                        }
                    })
            }
        } else {
            // Accounting snapshot: a refused access must charge nothing.
            let counts = self.pool.access_counts();
            let fab = (self.fabric.read_count(), self.fabric.write_count());
            self.pool
                .access(
                    &mut self.fabric,
                    now,
                    spec.requester,
                    addr,
                    spec.len,
                    MemOp::Read,
                )
                .inspect_err(|_| {
                    if self.pool.access_counts() != counts
                        || (self.fabric.read_count(), self.fabric.write_count()) != fab
                    {
                        self.atomicity_violations += 1;
                    }
                })
                .map(|a| {
                    match self.model.get(&seg) {
                        Some(m) => {
                            let expect = &m[spec.offset as usize..(spec.offset + spec.len) as usize];
                            let got = self
                                .pool
                                .read_bytes(addr, spec.len)
                                .expect("readable after successful access");
                            if got != expect {
                                self.checks.push(CheckResult::fail(
                                    "translation-consistency",
                                    format!("op {id}: stale bytes read from {seg}"),
                                ));
                            }
                        }
                        None => self.checks.push(CheckResult::fail(
                            "exception-surfacing",
                            format!("read of lost {seg} succeeded"),
                        )),
                    }
                    let lat = a.complete.duration_since(now).as_nanos();
                    self.trace
                        .record(now, format!("op {id} read {seg}+{} ok in {lat} ns", spec.offset));
                })
        };
        match result {
            Ok(()) => {
                self.ops_ok += 1;
                if spec.write {
                    self.trace
                        .record(now, format!("op {id} write {seg}+{} ok", spec.offset));
                }
            }
            Err(e) if is_retryable(&e) => {
                if !spec.write
                    && self.serve_degraded(
                        now,
                        &format!("op {id}"),
                        spec.requester,
                        seg,
                        spec.offset,
                        spec.len,
                    )
                {
                    self.ops_ok += 1;
                } else if self.policy.may_retry(spec.at, now, attempt) {
                    self.retries += 1;
                    self.trace.record(
                        now,
                        format!("op {id} {kind} {seg} failed ({e}); retry {}", attempt + 1),
                    );
                    eng.schedule_after(self.policy.backoff_after(attempt), Ev::Op {
                        id,
                        attempt: attempt + 1,
                    });
                } else {
                    self.gave_up += 1;
                    self.trace.record(
                        now,
                        format!("op {id} {kind} {seg} gave up after {} attempts ({e})", attempt + 1),
                    );
                }
            }
            Err(e) => {
                self.ops_failed += 1;
                self.trace
                    .record(now, format!("op {id} {kind} {seg} exception: {e}"));
            }
        }
    }

    /// Book a recovery report's losses: the shadow model entry moves to
    /// the stash (a warm rack rejoin may resurrect it), and losses among
    /// the initially-protected population are counted separately — under
    /// domain-aware placement that counter must stay at zero.
    fn note_lost(&mut self, lost: &[SegmentId]) {
        for seg in lost {
            if self.protected_at_start.contains(seg) {
                self.protected_lost += 1;
            }
            if let Some(data) = self.model.remove(seg) {
                self.lost_stash.insert(*seg, data);
            }
            self.lost.insert(*seg);
        }
    }

    /// Self-healing scenarios only: a read that hit a transient fault is
    /// served from surviving redundancy (mirror twin or on-the-fly parity
    /// XOR) instead of waiting out the repair. Returns whether the read
    /// was served; the bytes are compared against the shadow model.
    fn serve_degraded(
        &mut self,
        now: SimTime,
        what: &str,
        requester: NodeId,
        seg: SegmentId,
        offset: u64,
        len: u64,
    ) -> bool {
        if self.healing.is_none() || !self.pm.is_protected(seg) {
            return false;
        }
        let Some(m) = self.model.get(&seg) else {
            return false;
        };
        let expect = m[offset as usize..(offset + len) as usize].to_vec();
        match self.pm.read_degraded(
            &self.pool,
            &mut self.fabric,
            now,
            requester,
            LogicalAddr::new(seg, offset),
            len,
        ) {
            Ok(r) => {
                let check = check_degraded_read(&expect, &r);
                if !check.passed {
                    self.degraded_mismatches += 1;
                    self.checks.push(check);
                }
                self.degraded_served += 1;
                if let Some(t) = self.pool.telemetry_mut() {
                    t.note_degraded_read();
                }
                self.trace.record(
                    now,
                    format!(
                        "{what} read {seg}+{offset} served degraded via {:?}",
                        r.source
                    ),
                );
                true
            }
            Err(_) => false,
        }
    }

    fn final_checks(&mut self) {
        let t = check_translation(&mut self.pool, &self.model);
        self.checks.push(t);
        self.checks.push(check_write_amplification(&self.ledger));
        let expect = |name: &'static str, cond: bool, detail: String| {
            if cond {
                CheckResult::pass(name)
            } else {
                CheckResult::fail(name, detail)
            }
        };
        if let Some(h) = &self.healing {
            self.checks.push(check_lease_confirmations(
                h.detector.probe_log(),
                &self.health_events,
                h.detector.config().lease,
            ));
            self.checks.push(check_epoch_monotonic(&self.health_events));
            self.checks.push(expect(
                "degraded-read-identity",
                self.degraded_mismatches == 0,
                format!("{} degraded reads diverged from the model", self.degraded_mismatches),
            ));
        }
        match self.scenario {
            Scenario::CrashUnprotected => {
                self.checks.push(expect(
                    "exception-surfacing",
                    self.lost_count >= 1
                        && self
                            .lost
                            .iter()
                            .all(|s| self.pool.read_bytes(LogicalAddr::new(*s, 0), 1).is_err()),
                    format!("lost={} but reads of lost segments succeed", self.lost_count),
                ));
            }
            Scenario::CrashMirrored => {
                self.checks.push(expect(
                    "mirror-promotion-exercised",
                    self.promoted >= 1 && self.lost_count == 0,
                    format!("promoted={} lost={}", self.promoted, self.lost_count),
                ));
            }
            Scenario::CrashParity => {
                self.checks.push(expect(
                    "parity-reconstruction-exercised",
                    self.reconstructed >= 1 && self.lost_count == 0,
                    format!("reconstructed={} lost={}", self.reconstructed, self.lost_count),
                ));
            }
            Scenario::LinkSpike => {
                self.checks.push(expect(
                    "no-failures-under-degradation",
                    self.ops_failed == 0 && self.gave_up == 0,
                    format!("ops_failed={} gave_up={}", self.ops_failed, self.gave_up),
                ));
                let p = &self.probe_latencies;
                self.checks.push(expect(
                    "link-degradation-latency",
                    p.len() == 3 && p[1] >= 2 * p[0] && p[2] < p[1],
                    format!("probe latencies (before/during/after): {p:?}"),
                ));
            }
            Scenario::Combined => {
                self.checks.push(expect(
                    "all-recovery-paths-exercised",
                    self.promoted >= 1 && self.reconstructed >= 1 && self.retries >= 1,
                    format!(
                        "promoted={} reconstructed={} retries={}",
                        self.promoted, self.reconstructed, self.retries
                    ),
                ));
                self.checks
                    .push(check_coherence_mutex(self.seed, 4, 300));
            }
            Scenario::CrashAutoHeal => {
                let h = self.healing.as_ref().expect("self-healing armed");
                self.checks.push(expect(
                    "autonomous-detection-and-repair",
                    h.detector.confirmation_count() >= 1
                        && h.orchestrator.recovery_count() >= 2
                        && self.promoted >= 1
                        && self.reconstructed >= 1
                        && self.lost_count == 0,
                    format!(
                        "confirmations={} batches={} promoted={} reconstructed={} lost={}",
                        h.detector.confirmation_count(),
                        h.orchestrator.recovery_count(),
                        self.promoted,
                        self.reconstructed,
                        self.lost_count
                    ),
                ));
                self.checks.push(expect(
                    "rejoin-under-fresh-epoch",
                    h.detector.epoch() == 2 && !self.pool.node(NodeId(0)).is_failed(),
                    format!(
                        "epoch={} node0 failed={}",
                        h.detector.epoch(),
                        self.pool.node(NodeId(0)).is_failed()
                    ),
                ));
                self.checks.push(expect(
                    "degraded-window-exercised",
                    self.degraded_served >= 2,
                    format!("degraded_served={}", self.degraded_served),
                ));
            }
            Scenario::FlapNoHeal => {
                let h = self.healing.as_ref().expect("self-healing armed");
                self.checks.push(expect(
                    "flaps-never-confirm",
                    h.detector.suspicion_count() >= 2
                        && h.detector.confirmation_count() == 0
                        && h.orchestrator.recovery_count() == 0
                        && h.detector.epoch() == 0
                        && self.lost_count == 0,
                    format!(
                        "suspicions={} confirmations={} batches={} epoch={} lost={}",
                        h.detector.suspicion_count(),
                        h.detector.confirmation_count(),
                        h.orchestrator.recovery_count(),
                        h.detector.epoch(),
                        self.lost_count
                    ),
                ));
                self.checks.push(expect(
                    "degraded-routes-around-flap",
                    self.degraded_served >= 2,
                    format!("degraded_served={}", self.degraded_served),
                ));
            }
            Scenario::PortDropMidAccess => {
                self.checks.push(expect(
                    "batch-window-exercised",
                    self.batch_ok >= 2 && self.batch_failed >= 1,
                    format!(
                        "batch_ok={} batch_failed={}",
                        self.batch_ok, self.batch_failed
                    ),
                ));
                self.checks.push(expect(
                    "atomic-failure-accounting",
                    self.atomicity_violations == 0,
                    format!(
                        "{} refused accesses left charged counters behind",
                        self.atomicity_violations
                    ),
                ));
            }
            Scenario::RackLoss => {
                let h = self.healing.as_ref().expect("self-healing armed");
                let domains = self.domains.clone().expect("rack topology");
                // The whole failure domain was confirmed and every
                // protected segment was rebuilt from surviving racks.
                self.checks.push(expect(
                    "rack-loss-detected-and-healed",
                    h.detector.confirmation_count() == 3
                        && self.promoted >= 1
                        && self.reconstructed >= 1
                        && self.protected_lost == 0,
                    format!(
                        "confirmations={} promoted={} reconstructed={} protected_lost={}",
                        h.detector.confirmation_count(),
                        self.promoted,
                        self.reconstructed,
                        self.protected_lost
                    ),
                ));
                // Warm rejoin under fresh epochs: all three hosts are
                // back, and the unprotected segment that was written off
                // resurrected with its contents.
                self.checks.push(expect(
                    "rack-rejoin-under-fresh-epoch",
                    h.detector.epoch() == 6
                        && domains
                            .hosts_in(0)
                            .iter()
                            .all(|&n| !self.pool.node(n).is_failed())
                        && self.lost.is_empty(),
                    format!(
                        "epoch={} still_lost={:?}",
                        h.detector.epoch(),
                        self.lost
                    ),
                ));
                self.checks.push(expect(
                    "degraded-window-exercised",
                    self.degraded_served >= 2,
                    format!("degraded_served={}", self.degraded_served),
                ));
                // Post-heal placement independence: every surviving
                // protection group spans racks again.
                let mut independent = true;
                let mut detail = String::new();
                for &seg in &self.segments {
                    let Some(home) = self.pool.holder_of(seg) else {
                        continue;
                    };
                    let mut partners: Vec<NodeId> = Vec::new();
                    if let Some(rep) = self.pm.replica(seg) {
                        partners.extend(self.pool.holder_of(rep));
                    }
                    if let Some(gid) = self.pm.group_of(seg) {
                        for &m in self.pm.group_members(gid).unwrap_or(&[]) {
                            if m != seg {
                                partners.extend(self.pool.holder_of(m));
                            }
                        }
                        if let Some(p) = self.pm.parity_segment(gid) {
                            partners.extend(self.pool.holder_of(p));
                        }
                    }
                    for p in partners {
                        if domains.same_rack(home, p) {
                            independent = false;
                            detail.push_str(&format!("{seg}: {home} and {p} share a rack; "));
                        }
                    }
                }
                self.checks
                    .push(expect("post-heal-rack-independence", independent, detail));
                // The contrast half of the acceptance: the identical
                // topology under host-only placement packs redundancy
                // into rack 0 and demonstrably loses protected segments.
                self.checks.push(host_only_contrast());
            }
            Scenario::HedgedFlood => {
                let h = self.healing.as_ref().expect("self-healing armed");
                // The fast path never hedged, the flood window raced and
                // the hedge won (the twin dodged the backlog), and no
                // probe found its twin missing.
                self.checks.push(expect(
                    "hedge-race-exercised",
                    self.hedge_not_needed >= 1
                        && self.hedge_raced >= 1
                        && self.hedge_wins >= 1
                        && self.hedge_no_twin == 0,
                    format!(
                        "not_needed={} raced={} wins={} no_twin={}",
                        self.hedge_not_needed,
                        self.hedge_raced,
                        self.hedge_wins,
                        self.hedge_no_twin
                    ),
                ));
                // Every race loser's completion event was cancelled
                // through the engine, and none ever fired.
                self.checks.push(expect(
                    "hedge-cancel-honored",
                    self.hedge_cancels >= 1
                        && self.hedge_cancels_ok == self.hedge_cancels
                        && self.hedge_losers_fired == 0,
                    format!(
                        "cancels={} ok={} losers_fired={}",
                        self.hedge_cancels, self.hedge_cancels_ok, self.hedge_losers_fired
                    ),
                ));
                // Inside the crash-repair window the hedge fell through
                // to the degraded path byte-identically, while the
                // detector and orchestrator rebuilt both twins.
                self.checks.push(expect(
                    "hedged-serves-during-rebuild",
                    self.hedge_degraded >= 1
                        && self.hedge_mismatches == 0
                        && h.detector.confirmation_count() >= 1
                        && self.promoted >= 2
                        && self.lost_count == 0,
                    format!(
                        "degraded={} mismatches={} confirmations={} promoted={} lost={}",
                        self.hedge_degraded,
                        self.hedge_mismatches,
                        h.detector.confirmation_count(),
                        self.promoted,
                        self.lost_count
                    ),
                ));
            }
        }
        // Telemetry roll-up: the snapshot digest becomes part of the trace
        // (and therefore of the determinism contract), and the instrument
        // books must balance.
        let end = SimTime::ZERO + HORIZON;
        let snap = rack_snapshot(&mut self.pool, &mut self.fabric, end);
        self.telemetry_digest = snap.digest();
        self.trace
            .record(end, format!("telemetry digest {:016x}", self.telemetry_digest));
        self.checks.push(check_telemetry_conservation(&snap));
        let counted_degraded = snap.counter("pool.degraded_reads", &[]);
        if counted_degraded != self.degraded_served {
            self.checks.push(CheckResult::fail(
                "telemetry-conservation",
                format!(
                    "pool.degraded_reads {counted_degraded} != served {}",
                    self.degraded_served
                ),
            ));
        }
    }
}

/// The contrast half of the rack-loss acceptance: the same 4×3
/// topology, the same segments and filler capacities, and the same
/// rack-0 blackout — but under the host-only placement policy. The
/// fillers make rack 0 the freest domain, so host-only placement packs
/// the mirror replica and the parity block next to their primaries,
/// and the blackout must then lose protected segments. Passing proves
/// the domain-aware policy is what saves them in the main run.
fn host_only_contrast() -> CheckResult {
    let config = PoolConfig {
        servers: 12,
        capacity_per_server: 64 * FRAME_BYTES,
        shared_per_server: 48 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 16,
    };
    let mut pool = LogicalPool::new(config);
    let mut fabric = Fabric::new(LinkProfile::link1(), 12);
    let domains = DomainMap::uniform(4, 3);
    let mut pm = ProtectionManager::new();
    let homes = [0u32, 1, 3, 2];
    let mut segs = Vec::new();
    for &h in &homes {
        let seg = pool
            .alloc(SEG_BYTES, Placement::On(NodeId(h)))
            .expect("contrast alloc");
        segs.push(seg);
    }
    for h in 3..12u32 {
        pool.alloc(8 * FRAME_BYTES, Placement::On(NodeId(h)))
            .expect("contrast filler");
    }
    pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, segs[0])
        .expect("contrast mirror");
    pm.protect_parity(&mut pool, &mut fabric, SimTime::ZERO, &[segs[1], segs[2]])
        .expect("contrast parity");
    let replica = pm.replica(segs[0]).expect("contrast mirrored");
    let colocated = pool
        .holder_of(replica)
        .is_some_and(|r| domains.same_rack(NodeId(0), r));
    // Blackout rack 0, then run the same per-node recovery the
    // orchestrator would.
    let mut crashed = Vec::new();
    for n in domains.hosts_in(0) {
        let mut affected = pool.crash_server(n);
        affected.sort_unstable();
        crashed.push((n, affected));
    }
    let mut lost_protected = 0u64;
    for (n, affected) in crashed {
        let report = pm.recover(
            &mut pool,
            &mut fabric,
            SimTime::from_nanos(8_000),
            n,
            &affected,
        );
        lost_protected += report
            .lost
            .iter()
            .filter(|s| segs[..3].contains(s))
            .count() as u64;
    }
    if colocated && lost_protected >= 1 {
        CheckResult::pass("host-only-contrast")
    } else {
        CheckResult::fail(
            "host-only-contrast",
            format!("colocated={colocated} lost_protected={lost_protected}"),
        )
    }
}

/// Run one scenario under one seed. Pure: same inputs ⇒ same report,
/// including the trace digest.
pub fn run_scenario(scenario: Scenario, seed: u64) -> ChaosReport {
    let (mut world, plan) = World::build(scenario, seed);
    let mut eng: Engine<Ev> = Engine::new();
    for pf in plan.iter() {
        eng.schedule_at(pf.at, Ev::Fault(pf.fault))
            .expect("fault plan times are within the horizon");
    }
    for (id, spec) in world.ops.iter().enumerate() {
        eng.schedule_at(spec.at, Ev::Op {
            id: id as u64,
            attempt: 0,
        })
        .expect("op times are within the horizon");
    }
    if scenario.self_healing() {
        // Detector sweeps at the configured cadence across the horizon.
        // Faults are scheduled first, so a fault and a sweep landing on
        // the same instant resolve fault-first (FIFO tie-break).
        let interval = HealthConfig::default_chaos().probe_interval;
        let end = SimTime::ZERO + HORIZON;
        // HedgedFlood arms the detector only from the crash instant. A
        // pre-crash sweep has nothing to detect, but its probe flits chain
        // through the flooded wires and — because wire reservations are
        // strict FIFO — fence *every* wire's free-at time at the flood's
        // drain horizon, erasing the congested-primary / idle-twin
        // asymmetry the hedge race exists to exploit.
        let start = if scenario == Scenario::HedgedFlood {
            SimTime::from_nanos(12_000)
        } else {
            SimTime::ZERO
        };
        let mut t = start + interval;
        while t <= end {
            eng.schedule_at(t, Ev::HealthTick)
                .expect("sweep times are within the horizon");
            t += interval;
        }
    }
    if scenario == Scenario::CrashAutoHeal {
        // Reads pinned inside the crash→repair window, issued from a
        // healthy requester, must be served from surviving redundancy:
        // seg0 via its mirror twin, seg1 via on-the-fly parity XOR.
        for (at_ns, seg_idx) in [(6_200u64, 0usize), (7_200, 1)] {
            eng.schedule_at(SimTime::from_nanos(at_ns), Ev::DegradedProbe {
                seg_idx,
                requester: NodeId(4),
            })
            .expect("probe times are within the horizon");
        }
    }
    if scenario == Scenario::RackLoss {
        // Reads pinned inside the rack-dark window, issued from surviving
        // racks: seg0 via its cross-rack mirror twin, seg1 via on-the-fly
        // parity XOR from the surviving member and parity block.
        for (at_ns, seg_idx, req) in [(6_200u64, 0usize, 6u32), (7_200, 1, 9)] {
            eng.schedule_at(SimTime::from_nanos(at_ns), Ev::DegradedProbe {
                seg_idx,
                requester: NodeId(req),
            })
            .expect("probe times are within the horizon");
        }
    }
    if scenario == Scenario::FlapNoHeal {
        // One read inside each sub-lease flap window: the primary's port
        // is down, so the read must route around the flap degraded even
        // though no recovery ever runs.
        for (at_ns, seg_idx) in [(6_700u64, 0usize), (14_700, 1)] {
            eng.schedule_at(SimTime::from_nanos(at_ns), Ev::DegradedProbe {
                seg_idx,
                requester: NodeId(0),
            })
            .expect("probe times are within the horizon");
        }
    }
    if scenario == Scenario::PortDropMidAccess {
        // Scatter-gather waves before, twice inside, and after the
        // port-down window (10–18 µs).
        for (idx, at_us) in [5u64, 12, 14, 20].into_iter().enumerate() {
            eng.schedule_at(SimTime::from_nanos(at_us * 1000), Ev::BatchWave { idx })
                .expect("wave times are within the horizon");
        }
    }
    if scenario == Scenario::HedgedFlood {
        // Two bulk reads load the victim's up-wire back to back
        // (~12.5 µs each at link1 speed, so busy until ~33 µs), then the
        // victim crashes at 12 µs and rejoins cold at 24 µs. Probes: one
        // before the flood (fast path, no hedge), one inside it (race;
        // the twin wins), one inside the crash-repair window (degraded),
        // and one after promotion and rejoin (fast path again).
        for at_us in [8u64, 9] {
            eng.schedule_at(SimTime::from_nanos(at_us * 1000), Ev::Flood {
                from: NodeId(3),
                holder: NodeId(1),
                bytes: 256 * 1024,
            })
            .expect("flood times are within the horizon");
        }
        for (idx, (at_ns, seg_idx)) in [(4_000u64, 0usize), (10_000, 0), (14_000, 1), (26_000, 1)]
            .into_iter()
            .enumerate()
        {
            eng.schedule_at(SimTime::from_nanos(at_ns), Ev::HedgedProbe {
                idx,
                seg_idx,
                requester: NodeId(0),
            })
            .expect("probe times are within the horizon");
        }
    }
    if scenario == Scenario::LinkSpike {
        // Latency probes before, during, and after the spike window; the
        // probed segment is homed on the degraded node.
        for (idx, at_us) in [4u64, 12, 20].into_iter().enumerate() {
            eng.schedule_at(SimTime::from_nanos(at_us * 1000), Ev::Probe {
                idx,
                seg_idx: 1,
                requester: NodeId(0),
            })
            .expect("probe times are within the horizon");
        }
    }
    eng.run(|e, ev| world.handle(e, ev));
    world.final_checks();
    ChaosReport {
        scenario: scenario.name(),
        seed,
        digest: world.trace.digest(),
        telemetry_digest: world.telemetry_digest,
        events: eng.events_processed(),
        trace: world.trace,
        checks: world.checks,
        ops_ok: world.ops_ok,
        ops_failed: world.ops_failed,
        retries: world.retries,
        gave_up: world.gave_up,
        promoted: world.promoted,
        reconstructed: world.reconstructed,
        reprotected: world.reprotected,
        lost: world.lost_count,
        suspicions: world
            .healing
            .as_ref()
            .map_or(0, |h| h.detector.suspicion_count()),
        confirmations: world
            .healing
            .as_ref()
            .map_or(0, |h| h.detector.confirmation_count()),
        auto_recoveries: world
            .healing
            .as_ref()
            .map_or(0, |h| h.orchestrator.recovery_count()),
        degraded_served: world.degraded_served,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_passes_and_is_deterministic() {
        for s in Scenario::all() {
            let a = run_scenario(s, 42);
            for c in &a.checks {
                assert!(c.passed, "[{} seed 42] {c}", a.scenario);
            }
            let b = run_scenario(s, 42);
            assert_eq!(a.digest, b.digest, "{}: same seed, different trace", a.scenario);
            assert_eq!(
                a.telemetry_digest, b.telemetry_digest,
                "{}: same seed, different telemetry",
                a.scenario
            );
            assert!(a.trace.diff(&b.trace).is_none());
        }
    }

    #[test]
    fn different_seeds_change_the_trace() {
        let a = run_scenario(Scenario::CrashMirrored, 1);
        let b = run_scenario(Scenario::CrashMirrored, 2);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn combined_exercises_retries_and_both_repairs() {
        let r = run_scenario(Scenario::Combined, 7);
        assert!(r.passed(), "{:#?}", r.checks);
        assert!(r.promoted >= 1);
        assert!(r.reconstructed >= 1);
        assert!(r.retries >= 1);
    }
}
