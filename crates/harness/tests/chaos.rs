// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Integration tests: every recovery path in `lmp-core::failure` is
//! exercised end-to-end through the chaos harness, deterministically.
//!
//! Each test runs a full scenario — engine, fault plan, retries,
//! recovery, invariant checkers — and pins both the verdict and the
//! determinism contract (same seed ⇒ identical trace digest).

use lmp_harness::prelude::*;

fn run_twice(scenario: Scenario, seed: u64) -> ChaosReport {
    let a = run_scenario(scenario, seed);
    let b = run_scenario(scenario, seed);
    assert_eq!(
        a.digest, b.digest,
        "{scenario} seed {seed} diverged: {:?}",
        a.trace.diff(&b.trace)
    );
    assert!(
        a.passed(),
        "{scenario} seed {seed} failed checks:\n{}",
        a.checks
            .iter()
            .filter(|c| !c.passed)
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    a
}

/// Exception path: an unprotected segment dies with its server and the
/// loss surfaces as recoverable errors, never a panic.
#[test]
fn exception_path_crash_unprotected() {
    for seed in [3, 17, 404] {
        let r = run_twice(Scenario::CrashUnprotected, seed);
        assert_eq!(r.lost, 1, "seed {seed}: exactly the victim segment is lost");
        assert_eq!(r.promoted + r.reconstructed, 0);
        assert!(r.ops_failed > 0, "seed {seed}: loss must surface to ops");
    }
}

/// Mirror promotion path: the replica takes over byte-identically and a
/// fresh replica is re-established.
#[test]
fn mirror_promotion_path() {
    for seed in [1, 42, 1000] {
        let r = run_twice(Scenario::CrashMirrored, seed);
        assert!(r.promoted >= 1, "seed {seed}: no mirror was promoted");
        assert_eq!(r.lost, 0, "seed {seed}: mirrored data must survive");
    }
}

/// Parity reconstruction path: XOR over the survivors rebuilds the
/// victim byte-identically.
#[test]
fn parity_reconstruction_path() {
    for seed in [2, 42, 777] {
        let r = run_twice(Scenario::CrashParity, seed);
        assert!(r.reconstructed >= 1, "seed {seed}: nothing was reconstructed");
        assert_eq!(r.lost, 0, "seed {seed}: parity-protected data must survive");
    }
}

/// Link degradation slows accesses but never loses data or fails ops.
#[test]
fn link_spike_is_loss_free() {
    for seed in [5, 42] {
        let r = run_twice(Scenario::LinkSpike, seed);
        assert_eq!(r.ops_failed, 0, "seed {seed}: latency must not become loss");
        assert_eq!(r.lost, 0);
    }
}

/// The combined scenario drives every repair path plus retries in one run.
#[test]
fn combined_exercises_all_paths() {
    let r = run_twice(Scenario::Combined, 42);
    assert!(r.promoted >= 1);
    assert!(r.reconstructed >= 1);
    assert!(r.retries > 0, "port flaps must force retries");
}

/// Self-healing closes the loop on its own: the lease detector confirms
/// the crash, the orchestrator repairs in throttled batches (no manual
/// `recover()` anywhere), degraded reads bridge the window byte-identically,
/// and nothing protected is lost.
#[test]
fn auto_heal_closes_the_loop_without_manual_recovery() {
    for seed in [11, 42, 2024] {
        let r = run_twice(Scenario::CrashAutoHeal, seed);
        assert!(r.confirmations >= 1, "seed {seed}: crash never confirmed");
        assert!(
            r.auto_recoveries >= 2,
            "seed {seed}: repair was not throttled across batches"
        );
        assert_eq!(r.lost, 0, "seed {seed}: protected data must self-heal");
        assert!(r.promoted >= 1 && r.reconstructed >= 1, "seed {seed}");
        assert!(
            r.degraded_served >= 2,
            "seed {seed}: reads in the repair window must be served degraded"
        );
    }
}

/// Port flaps shorter than the lease are absorbed: suspicion, then a
/// clearing beat — never a confirmation, never a recovery.
#[test]
fn flaps_do_not_trigger_spurious_recovery() {
    for seed in [7, 42, 555] {
        let r = run_twice(Scenario::FlapNoHeal, seed);
        assert!(r.suspicions >= 2, "seed {seed}: flaps must raise suspicion");
        assert_eq!(r.confirmations, 0, "seed {seed}: flap confirmed as crash");
        assert_eq!(r.auto_recoveries, 0, "seed {seed}: spurious recovery ran");
        assert_eq!(r.lost, 0, "seed {seed}");
        assert!(
            r.degraded_served >= 2,
            "seed {seed}: flapped reads must route around the down port"
        );
    }
}

/// Fault plans themselves replay: same seed and config produce the same
/// schedule, different seeds produce a different one.
#[test]
fn fault_plan_generation_replays() {
    let cfg = PlanConfig::default();
    let a = FaultPlan::generate(9, &cfg);
    let b = FaultPlan::generate(9, &cfg);
    assert_eq!(
        a.iter().collect::<Vec<_>>(),
        b.iter().collect::<Vec<_>>()
    );
    let c = FaultPlan::generate(10, &cfg);
    assert_ne!(
        a.iter().collect::<Vec<_>>(),
        c.iter().collect::<Vec<_>>()
    );
}

/// Different seeds explore different schedules — the harness is not
/// accidentally ignoring its seed.
#[test]
fn seeds_vary_the_trace() {
    let digests: Vec<u64> = (0..4)
        .map(|s| run_scenario(Scenario::Combined, s).digest)
        .collect();
    let mut unique = digests.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), digests.len(), "digest collision across seeds");
}
