// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property test for the lease failure detector (`lmp-core::health`).
//!
//! Over randomized port-flap schedules — generated as seeded
//! [`FaultPlan`]s, so every failing case replays from its seed — the
//! detector must never confirm a node Down while any probe of that node
//! succeeded inside the lease window. The property is checked two ways:
//! directly against the detector's probe-evidence log, and through the
//! harness's `lease-confirmation-audit` invariant checker. Each run is
//! also executed twice to pin the determinism contract.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile};
use lmp_harness::prelude::*;
use lmp_sim::prelude::*;
use proptest::prelude::*;

const SERVERS: u32 = 4;
const HORIZON: SimDuration = SimDuration::from_micros(30);

/// Drive a detector over a seeded flap schedule; sweeps run at the
/// configured probe cadence and faults apply before any sweep sharing
/// their instant (matching the chaos harness's fault-first tie-break).
fn run_detector(
    seed: u64,
    flaps: u32,
    width_ns: u64,
) -> (Vec<HealthEvent>, Vec<ProbeOutcome>, u64, u64) {
    let cfg = PlanConfig {
        servers: SERVERS,
        horizon: HORIZON,
        crashes: 0,
        restarts: false,
        link_spikes: 0,
        port_flaps: flaps,
        flap_width: SimDuration::from_nanos(width_ns),
        ..PlanConfig::default()
    };
    let plan = FaultPlan::generate(seed, &cfg);
    let faults: Vec<PlannedFault> = plan.iter().collect();
    let mut fabric = Fabric::new(LinkProfile::link1(), SERVERS);
    let hc = HealthConfig::default_chaos();
    let interval = hc.probe_interval;
    let mut det = FailureDetector::new(hc, SERVERS, SimTime::ZERO);
    let mut events = Vec::new();
    let mut fi = 0;
    let end = SimTime::ZERO + HORIZON;
    let mut t = SimTime::ZERO + interval;
    while t <= end {
        while fi < faults.len() && faults[fi].at <= t {
            match faults[fi].fault {
                Fault::PortDown(n) => fabric.set_port_down(n, true),
                Fault::PortUp(n) => fabric.set_port_down(n, false),
                other => panic!("flap-only plan produced {other:?}"),
            }
            fi += 1;
        }
        events.extend(det.probe_tick(&mut fabric, t));
        t += interval;
    }
    let log = det.probe_log().to_vec();
    (
        events,
        log,
        det.confirmation_count(),
        det.suspicion_count(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// No confirmation may stand over a successful probe inside the lease
    /// window, for any flap count and width — including widths past the
    /// lease, where confirmations are legitimate and the property still
    /// binds their timing.
    #[test]
    fn no_confirmation_while_a_lease_beat_succeeded(
        seed in any::<u64>(),
        flaps in 0u32..6,
        width_ns in 100u64..6_000,
    ) {
        let hc = HealthConfig::default_chaos();
        let lease = hc.lease;
        let (events, log, confirmations, _) = run_detector(seed, flaps, width_ns);
        // Direct form: scan the evidence log around every confirmation.
        for ev in &events {
            let HealthEvent::ConfirmedDown { node, at, .. } = ev else { continue };
            for p in &log {
                let live = p.node == *node
                    && p.ok
                    && p.at <= *at
                    && at.duration_since(p.at) < lease;
                prop_assert!(
                    !live,
                    "{node} confirmed at {at} over a live beat at {} (seed {seed})",
                    p.at
                );
            }
        }
        // Checker form: the shipped invariant must agree.
        let audit = check_lease_confirmations(&log, &events, lease);
        prop_assert!(audit.passed, "{audit}");
        // A single flap with at least one probe interval of slack under
        // the lease can never confirm. (Multiple flaps may chain into a
        // longer effective outage, so the bound only binds one flap.)
        if flaps == 1 && width_ns + hc.probe_interval.as_nanos() <= lease.as_nanos() {
            prop_assert_eq!(confirmations, 0, "sub-lease flap confirmed (seed {})", seed);
        }
    }

    /// Same seed ⇒ identical events, identical evidence log.
    #[test]
    fn detector_runs_replay_from_their_seed(
        seed in any::<u64>(),
        flaps in 0u32..6,
        width_ns in 100u64..6_000,
    ) {
        let a = run_detector(seed, flaps, width_ns);
        let b = run_detector(seed, flaps, width_ns);
        prop_assert_eq!(a.0, b.0, "health events diverged");
        prop_assert_eq!(a.1, b.1, "probe logs diverged");
        prop_assert_eq!((a.2, a.3), (b.2, b.3));
    }
}
