// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-core — Logical Memory Pools
//!
//! The paper's contribution: a rack-wide memory pool **carved out of the
//! local DRAM of every server** instead of a separate memory box.
//!
//! * [`pool::LogicalPool`] — allocation, placement, and timed access over a
//!   global logical address space; local resolution runs at DRAM speed.
//! * [`addr`] / [`translate`] — `(segment, offset)` logical addresses and
//!   the two-level translation scheme (coarse replicated map → server,
//!   fine local map → frame) with per-server translation caches.
//! * [`batch`] — scatter-gather batches: one translation per distinct
//!   segment, per-holder coalescing, and pipelined fabric streams.
//! * [`migrate`] — pointer-safe buffer migration via epoch-bumped
//!   translations.
//! * [`balance`] — the locality-balancing daemon driven by access-bit
//!   telemetry.
//! * [`sizing`] — the periodic global optimizer for private/shared splits.
//! * [`observe`] — pool instruments, access spans, and the rack-level
//!   telemetry roll-up.
//! * [`controller`] — the telemetry-driven adaptive sizing loop
//!   (observe → decide → act).
//! * [`failure`] — crash masking by mirroring or XOR erasure coding, and
//!   memory exceptions for unprotected segments.
//! * [`placement`] — the failure-domain hierarchy (datacenter → rack →
//!   host) and the placement policy that keeps protection groups spread
//!   across domains.
//! * [`health`] — lease/heartbeat failure detection (Healthy → Suspected
//!   → Down) and epoch-versioned cluster membership.
//! * [`heal`] — the recovery orchestrator: throttled, epoch-tagged
//!   automatic repair driven by detector confirmations.
//! * [`hedge`] — tail-latency QoS: reads predicted past a live-telemetry
//!   deadline race a duplicate through the protection twin.
//!
//! ```
//! use lmp_core::prelude::*;
//! use lmp_fabric::{Fabric, LinkProfile, MemOp, NodeId};
//! use lmp_sim::prelude::*;
//!
//! // 4 servers, 24 GiB each, fully poolable (the paper's §4.1 Logical setup).
//! let mut pool = LogicalPool::new(PoolConfig::paper_logical());
//! let mut fabric = Fabric::new(LinkProfile::link1(), 4);
//!
//! // Allocate an 8 GiB buffer near server 0 and stream it.
//! let seg = pool.alloc(8 * GIB, Placement::LocalFirst(NodeId(0))).unwrap();
//! let access = pool
//!     .access(&mut fabric, SimTime::ZERO, NodeId(0),
//!             LogicalAddr::new(seg, 0), 64 * MIB, MemOp::Read)
//!     .unwrap();
//! assert_eq!(access.remote_bytes, 0, "locally resolved");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod balance;
pub mod batch;
pub mod controller;
pub mod failure;
pub mod heal;
pub mod health;
pub mod hedge;
pub mod migrate;
pub mod observe;
pub mod placement;
pub mod pool;
pub mod runtime;
pub mod share;
pub mod sizing;
pub mod translate;

/// Commonly used items.
pub mod prelude {
    pub use crate::addr::{frame_chunks, LogicalAddr, SegmentId};
    pub use crate::balance::{BalanceRound, BalancerConfig, LocalityBalancer, MigrationPlan};
    pub use crate::batch::{schedule_holder_completions, BatchOp, BatchResult};
    pub use crate::failure::{
        DegradedRead, DegradedSource, GroupId, ProtectionManager, RecoveryReport,
        WriteAmplification,
    };
    pub use crate::heal::{RecoveryOrchestrator, RejoinOutcome, TaggedRecovery};
    pub use crate::health::{
        FailureDetector, HealthConfig, HealthEvent, Membership, NodeHealth, ProbeOutcome,
    };
    pub use crate::controller::{ControllerConfig, SizingController, TickReport};
    pub use crate::hedge::{hedged_read, HedgeConfig, HedgeOutcome, HedgeWinner};
    pub use crate::migrate::{migrate_segment, MigrationReport};
    pub use crate::observe::{rack_snapshot, PoolTelemetry};
    pub use crate::placement::{DomainLevel, DomainMap, PlacementDecision, PlacementPolicy};
    pub use crate::pool::{LogicalPool, Placement, PoolAccess, PoolConfig, PoolError};
    pub use crate::runtime::{
        RackRuntime, RuntimeConfig, RuntimeError, ServerRuntime, VirtAddr,
    };
    pub use crate::share::{ShareError, SharingRegistry};
    pub use crate::sizing::{
        apply as apply_sizing, apply_best_effort, solve as solve_sizing, AppDemand, SizingPlan,
    };
    pub use crate::translate::{GlobalMap, LocalMap, SegmentLoc, TranslationCache};
    pub use lmp_qos::{TenantId, TenantRate};
}

pub use prelude::*;
