//! The telemetry-driven adaptive sizing controller.
//!
//! Closes the observe → decide → act loop the paper sketches in §5: "a
//! global optimization problem that is solved periodically". On each
//! sim-time tick the controller
//!
//! 1. **observes** — reads a rack [`TelemetrySnapshot`] (link pressure,
//!    local-access ratio) and re-derives [`AppDemand`]s from the hotness
//!    maps: an accessor's working set is the frames it touched, its
//!    priority its decayed access count;
//! 2. **decides** — re-runs the greedy sizing solver over live capacities
//!    with those demands;
//! 3. **acts** — applies budget deltas best-effort and lets the locality
//!    balancer execute a throttled batch of migrations toward the plan.
//!
//! When the fabric is already saturated (`link_pressure_ceiling`), the
//! migration batch is skipped for the tick — balancing traffic must not
//! worsen the congestion it is trying to relieve.

use crate::balance::{BalancerConfig, LocalityBalancer};
use crate::pool::LogicalPool;
use crate::sizing::{apply_best_effort, solve, AppDemand};
use lmp_fabric::{Fabric, NodeId};
use lmp_mem::FRAME_BYTES;
use lmp_sim::prelude::*;
use lmp_telemetry::TelemetrySnapshot;

/// Controller tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Minimum sim-time between acting ticks.
    pub tick: SimDuration,
    /// Ignore accessors with fewer decayed accesses than this (noise floor).
    pub min_observed_accesses: u64,
    /// Migration throttle per tick.
    pub max_migrations_per_tick: usize,
    /// Skip the migration batch when any link's utilization exceeds this.
    pub link_pressure_ceiling: f64,
    /// Frames every server keeps private regardless of the plan.
    pub private_floor_frames: u64,
    /// Demand inflation over the observed working set (room to grow).
    pub demand_headroom: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            tick: SimDuration::from_micros(5),
            min_observed_accesses: 8,
            max_migrations_per_tick: 4,
            link_pressure_ceiling: 0.9,
            private_floor_frames: 0,
            demand_headroom: 1.25,
        }
    }
}

/// What one tick did.
#[derive(Debug, Clone, Default)]
pub struct TickReport {
    /// False when the tick interval had not yet elapsed (nothing done).
    pub acted: bool,
    /// Accessors whose observed load produced a demand.
    pub demands: usize,
    /// Servers whose shared budget was resized.
    pub resized: usize,
    /// Migrations executed this tick.
    pub migrations: usize,
    /// True when link pressure vetoed the migration batch.
    pub skipped_link_pressure: bool,
    /// Rack local-access ratio read from the snapshot (1.0 when idle).
    pub local_ratio: f64,
}

/// Periodic controller: telemetry in, sizing plan + throttled migrations
/// out.
#[derive(Debug)]
pub struct SizingController {
    config: ControllerConfig,
    balancer: LocalityBalancer,
    ticks: u64,
    last_tick: Option<SimTime>,
}

impl SizingController {
    /// A controller with the given tuning.
    pub fn new(config: ControllerConfig) -> Self {
        let balancer = LocalityBalancer::new(BalancerConfig {
            max_migrations_per_round: config.max_migrations_per_tick,
            ..BalancerConfig::default()
        });
        SizingController {
            config,
            balancer,
            ticks: 0,
            last_tick: None,
        }
    }

    /// Re-derive application demands from observed hotness: each accessor's
    /// working set is the set of frames it touched anywhere in the rack,
    /// its priority the (capped) decayed access count — so the solver
    /// favours the accessors that are actually hitting the pool hardest.
    pub fn derive_demands(&self, pool: &LogicalPool) -> Vec<AppDemand> {
        let mut demands = Vec::new();
        for acc in 0..pool.servers() {
            let mut frames = 0u64;
            let mut accesses = 0u64;
            for s in 0..pool.servers() {
                let node = pool.node(NodeId(s));
                if node.is_failed() {
                    continue;
                }
                let (f, a) = node.hotness().accessor_load(acc);
                frames += f;
                accesses += a;
            }
            if accesses < self.config.min_observed_accesses || frames == 0 {
                continue;
            }
            let want = ((frames as f64) * self.config.demand_headroom).ceil() as u64;
            demands.push(AppDemand {
                server: NodeId(acc),
                bytes: want.max(1) * FRAME_BYTES,
                priority: accesses.min(u32::MAX as u64) as u32,
            });
        }
        demands
    }

    /// One control tick at `now`, fed the latest rack snapshot. Returns
    /// immediately (acted = false) while the tick interval has not elapsed.
    pub fn tick(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        snapshot: &TelemetrySnapshot,
    ) -> TickReport {
        let local = snapshot.counter("pool.accesses.local", &[]);
        let remote = snapshot.counter("pool.accesses.remote", &[]);
        let local_ratio = if local + remote == 0 {
            1.0
        } else {
            local as f64 / (local + remote) as f64
        };
        let mut report = TickReport {
            local_ratio,
            ..TickReport::default()
        };
        if let Some(last) = self.last_tick {
            if now.duration_since(last) < self.config.tick {
                return report;
            }
        }
        self.last_tick = Some(now);
        self.ticks += 1;
        report.acted = true;

        // Decide: re-solve sizing over live capacities and observed demand.
        let demands = self.derive_demands(pool);
        report.demands = demands.len();
        if !demands.is_empty() {
            let servers = pool.servers() as usize;
            let mut capacity = Vec::with_capacity(servers);
            let mut floor = Vec::with_capacity(servers);
            for s in 0..pool.servers() {
                let node = pool.node(NodeId(s));
                let total = if node.is_failed() { 0 } else { node.split().total() };
                capacity.push(total);
                floor.push(self.config.private_floor_frames.min(total));
            }
            let plan = solve(&capacity, &floor, &demands);
            report.resized = apply_best_effort(pool, &plan);
        }

        // Act: throttled migrations — unless the fabric is already hot.
        let pressure = snapshot
            .gauge_max("fabric.link.utilization")
            .unwrap_or(0.0);
        if pressure > self.config.link_pressure_ceiling {
            report.skipped_link_pressure = true;
            // Still advance hotness epochs so stale heat decays.
            for s in 0..pool.servers() {
                let node = pool.node_mut(NodeId(s));
                if !node.is_failed() {
                    node.hotness_mut().tick_epoch();
                }
            }
        } else {
            let round = self.balancer.run_round(pool, fabric, now);
            report.migrations = round.executed.len();
        }
        report
    }

    /// Acting ticks so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total migrations the controller's balancer has executed.
    pub fn migration_count(&self) -> u64 {
        self.balancer.migration_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LogicalAddr;
    use crate::observe::rack_snapshot;
    use crate::pool::{Placement, PoolConfig};
    use lmp_fabric::{LinkProfile, MemOp};
    use lmp_mem::DramProfile;

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 3,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 8 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        let mut pool = LogicalPool::new(cfg);
        pool.attach_telemetry();
        (pool, Fabric::new(LinkProfile::link1(), 3))
    }

    #[test]
    fn derives_demands_from_observed_hotness() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(2 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        for _ in 0..20 {
            p.access(
                &mut f,
                SimTime::ZERO,
                NodeId(1),
                LogicalAddr::new(seg, 0),
                64,
                MemOp::Read,
            )
            .unwrap();
        }
        let ctl = SizingController::new(ControllerConfig::default());
        let demands = ctl.derive_demands(&p);
        assert_eq!(demands.len(), 1, "only accessor 1 is above the floor");
        assert_eq!(demands[0].server, NodeId(1));
        assert!(demands[0].bytes >= FRAME_BYTES);
        assert_eq!(demands[0].priority, 20);
    }

    #[test]
    fn tick_migrates_hot_remote_segment_home() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        for _ in 0..50 {
            p.access(
                &mut f,
                SimTime::ZERO,
                NodeId(2),
                LogicalAddr::new(seg, 0),
                64,
                MemOp::Read,
            )
            .unwrap();
        }
        let mut ctl = SizingController::new(ControllerConfig::default());
        let snap = rack_snapshot(&mut p, &mut f, SimTime::ZERO);
        let report = ctl.tick(&mut p, &mut f, SimTime::ZERO, &snap);
        assert!(report.acted);
        assert_eq!(report.migrations, 1);
        assert_eq!(p.holder_of(seg), Some(NodeId(2)));
        assert!(report.local_ratio < 0.5);
    }

    #[test]
    fn tick_interval_is_respected() {
        let (mut p, mut f) = setup();
        let mut ctl = SizingController::new(ControllerConfig::default());
        let snap = TelemetrySnapshot::new();
        assert!(ctl.tick(&mut p, &mut f, SimTime::ZERO, &snap).acted);
        assert!(
            !ctl
                .tick(&mut p, &mut f, SimTime::from_nanos(10), &snap)
                .acted,
            "second tick inside the interval must be a no-op"
        );
        let later = SimTime::ZERO + SimDuration::from_micros(5);
        assert!(ctl.tick(&mut p, &mut f, later, &snap).acted);
        assert_eq!(ctl.ticks(), 2);
    }

    #[test]
    fn link_pressure_vetoes_migrations() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        for _ in 0..50 {
            p.access(
                &mut f,
                SimTime::ZERO,
                NodeId(2),
                LogicalAddr::new(seg, 0),
                64,
                MemOp::Read,
            )
            .unwrap();
        }
        let mut snap = TelemetrySnapshot::new();
        {
            let mut reg = lmp_telemetry::MetricRegistry::new();
            reg.set_gauge_value(
                "fabric.link.utilization",
                &[("node", "0"), ("dir", "up")],
                0.99,
            );
            snap.merge(&reg.snapshot());
        }
        let mut ctl = SizingController::new(ControllerConfig::default());
        let report = ctl.tick(&mut p, &mut f, SimTime::ZERO, &snap);
        assert!(report.acted);
        assert!(report.skipped_link_pressure);
        assert_eq!(report.migrations, 0);
        assert_eq!(p.holder_of(seg), Some(NodeId(0)), "segment stays put");
    }
}
