//! Two-level address translation (§5 "Address translation").
//!
//! The paper rejects a single global directory ("all servers need access to
//! the directory when translating addresses, and this would incur slow
//! remote accesses") in favour of two steps:
//!
//! 1. **Coarse map, globally replicated**: segment → server. Small (one
//!    entry per buffer), changes only on migration, so every server keeps a
//!    copy plus a per-core translation cache.
//! 2. **Fine map, local to the holder**: (segment, frame index) → frame.
//!    Only consulted on the server that owns the memory, where it is a
//!    local lookup.
//!
//! Migration bumps the segment's **epoch**; stale cached translations are
//! detected at the target server (its fine map no longer has the segment)
//! and re-resolved — this is what makes migration pointer-safe.

use crate::addr::SegmentId;
use lmp_fabric::NodeId;
use lmp_mem::FrameId;
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Where a segment currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentLoc {
    /// Holding server.
    pub server: NodeId,
    /// Bumped on every migration; stale translations carry an old epoch.
    pub epoch: u64,
}

/// The coarse, globally replicated map: segment → server.
#[derive(Debug, Default)]
pub struct GlobalMap {
    entries: BTreeMap<SegmentId, SegmentLoc>,
    lookups: Counter,
}

impl GlobalMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current location of a segment.
    pub fn lookup(&mut self, seg: SegmentId) -> Option<SegmentLoc> {
        self.lookups.inc();
        self.entries.get(&seg).copied()
    }

    /// Peek without counting (for assertions/telemetry).
    pub fn peek(&self, seg: SegmentId) -> Option<SegmentLoc> {
        self.entries.get(&seg).copied()
    }

    /// Install a new segment at `server`.
    pub fn insert(&mut self, seg: SegmentId, server: NodeId) {
        self.entries.insert(seg, SegmentLoc { server, epoch: 0 });
    }

    /// Move a segment to `server`, bumping its epoch. Returns the new
    /// location.
    ///
    /// # Panics
    /// Panics on unknown segments — migration of nothing is a bug.
    pub fn relocate(&mut self, seg: SegmentId, server: NodeId) -> SegmentLoc {
        let e = self
            .entries
            .get_mut(&seg)
            // lmp-lint: allow(no-panic) — relocate targets a segment the
            // migration engine just selected from this map; absence means the
            // map was corrupted mid-migration.
            .unwrap_or_else(|| panic!("relocate of unknown {seg}"));
        e.server = server;
        e.epoch += 1;
        *e
    }

    /// Remove a segment (freed or lost).
    pub fn remove(&mut self, seg: SegmentId) -> Option<SegmentLoc> {
        self.entries.remove(&seg)
    }

    /// Number of live segments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Segments currently mapped to `server` (for crash handling).
    pub fn segments_on(&self, server: NodeId) -> Vec<SegmentId> {
        let mut v: Vec<SegmentId> = self
            .entries
            .iter()
            .filter(|(_, loc)| loc.server == server)
            .map(|(s, _)| *s)
            .collect();
        v.sort_unstable();
        v
    }

    /// Total lookups served (each one is a shared-structure access the
    /// translation cache exists to avoid).
    pub fn lookup_count(&self) -> u64 {
        self.lookups.get()
    }
}

/// The fine, per-server map: segment → its frames on this server.
#[derive(Debug, Default)]
pub struct LocalMap {
    frames: BTreeMap<SegmentId, Vec<FrameId>>,
}

impl LocalMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a segment's frames.
    pub fn insert(&mut self, seg: SegmentId, frames: Vec<FrameId>) {
        self.frames.insert(seg, frames);
    }

    /// The frame backing `frame_index` of `seg`, if this server holds it.
    pub fn resolve(&self, seg: SegmentId, frame_index: u64) -> Option<FrameId> {
        self.frames
            .get(&seg)
            .and_then(|f| f.get(frame_index as usize))
            .copied()
    }

    /// Whether this server holds `seg`.
    pub fn holds(&self, seg: SegmentId) -> bool {
        self.frames.contains_key(&seg)
    }

    /// All frames of `seg` (empty if absent).
    pub fn frames_of(&self, seg: SegmentId) -> &[FrameId] {
        self.frames.get(&seg).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Remove a segment, returning its frames for freeing.
    pub fn remove(&mut self, seg: SegmentId) -> Option<Vec<FrameId>> {
        self.frames.remove(&seg)
    }

    /// Number of segments held.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// A per-server translation cache (TLB analogue) over the coarse map.
///
/// Entries may go stale after migration; consumers detect staleness when
/// the target server's fine map misses, then call
/// [`TranslationCache::refill`]. LRU eviction, deterministic tie-break.
#[derive(Debug)]
pub struct TranslationCache {
    capacity: usize,
    entries: BTreeMap<SegmentId, (SegmentLoc, u64)>,
    clock: u64,
    hits: Counter,
    misses: Counter,
    stale: Counter,
}

impl TranslationCache {
    /// A cache holding up to `capacity` segment translations.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // zero capacity is a configuration bug.
        assert!(capacity > 0, "translation cache needs capacity");
        TranslationCache {
            capacity,
            entries: BTreeMap::new(),
            clock: 0,
            hits: Counter::new(),
            misses: Counter::new(),
            stale: Counter::new(),
        }
    }

    /// Cached location of `seg`, if present (possibly stale).
    pub fn lookup(&mut self, seg: SegmentId) -> Option<SegmentLoc> {
        self.clock += 1;
        match self.entries.get_mut(&seg) {
            Some((loc, stamp)) => {
                *stamp = self.clock;
                self.hits.inc();
                Some(*loc)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Install/update a translation (after a global-map lookup).
    // Eviction only runs when the cache is at capacity (>= 1 entry), so a
    // victim always exists.
    #[allow(clippy::expect_used)]
    pub fn refill(&mut self, seg: SegmentId, loc: SegmentLoc) {
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&seg) {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(s, (_, stamp))| (*stamp, s.0))
                .map(|(s, _)| s)
                // lmp-lint: allow(no-panic) — the eviction branch only runs at
                // capacity, so the entry map is structurally non-empty.
                .expect("cache at capacity is non-empty");
            self.entries.remove(&victim);
        }
        self.entries.insert(seg, (loc, self.clock));
    }

    /// Record that a cached translation turned out stale (migration raced).
    pub fn note_stale(&mut self, seg: SegmentId) {
        self.stale.inc();
        self.entries.remove(&seg);
    }

    /// Drop a translation (segment freed).
    pub fn invalidate(&mut self, seg: SegmentId) {
        self.entries.remove(&seg);
    }

    /// Cache hits.
    pub fn hit_count(&self) -> u64 {
        self.hits.get()
    }
    /// Cache misses.
    pub fn miss_count(&self) -> u64 {
        self.misses.get()
    }
    /// Stale-entry faults.
    pub fn stale_count(&self) -> u64 {
        self.stale.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_map_lifecycle() {
        let mut g = GlobalMap::new();
        g.insert(SegmentId(1), NodeId(0));
        assert_eq!(
            g.lookup(SegmentId(1)),
            Some(SegmentLoc {
                server: NodeId(0),
                epoch: 0
            })
        );
        let loc = g.relocate(SegmentId(1), NodeId(2));
        assert_eq!(loc.server, NodeId(2));
        assert_eq!(loc.epoch, 1);
        g.remove(SegmentId(1));
        assert_eq!(g.lookup(SegmentId(1)), None);
        assert_eq!(g.lookup_count(), 2);
    }

    #[test]
    fn segments_on_filters_by_server() {
        let mut g = GlobalMap::new();
        g.insert(SegmentId(1), NodeId(0));
        g.insert(SegmentId(2), NodeId(1));
        g.insert(SegmentId(3), NodeId(0));
        assert_eq!(g.segments_on(NodeId(0)), vec![SegmentId(1), SegmentId(3)]);
    }

    #[test]
    fn local_map_resolution() {
        let mut l = LocalMap::new();
        l.insert(SegmentId(5), vec![FrameId(10), FrameId(11)]);
        assert_eq!(l.resolve(SegmentId(5), 0), Some(FrameId(10)));
        assert_eq!(l.resolve(SegmentId(5), 1), Some(FrameId(11)));
        assert_eq!(l.resolve(SegmentId(5), 2), None);
        assert_eq!(l.resolve(SegmentId(6), 0), None);
        assert!(l.holds(SegmentId(5)));
        assert_eq!(l.remove(SegmentId(5)), Some(vec![FrameId(10), FrameId(11)]));
        assert!(!l.holds(SegmentId(5)));
    }

    #[test]
    fn tlb_hit_miss_accounting() {
        let mut t = TranslationCache::new(2);
        assert_eq!(t.lookup(SegmentId(1)), None);
        t.refill(
            SegmentId(1),
            SegmentLoc {
                server: NodeId(3),
                epoch: 0,
            },
        );
        assert!(t.lookup(SegmentId(1)).is_some());
        assert_eq!(t.hit_count(), 1);
        assert_eq!(t.miss_count(), 1);
    }

    #[test]
    fn tlb_evicts_lru() {
        let mut t = TranslationCache::new(2);
        let loc = |n| SegmentLoc {
            server: NodeId(n),
            epoch: 0,
        };
        t.refill(SegmentId(1), loc(1));
        t.refill(SegmentId(2), loc(2));
        t.lookup(SegmentId(1)); // refresh 1; 2 becomes LRU
        t.refill(SegmentId(3), loc(3));
        assert!(t.lookup(SegmentId(2)).is_none());
        assert!(t.lookup(SegmentId(1)).is_some());
        assert!(t.lookup(SegmentId(3)).is_some());
    }

    #[test]
    fn stale_entries_are_dropped() {
        let mut t = TranslationCache::new(4);
        t.refill(
            SegmentId(1),
            SegmentLoc {
                server: NodeId(0),
                epoch: 0,
            },
        );
        t.note_stale(SegmentId(1));
        assert_eq!(t.stale_count(), 1);
        assert!(t.lookup(SegmentId(1)).is_none());
    }
}
