//! The locality balancer (§5 "Locality balancing" policy).
//!
//! Periodically inspects access-bit telemetry and migrates segments toward
//! their dominant accessor — the LMP analogue of NUMA balancing, but driven
//! by performance counters rather than page faults (which the paper deems
//! too slow). Hysteresis prevents ping-ponging; a per-round migration cap
//! bounds the bandwidth spent on balancing.

use crate::addr::SegmentId;
use crate::migrate::{migrate_segment, MigrationReport};
use crate::pool::LogicalPool;
use lmp_fabric::{Fabric, NodeId};
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Balancer tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct BalancerConfig {
    /// Ignore segments with fewer remote accesses than this in the last
    /// epoch window.
    pub min_remote_accesses: u64,
    /// The dominant remote accessor must out-access the current holder by
    /// this factor before a migration is planned.
    pub hysteresis: f64,
    /// Maximum migrations executed per round.
    pub max_migrations_per_round: usize,
}

impl Default for BalancerConfig {
    fn default() -> Self {
        BalancerConfig {
            min_remote_accesses: 16,
            hysteresis: 2.0,
            max_migrations_per_round: 4,
        }
    }
}

/// One planned migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Segment to move.
    pub segment: SegmentId,
    /// Target server (the dominant accessor).
    pub to: NodeId,
    /// Remote-access count motivating the move.
    pub score: u64,
}

/// Summary of one balancer round.
#[derive(Debug, Clone, Default)]
pub struct BalanceRound {
    /// Plans considered (after filtering), best first.
    pub planned: Vec<MigrationPlan>,
    /// Migrations actually executed.
    pub executed: Vec<MigrationReport>,
    /// Plans skipped (usually destination capacity).
    pub skipped: usize,
}

/// The balancing daemon. Owns only policy state; the pool is passed in.
#[derive(Debug)]
pub struct LocalityBalancer {
    config: BalancerConfig,
    rounds: u64,
    total_migrations: Counter,
    total_bytes: Counter,
}

impl LocalityBalancer {
    /// A balancer with the given tuning.
    pub fn new(config: BalancerConfig) -> Self {
        LocalityBalancer {
            config,
            rounds: 0,
            total_migrations: Counter::new(),
            total_bytes: Counter::new(),
        }
    }

    /// Inspect hotness counters and produce a migration plan (no side
    /// effects on the pool other than reading telemetry).
    pub fn plan(&self, pool: &LogicalPool) -> Vec<MigrationPlan> {
        let mut plans = Vec::new();
        for s in 0..pool.servers() {
            let holder = NodeId(s);
            let node = pool.node(holder);
            if node.is_failed() {
                continue;
            }
            // Aggregate per-segment, per-accessor counts over the segment's
            // frames.
            let local = pool.local_map(holder);
            let mut segs: Vec<SegmentId> = Vec::new();
            for seg in pool.global_map().segments_on(holder) {
                if local.holds(seg) {
                    segs.push(seg);
                }
            }
            for seg in segs {
                let mut per_accessor: BTreeMap<u32, u64> = BTreeMap::new();
                for f in local.frames_of(seg) {
                    // Sum decayed counts per accessor for this frame.
                    for acc in 0..pool.servers() {
                        let c = node.hotness().count(*f, acc);
                        if c > 0 {
                            *per_accessor.entry(acc).or_insert(0) += c;
                        }
                    }
                }
                let holder_count = per_accessor.get(&holder.0).copied().unwrap_or(0);
                let best_remote = per_accessor
                    .iter()
                    .filter(|(a, _)| **a != holder.0)
                    .max_by_key(|(a, c)| (**c, std::cmp::Reverse(**a)));
                if let Some((&acc, &count)) = best_remote {
                    if count >= self.config.min_remote_accesses
                        && count as f64 >= holder_count as f64 * self.config.hysteresis
                    {
                        plans.push(MigrationPlan {
                            segment: seg,
                            to: NodeId(acc),
                            score: count,
                        });
                    }
                }
            }
        }
        plans.sort_by(|a, b| b.score.cmp(&a.score).then(a.segment.cmp(&b.segment)));
        plans.truncate(self.config.max_migrations_per_round);
        plans
    }

    /// Run one balancing round: plan, execute, and advance the hotness
    /// epoch on every server.
    pub fn run_round(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
    ) -> BalanceRound {
        let planned = self.plan(pool);
        let mut round = BalanceRound {
            planned: planned.clone(),
            ..Default::default()
        };
        for p in planned {
            match migrate_segment(pool, fabric, now, p.segment, p.to) {
                Ok(report) => {
                    self.total_migrations.inc();
                    self.total_bytes.add(report.bytes);
                    round.executed.push(report);
                }
                Err(_) => round.skipped += 1,
            }
        }
        for s in 0..pool.servers() {
            pool.node_mut(NodeId(s)).hotness_mut().tick_epoch();
        }
        self.rounds += 1;
        round
    }

    /// Rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
    /// Total migrations executed.
    pub fn migration_count(&self) -> u64 {
        self.total_migrations.get()
    }
    /// Total bytes moved by balancing.
    pub fn bytes_moved(&self) -> u64 {
        self.total_bytes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LogicalAddr;
    use crate::pool::{Placement, PoolConfig};
    use lmp_fabric::{LinkProfile, MemOp};
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 3,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 3))
    }

    fn hammer(
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        who: NodeId,
        seg: SegmentId,
        times: usize,
    ) {
        for _ in 0..times {
            pool.access(
                fabric,
                SimTime::ZERO,
                who,
                LogicalAddr::new(seg, 0),
                64,
                MemOp::Read,
            )
            .unwrap();
        }
    }

    #[test]
    fn hot_remote_segment_migrates_to_its_user() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        hammer(&mut p, &mut f, NodeId(2), seg, 50);
        let mut bal = LocalityBalancer::new(BalancerConfig::default());
        let round = bal.run_round(&mut p, &mut f, SimTime::ZERO);
        assert_eq!(round.executed.len(), 1);
        assert_eq!(p.holder_of(seg), Some(NodeId(2)));
        assert_eq!(bal.migration_count(), 1);
    }

    #[test]
    fn cold_segments_stay_put() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        hammer(&mut p, &mut f, NodeId(2), seg, 5); // below min_remote_accesses
        let mut bal = LocalityBalancer::new(BalancerConfig::default());
        let round = bal.run_round(&mut p, &mut f, SimTime::ZERO);
        assert!(round.executed.is_empty());
        assert_eq!(p.holder_of(seg), Some(NodeId(0)));
    }

    #[test]
    fn hysteresis_protects_local_users() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        // Holder uses it heavily; a remote server uses it a bit more, but
        // not 2x more.
        hammer(&mut p, &mut f, NodeId(0), seg, 40);
        hammer(&mut p, &mut f, NodeId(1), seg, 60);
        let bal = LocalityBalancer::new(BalancerConfig::default());
        assert!(bal.plan(&p).is_empty(), "hysteresis should block this");
        // But a 2x-dominant remote user wins.
        hammer(&mut p, &mut f, NodeId(1), seg, 30);
        assert_eq!(bal.plan(&p).len(), 1);
    }

    #[test]
    fn migration_cap_respected() {
        let (mut p, mut f) = setup();
        let mut segs = Vec::new();
        for _ in 0..6 {
            segs.push(p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap());
        }
        for &s in &segs {
            hammer(&mut p, &mut f, NodeId(1), s, 30);
        }
        let mut bal = LocalityBalancer::new(BalancerConfig {
            max_migrations_per_round: 2,
            ..Default::default()
        });
        let round = bal.run_round(&mut p, &mut f, SimTime::ZERO);
        assert_eq!(round.executed.len(), 2);
    }

    #[test]
    fn epoch_decay_forgets_old_phases() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        hammer(&mut p, &mut f, NodeId(2), seg, 50);
        let mut bal = LocalityBalancer::new(BalancerConfig {
            // Cap 0: plan but never execute, so hotness decays in place.
            max_migrations_per_round: 0,
            ..Default::default()
        });
        for _ in 0..4 {
            bal.run_round(&mut p, &mut f, SimTime::ZERO);
        }
        // 50 halved 4 times → 3 < min_remote_accesses.
        let bal2 = LocalityBalancer::new(BalancerConfig::default());
        assert!(bal2.plan(&p).is_empty(), "stale heat should have decayed");
    }

    #[test]
    fn balancer_converges_no_oscillation() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        hammer(&mut p, &mut f, NodeId(1), seg, 50);
        let mut bal = LocalityBalancer::new(BalancerConfig::default());
        bal.run_round(&mut p, &mut f, SimTime::ZERO);
        assert_eq!(p.holder_of(seg), Some(NodeId(1)));
        // Keep using it from its new home: no further migrations.
        for _ in 0..5 {
            hammer(&mut p, &mut f, NodeId(1), seg, 50);
            let round = bal.run_round(&mut p, &mut f, SimTime::ZERO);
            assert!(round.executed.is_empty(), "oscillation detected");
        }
        assert_eq!(bal.migration_count(), 1);
    }
}
