//! The recovery orchestrator: turns detector confirmations into
//! throttled, epoch-tagged repair work.
//!
//! When the [`crate::health::FailureDetector`] confirms a node Down, the
//! orchestrator snapshots every segment the pool still maps to that node
//! and repairs them through [`ProtectionManager::recover`] — but only
//! `recovery_batch` segments per [`RecoveryOrchestrator::step`], so
//! reconstruction traffic trickles onto the fabric instead of flooding it.
//! While a segment sits in the queue, applications are served by the
//! degraded-read path ([`ProtectionManager::read_degraded`]); the window
//! between confirmation and repair costs latency, never correctness.
//!
//! Every repair is tagged with the membership epoch its confirmation
//! created, and [`RecoveryOrchestrator::admit_rejoin`] enforces the
//! epoch rule on the way back in: a restarted server announcing a
//! pre-crash epoch cannot resurrect segments the pool already rebuilt.

use crate::addr::SegmentId;
use crate::failure::{ProtectionManager, RecoveryReport};
use crate::pool::LogicalPool;
use lmp_fabric::{Fabric, NodeId};
use lmp_sim::prelude::*;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One completed repair batch, tagged with the epoch it ran under.
#[derive(Debug, Clone)]
pub struct TaggedRecovery {
    /// The confirmed-failed node the batch repaired.
    pub node: NodeId,
    /// Membership epoch of the Down confirmation that queued this work.
    pub epoch: u64,
    /// The segments this batch attempted (in queue order).
    pub segments: Vec<SegmentId>,
    /// What [`ProtectionManager::recover`] did with them.
    pub report: RecoveryReport,
}

/// Outcome of a restarted server's rejoin request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejoinOutcome {
    /// Whether the node's claim to its pre-restart segments was honored.
    /// Only possible when membership never confirmed it Down (a suspicion
    /// that cleared, or an operator restart faster than the lease).
    pub resurrected: bool,
    /// Segments whose stale bookkeeping was dropped because the claim was
    /// refused (already rebuilt elsewhere or written off).
    pub dropped: Vec<SegmentId>,
}

#[derive(Debug)]
struct PendingNode {
    epoch: u64,
    queue: VecDeque<SegmentId>,
}

/// Drives automatic, throttled recovery. One instance per cluster.
#[derive(Debug, Default)]
pub struct RecoveryOrchestrator {
    /// Per-node repair queues, keyed by node id for deterministic order.
    pending: BTreeMap<u32, PendingNode>,
    recoveries: u64,
}

impl RecoveryOrchestrator {
    /// An idle orchestrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// React to a Down confirmation: snapshot every segment the pool still
    /// maps to `node` and queue it for repair under `epoch`. Returns the
    /// number of segments queued. A second confirmation for the same node
    /// (crash → rejoin → crash) replaces the stale queue.
    pub fn on_confirmed_down(&mut self, pool: &LogicalPool, node: NodeId, epoch: u64) -> usize {
        let affected = pool.global_map().segments_on(node);
        let queued = affected.len();
        self.pending.insert(
            node.0,
            PendingNode {
                epoch,
                queue: affected.into(),
            },
        );
        queued
    }

    /// Whether any repair work is queued.
    pub fn has_pending(&self) -> bool {
        self.pending.values().any(|p| !p.queue.is_empty())
    }

    /// Total segments still queued across all nodes.
    pub fn pending_segments(&self) -> usize {
        self.pending.values().map(|p| p.queue.len()).sum()
    }

    /// Whether `seg` is queued and not yet repaired.
    pub fn is_pending(&self, seg: SegmentId) -> bool {
        self.pending.values().any(|p| p.queue.contains(&seg))
    }

    /// Total repair batches executed.
    pub fn recovery_count(&self) -> u64 {
        self.recoveries
    }

    /// Run one throttled repair step at `now`: take up to `batch` segments
    /// (lowest node id first, queue order within a node) and repair them.
    /// Segments the pool no longer knows — freed, or dropped by a cold
    /// restart while queued — are skipped silently; their protection
    /// bookkeeping was already torn down with them.
    pub fn step(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        pm: &mut ProtectionManager,
        now: SimTime,
        batch: usize,
    ) -> Vec<TaggedRecovery> {
        if batch == 0 {
            // A zero batch makes no progress by definition.
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut budget = batch;
        let nodes: Vec<u32> = self.pending.keys().copied().collect();
        for n in nodes {
            if budget == 0 {
                break;
            }
            let Some(p) = self.pending.get_mut(&n) else {
                continue;
            };
            let mut chunk = Vec::new();
            while budget > 0 {
                let Some(seg) = p.queue.pop_front() else { break };
                if pool.segment_len(seg).is_none() {
                    continue;
                }
                chunk.push(seg);
                budget -= 1;
            }
            let epoch = p.epoch;
            if p.queue.is_empty() {
                self.pending.remove(&n);
            }
            if chunk.is_empty() {
                continue;
            }
            let report = pm.recover(pool, fabric, now, NodeId(n), &chunk);
            self.recoveries += 1;
            out.push(TaggedRecovery {
                node: NodeId(n),
                epoch,
                segments: chunk,
                report,
            });
        }
        out
    }

    /// A restarted `node` announces itself, claiming it last observed
    /// `claimed_epoch` and (when `warm`) that its memory survived intact.
    ///
    /// The epoch rule: the claim is honored only for a warm return whose
    /// epoch is not stale — no Down confirmation happened after it. In
    /// every other case the node re-enters empty: any segments the pool
    /// still maps to it are dropped (they were already rebuilt elsewhere
    /// or written off under a newer epoch), and any repair work still
    /// queued for it is cancelled.
    pub fn admit_rejoin(
        &mut self,
        pool: &mut LogicalPool,
        membership: &crate::health::Membership,
        node: NodeId,
        claimed_epoch: u64,
        warm: bool,
    ) -> RejoinOutcome {
        if warm && membership.may_resurrect(node, claimed_epoch) {
            // Honored claim: DRAM survived the outage (the crash model
            // retains contents), so clear the failed flag and every
            // segment still mapped to the node resolves again.
            pool.revive_server(node);
            return RejoinOutcome {
                resurrected: true,
                dropped: Vec::new(),
            };
        }
        let dropped = pool.global_map().segments_on(node);
        self.pending.remove(&node.0);
        pool.restart_server(node);
        RejoinOutcome {
            resurrected: false,
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LogicalAddr;
    use crate::health::{FailureDetector, HealthConfig, Membership, NodeHealth};
    use crate::pool::{Placement, PoolConfig};
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup(servers: u32) -> (LogicalPool, Fabric, ProtectionManager) {
        let cfg = PoolConfig {
            servers,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (
            LogicalPool::new(cfg),
            Fabric::new(LinkProfile::link1(), servers),
            ProtectionManager::new(),
        )
    }

    #[test]
    fn step_is_throttled_to_the_batch_size() {
        let (mut pool, mut fabric, mut pm) = setup(4);
        let t0 = SimTime::ZERO;
        let segs: Vec<_> = (0..3)
            .map(|_| pool.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap())
            .collect();
        for &s in &segs {
            pm.mirror(&mut pool, &mut fabric, t0, s).unwrap();
        }
        let affected = pool.crash_server(NodeId(0));
        fabric.set_port_down(NodeId(0), true);
        assert_eq!(affected.len(), 3);

        let mut orch = RecoveryOrchestrator::new();
        assert_eq!(orch.on_confirmed_down(&pool, NodeId(0), 1), 3);
        let mut repaired = 0;
        let mut ticks = 0;
        while orch.has_pending() {
            let done = orch.step(&mut pool, &mut fabric, &mut pm, t0, 1);
            let n: usize = done.iter().map(|d| d.segments.len()).sum();
            assert!(n <= 1, "batch bound violated: {n} in one step");
            repaired += n;
            ticks += 1;
            assert!(ticks <= 3, "more ticks than segments");
        }
        assert_eq!(repaired, 3);
        assert_eq!(orch.recovery_count(), 3);
        for &s in &segs {
            assert!(pool.read_bytes(LogicalAddr::new(s, 0), 1).is_ok());
        }
    }

    #[test]
    fn repairs_carry_their_epoch_tag() {
        let (mut pool, mut fabric, mut pm) = setup(3);
        let seg = pool.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, seg).unwrap();
        pool.crash_server(NodeId(1));
        fabric.set_port_down(NodeId(1), true);
        let mut orch = RecoveryOrchestrator::new();
        orch.on_confirmed_down(&pool, NodeId(1), 7);
        let done = orch.step(&mut pool, &mut fabric, &mut pm, SimTime::ZERO, 8);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].epoch, 7);
        assert_eq!(done[0].node, NodeId(1));
    }

    #[test]
    fn stale_epoch_rejoin_cannot_resurrect_rebuilt_segments() {
        let (mut pool, mut fabric, mut pm) = setup(4);
        let t0 = SimTime::ZERO;
        let seg = pool.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut pool, &mut fabric, t0, seg).unwrap();
        pm.write(&mut pool, LogicalAddr::new(seg, 0), b"survives").unwrap();

        let mut membership = Membership::new(4);
        let stale_epoch = membership.epoch(); // what n0 last saw
        pool.crash_server(NodeId(0));
        let epoch = membership.confirm_down(NodeId(0));
        let mut orch = RecoveryOrchestrator::new();
        orch.on_confirmed_down(&pool, NodeId(0), epoch);
        orch.step(&mut pool, &mut fabric, &mut pm, t0, 8);
        let rebuilt_home = pool.holder_of(seg).unwrap();
        assert_ne!(rebuilt_home, NodeId(0));

        // n0 returns claiming its pre-crash epoch and intact memory.
        membership.rejoin(NodeId(0));
        let out = orch.admit_rejoin(&mut pool, &membership, NodeId(0), stale_epoch, true);
        assert!(!out.resurrected, "stale claim must be refused");
        // The rebuilt copy stays authoritative at its new home.
        assert_eq!(pool.holder_of(seg), Some(rebuilt_home));
        assert_eq!(
            pool.read_bytes(LogicalAddr::new(seg, 0), 8).unwrap(),
            b"survives"
        );
    }

    #[test]
    fn never_confirmed_warm_rejoin_is_honored() {
        // A node that flapped but was never confirmed Down keeps its
        // segments: nothing was rebuilt, so its claim is current.
        let (mut pool, _fabric, _pm) = setup(3);
        let seg = pool.alloc(FRAME_BYTES, Placement::On(NodeId(2))).unwrap();
        pool.write_bytes(LogicalAddr::new(seg, 0), b"kept").unwrap();
        let membership = Membership::new(3);
        let mut orch = RecoveryOrchestrator::new();
        let out = orch.admit_rejoin(&mut pool, &membership, NodeId(2), 0, true);
        assert!(out.resurrected);
        assert!(out.dropped.is_empty());
        assert_eq!(pool.read_bytes(LogicalAddr::new(seg, 0), 4).unwrap(), b"kept");
    }

    #[test]
    fn cold_restart_while_queued_skips_dropped_segments() {
        let (mut pool, mut fabric, mut pm) = setup(3);
        let t0 = SimTime::ZERO;
        let protected = pool.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let bare = pool.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut pool, &mut fabric, t0, protected).unwrap();
        pool.crash_server(NodeId(0));
        fabric.set_port_down(NodeId(0), true);

        let mut membership = Membership::new(3);
        let epoch = membership.confirm_down(NodeId(0));
        let mut orch = RecoveryOrchestrator::new();
        assert_eq!(orch.on_confirmed_down(&pool, NodeId(0), epoch), 2);

        // Cold restart lands before any repair step ran: the unprotected
        // segment's bookkeeping is dropped with the node...
        fabric.set_port_down(NodeId(0), false);
        membership.rejoin(NodeId(0));
        let out = orch.admit_rejoin(&mut pool, &membership, NodeId(0), 0, false);
        assert!(out.dropped.contains(&bare));
        // ...and the queue was cancelled with it: no repair runs, no panic.
        let done = orch.step(&mut pool, &mut fabric, &mut pm, t0, 8);
        assert!(done.is_empty());
        assert!(!orch.has_pending());
    }

    #[test]
    fn detector_to_orchestrator_closes_the_loop() {
        // End-to-end in miniature: crash → probes miss → confirm →
        // queued → repaired, no manual recover() call with a hand-fed
        // segment list.
        let (mut pool, mut fabric, mut pm) = setup(4);
        let seg = pool.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, seg).unwrap();
        pm.write(&mut pool, LogicalAddr::new(seg, 9), b"auto").unwrap();

        let cfg = HealthConfig::default_chaos();
        let mut det = FailureDetector::new(cfg, 4, SimTime::ZERO);
        let mut orch = RecoveryOrchestrator::new();
        pool.crash_server(NodeId(1));
        fabric.set_port_down(NodeId(1), true);

        let mut t = cfg.probe_interval;
        let horizon = SimTime::from_nanos(10_000);
        let mut now = SimTime::ZERO;
        while now < horizon {
            now = SimTime::ZERO + t;
            for ev in det.probe_tick(&mut fabric, now) {
                if let crate::health::HealthEvent::ConfirmedDown { node, epoch, .. } = ev {
                    orch.on_confirmed_down(&pool, node, epoch);
                }
            }
            orch.step(&mut pool, &mut fabric, &mut pm, now, cfg.recovery_batch);
            t += cfg.probe_interval;
        }
        assert_eq!(det.health(NodeId(1)), NodeHealth::Down);
        assert_eq!(orch.recovery_count(), 1);
        assert_eq!(
            pool.read_bytes(LogicalAddr::new(seg, 9), 4).unwrap(),
            b"auto"
        );
        assert_ne!(pool.holder_of(seg), Some(NodeId(1)));
    }
}
