//! Shared pool buffers (§3.1 capability 3, §5 migration constraint).
//!
//! "The memory pool serves as shared memory for servers" — and §5's
//! migration challenge exists precisely because "as buffers can be shared,
//! different servers may have pointers to the buffer being migrated".
//! [`SharingRegistry`] tracks which servers hold references to each
//! segment: buffers are published once, attached by any number of servers,
//! and freed exactly when the last reference detaches. Migration never
//! invalidates references — that is the two-level translation's job.

use crate::addr::SegmentId;
use crate::pool::{LogicalPool, PoolError};
use lmp_fabric::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Errors from sharing operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareError {
    /// The segment was never published (or already fully released).
    NotPublished(SegmentId),
    /// The server does not hold a reference.
    NotAttached(SegmentId, NodeId),
    /// The server already holds a reference (attach is not recursive).
    AlreadyAttached(SegmentId, NodeId),
}

impl std::fmt::Display for ShareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShareError::NotPublished(s) => write!(f, "{s} is not published"),
            ShareError::NotAttached(s, n) => write!(f, "{n} is not attached to {s}"),
            ShareError::AlreadyAttached(s, n) => write!(f, "{n} already attached to {s}"),
        }
    }
}

impl std::error::Error for ShareError {}

/// Reference-counted sharing state for pool buffers.
#[derive(Debug, Default)]
pub struct SharingRegistry {
    holders: BTreeMap<SegmentId, BTreeSet<u32>>,
}

impl SharingRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a buffer with `owner` as the first reference holder.
    ///
    /// # Panics
    /// Panics when the segment is already published — double publication
    /// is a caller bug, not a runtime condition.
    pub fn publish(&mut self, seg: SegmentId, owner: NodeId) {
        let prev = self.holders.insert(seg, BTreeSet::from([owner.0]));
        assert!(prev.is_none(), "{seg} published twice");
    }

    /// Attach another server to a published buffer.
    pub fn attach(&mut self, seg: SegmentId, server: NodeId) -> Result<(), ShareError> {
        let holders = self
            .holders
            .get_mut(&seg)
            .ok_or(ShareError::NotPublished(seg))?;
        if !holders.insert(server.0) {
            return Err(ShareError::AlreadyAttached(seg, server));
        }
        Ok(())
    }

    /// Detach a server. When the last reference goes, the segment is freed
    /// from the pool. Returns `true` when this detach freed the buffer.
    pub fn detach(
        &mut self,
        pool: &mut LogicalPool,
        seg: SegmentId,
        server: NodeId,
    ) -> Result<bool, ShareError> {
        let holders = self
            .holders
            .get_mut(&seg)
            .ok_or(ShareError::NotPublished(seg))?;
        if !holders.remove(&server.0) {
            return Err(ShareError::NotAttached(seg, server));
        }
        if holders.is_empty() {
            self.holders.remove(&seg);
            match pool.free(seg) {
                Ok(()) => {}
                // A crash may already have torn the segment down; the
                // reference bookkeeping still completes.
                Err(PoolError::UnknownSegment(_)) => {}
                // lmp-lint: allow(no-panic) — freeing a fully-released shared
                // segment can only fail if the registry and pool disagree —
                // bookkeeping corruption that must not be masked.
                Err(e) => panic!("free of fully-released {seg} failed: {e}"),
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Servers currently holding references, in id order.
    pub fn holders(&self, seg: SegmentId) -> Vec<NodeId> {
        self.holders
            .get(&seg)
            .map(|h| h.iter().map(|&n| NodeId(n)).collect())
            .unwrap_or_default()
    }

    /// Reference count (0 when unpublished).
    pub fn refcount(&self, seg: SegmentId) -> usize {
        self.holders.get(&seg).map(BTreeSet::len).unwrap_or(0)
    }

    /// Published segments a crashed server referenced (its references are
    /// dropped; buffers it solely held are freed). Returns the segments
    /// that were freed.
    // detach() is called only for segments whose holder set was just
    // verified to contain `server`.
    #[allow(clippy::expect_used)]
    pub fn drop_server(&mut self, pool: &mut LogicalPool, server: NodeId) -> Vec<SegmentId> {
        let segs: Vec<SegmentId> = self
            .holders
            .iter()
            .filter(|(_, h)| h.contains(&server.0))
            .map(|(s, _)| *s)
            .collect();
        let mut freed = Vec::new();
        for seg in segs {
            if self.detach(pool, seg, server).expect("holder verified") {
                freed.push(seg);
            }
        }
        freed.sort_unstable();
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LogicalAddr;
    use crate::migrate::migrate_segment;
    use crate::pool::{Placement, PoolConfig};
    use lmp_fabric::{Fabric, LinkProfile};
    use lmp_mem::{DramProfile, FRAME_BYTES};
    use lmp_sim::prelude::*;

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 3,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 3))
    }

    #[test]
    fn publish_attach_detach_lifecycle() {
        let (mut p, _) = setup();
        let mut reg = SharingRegistry::new();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        reg.publish(seg, NodeId(0));
        reg.attach(seg, NodeId(1)).unwrap();
        reg.attach(seg, NodeId(2)).unwrap();
        assert_eq!(reg.refcount(seg), 3);
        assert_eq!(reg.holders(seg), vec![NodeId(0), NodeId(1), NodeId(2)]);

        assert!(!reg.detach(&mut p, seg, NodeId(0)).unwrap());
        assert!(!reg.detach(&mut p, seg, NodeId(1)).unwrap());
        assert!(p.segment_len(seg).is_some(), "still referenced");
        assert!(reg.detach(&mut p, seg, NodeId(2)).unwrap(), "last ref frees");
        assert!(p.segment_len(seg).is_none());
        assert_eq!(reg.refcount(seg), 0);
    }

    #[test]
    fn double_attach_and_foreign_detach_rejected() {
        let (mut p, _) = setup();
        let mut reg = SharingRegistry::new();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        reg.publish(seg, NodeId(0));
        assert_eq!(
            reg.attach(seg, NodeId(0)),
            Err(ShareError::AlreadyAttached(seg, NodeId(0)))
        );
        assert_eq!(
            reg.detach(&mut p, seg, NodeId(2)),
            Err(ShareError::NotAttached(seg, NodeId(2)))
        );
        assert_eq!(
            reg.attach(SegmentId(99), NodeId(1)),
            Err(ShareError::NotPublished(SegmentId(99)))
        );
    }

    #[test]
    fn references_survive_migration() {
        let (mut p, mut f) = setup();
        let mut reg = SharingRegistry::new();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        reg.publish(seg, NodeId(0));
        reg.attach(seg, NodeId(1)).unwrap();
        p.write_bytes(LogicalAddr::new(seg, 0), b"shared").unwrap();

        migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(2)).unwrap();
        // Both holders still see the data; the registry is untouched.
        assert_eq!(reg.refcount(seg), 2);
        assert_eq!(p.read_bytes(LogicalAddr::new(seg, 0), 6).unwrap(), b"shared");
        // And release still frees.
        reg.detach(&mut p, seg, NodeId(0)).unwrap();
        assert!(reg.detach(&mut p, seg, NodeId(1)).unwrap());
        assert_eq!(p.free_shared_frames(NodeId(2)), 12);
    }

    #[test]
    fn drop_server_releases_its_references() {
        let (mut p, _) = setup();
        let mut reg = SharingRegistry::new();
        let solo = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let shared = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        reg.publish(solo, NodeId(1));
        reg.publish(shared, NodeId(1));
        reg.attach(shared, NodeId(2)).unwrap();

        let freed = reg.drop_server(&mut p, NodeId(1));
        assert_eq!(freed, vec![solo], "solely-held buffer freed");
        assert_eq!(reg.refcount(shared), 1, "shared buffer survives");
    }

    #[test]
    fn detach_tolerates_crashed_segments() {
        let (mut p, _) = setup();
        let mut reg = SharingRegistry::new();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        reg.publish(seg, NodeId(0));
        p.crash_server(NodeId(1));
        p.drop_segment_bookkeeping(seg);
        // Last detach of a torn-down segment completes without panicking.
        assert!(reg.detach(&mut p, seg, NodeId(0)).unwrap());
    }
}
