//! Failure domains (§5 "Failure domains").
//!
//! In an LMP a server crash takes down part of the pool. The paper points
//! at the standard remedies — "failure masking through replication or
//! erasure coding, or failure reporting to application through exceptions"
//! — and this module implements all three:
//!
//! * **Exceptions** — unprotected segments on a crashed server surface as
//!   [`PoolError::SegmentLost`] on access (implemented in the pool itself).
//! * **Mirroring** — a full replica on a different server; crash recovery
//!   promotes the replica in place, preserving the logical address.
//! * **XOR erasure coding** — k same-sized segments on k distinct servers
//!   plus one parity segment on yet another; any single server loss is
//!   reconstructed from the k survivors. Storage overhead 1/k instead of
//!   1x for mirroring, at higher write and recovery cost.

use crate::addr::{LogicalAddr, SegmentId};
use crate::placement::PlacementPolicy;
use crate::pool::{LogicalPool, Placement, PoolError};
use lmp_fabric::{Fabric, NodeId};
use lmp_mem::FRAME_BYTES;
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Identifier of a parity group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

#[derive(Debug, Clone)]
struct ParityGroup {
    members: Vec<SegmentId>,
    parity: SegmentId,
    len: u64,
}

/// Bytes written for one protected write (amplification accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteAmplification {
    /// Bytes written to the primary segment.
    pub primary_bytes: u64,
    /// Extra bytes written for protection (replica or parity updates).
    pub extra_bytes: u64,
}

/// Outcome of crash recovery.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Segments restored by promoting their mirror.
    pub promoted: Vec<SegmentId>,
    /// Segments rebuilt from parity.
    pub reconstructed: Vec<SegmentId>,
    /// Protection re-established (new mirrors/parity) for these segments.
    pub reprotected: Vec<SegmentId>,
    /// Segments with no surviving protection — the application gets
    /// memory exceptions for these.
    pub lost: Vec<SegmentId>,
    /// Segments that had to be rebuilt onto a server already hosting
    /// another segment of the same parity group: data survived, but the
    /// group lost failure-domain independence. A second crash of that
    /// server now takes two group segments at once, which XOR cannot
    /// repair. Operators should treat these as "re-protect me urgently".
    pub degraded_placement: Vec<SegmentId>,
    /// Bytes moved during recovery.
    pub bytes_transferred: u64,
    /// When recovery finished.
    pub complete: SimTime,
}

/// Where a degraded read's bytes actually came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedSource {
    /// The primary copy was reachable after all (e.g. the caller saw a
    /// transient error that has since cleared).
    Primary,
    /// Served from the mirror replica.
    MirrorReplica,
    /// Rebuilt on the fly by XOR of the surviving group segments.
    ParityRebuild {
        /// Surviving segments read (members + parity, minus the victim).
        survivors: u32,
    },
}

/// Outcome of a degraded read: the bytes, when they arrived, and how they
/// were obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedRead {
    /// The requested byte range, exactly as the primary would have
    /// returned it.
    pub bytes: Vec<u8>,
    /// Completion time at the requester (degraded reads are slower: they
    /// touch more servers).
    pub complete: SimTime,
    /// Which path served the read.
    pub source: DegradedSource,
}

/// Tracks which segments are protected and how; drives recovery.
#[derive(Debug, Default)]
pub struct ProtectionManager {
    /// primary → replica.
    mirrors: BTreeMap<SegmentId, SegmentId>,
    /// replica → primary.
    replica_of: BTreeMap<SegmentId, SegmentId>,
    groups: BTreeMap<GroupId, ParityGroup>,
    member_group: BTreeMap<SegmentId, GroupId>,
    next_group: u64,
    /// Where replicas, parity segments, and rebuilt segments may land.
    /// Defaults to [`PlacementPolicy::HostOnly`] (the original exclusion
    /// semantics, byte for byte).
    policy: PlacementPolicy,
}

impl ProtectionManager {
    /// An empty manager with host-only placement.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty manager placing under `policy` (e.g. rack-aware).
    pub fn with_policy(policy: PlacementPolicy) -> Self {
        ProtectionManager {
            policy,
            ..Self::default()
        }
    }

    /// The active placement policy.
    pub fn policy(&self) -> &PlacementPolicy {
        &self.policy
    }

    /// Whether `seg` has any protection.
    pub fn is_protected(&self, seg: SegmentId) -> bool {
        self.mirrors.contains_key(&seg) || self.member_group.contains_key(&seg)
    }

    /// The replica of `seg`, if mirrored.
    pub fn replica(&self, seg: SegmentId) -> Option<SegmentId> {
        self.mirrors.get(&seg).copied()
    }

    /// The mirror twin a hedged read can race through: `seg`'s replica,
    /// or — when `seg` *is* a replica — its primary. `None` for
    /// unmirrored segments; an XOR parity group cannot serve a cheap
    /// duplicate (rebuilding is k reads, not one).
    pub fn mirror_twin(&self, seg: SegmentId) -> Option<SegmentId> {
        self.mirrors
            .get(&seg)
            .copied()
            .or_else(|| self.replica_of.get(&seg).copied())
    }

    /// The parity group of `seg`, if erasure-coded.
    pub fn group_of(&self, seg: SegmentId) -> Option<GroupId> {
        self.member_group.get(&seg).copied()
    }

    /// The data members of a parity group (excludes the parity segment).
    pub fn group_members(&self, gid: GroupId) -> Option<&[SegmentId]> {
        self.groups.get(&gid).map(|g| g.members.as_slice())
    }

    /// The parity segment of a group.
    pub fn parity_segment(&self, gid: GroupId) -> Option<SegmentId> {
        self.groups.get(&gid).map(|g| g.parity)
    }

    /// Mirror `seg` onto a different server. Returns the replica segment.
    ///
    /// Protecting an already-protected segment returns
    /// [`PoolError::AlreadyProtected`] — the auto-recovery orchestrator can
    /// race re-protection against a second crash, so this must be a
    /// recoverable error rather than a panic.
    pub fn mirror(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        seg: SegmentId,
    ) -> Result<SegmentId, PoolError> {
        if self.is_protected(seg) {
            return Err(PoolError::AlreadyProtected(seg));
        }
        let len = pool
            .segment_len(seg)
            .ok_or(PoolError::UnknownSegment(seg))?;
        let home = pool.holder_of(seg).ok_or(PoolError::UnknownSegment(seg))?;
        // A dead source cannot be copied; without this guard the replica
        // allocation below would leak when the read faults.
        if pool.node(home).is_failed() {
            return Err(PoolError::ServerDown(home));
        }
        let decision = self
            .policy
            .place_member(pool, len, &[home])
            .ok_or(PoolError::Capacity {
                requested_frames: len.div_ceil(FRAME_BYTES),
            })?;
        let target = decision.target;
        if let Some(level) = decision.lost {
            if let Some(t) = pool.telemetry_mut() {
                t.note_independence_lost(level);
            }
        }
        // Charge the fabric for the copy before any pool state changes: a
        // down port (fault injection) fails the mirror cleanly.
        fabric
            .try_write(now, home, target, len)
            .map_err(|e| match e.node() {
                Some(n) => PoolError::ServerDown(n),
                None => PoolError::Internal("fabric rejected a well-formed transfer"),
            })?;
        let replica = pool.alloc(len, Placement::On(target))?;
        let data = pool.read_bytes(LogicalAddr::new(seg, 0), len)?;
        pool.write_bytes(LogicalAddr::new(replica, 0), &data)?;
        self.mirrors.insert(seg, replica);
        self.replica_of.insert(replica, seg);
        Ok(replica)
    }

    /// Erasure-code `members` (same length, pairwise-distinct servers) with
    /// one XOR parity segment on yet another server.
    pub fn protect_parity(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        members: &[SegmentId],
    ) -> Result<GroupId, PoolError> {
        if members.len() < 2 {
            return Err(PoolError::InvalidRequest("parity needs at least two members"));
        }
        let len = pool
            .segment_len(members[0])
            .ok_or(PoolError::UnknownSegment(members[0]))?;
        let mut homes = Vec::new();
        for &m in members {
            if self.is_protected(m) {
                return Err(PoolError::AlreadyProtected(m));
            }
            let l = pool.segment_len(m).ok_or(PoolError::UnknownSegment(m))?;
            if l != len {
                return Err(PoolError::InvalidRequest(
                    "parity members must have equal length",
                ));
            }
            let h = pool.holder_of(m).ok_or(PoolError::UnknownSegment(m))?;
            // A dead member cannot seed the parity; without this guard the
            // parity allocation below would leak when the read faults.
            if pool.node(h).is_failed() {
                return Err(PoolError::ServerDown(h));
            }
            if homes.contains(&h) {
                return Err(PoolError::InvalidRequest(
                    "parity members must live on distinct servers",
                ));
            }
            homes.push(h);
        }
        let decision = self
            .policy
            .place_member(pool, len, &homes)
            .ok_or(PoolError::Capacity {
                requested_frames: len.div_ceil(FRAME_BYTES),
            })?;
        let target = decision.target;
        if let Some(level) = decision.lost {
            if let Some(t) = pool.telemetry_mut() {
                t.note_independence_lost(level);
            }
        }
        // Charge the fabric for pulling every member before any pool state
        // changes: a down port fails protection cleanly.
        for &h in &homes {
            fabric
                .try_read(now, target, h, len)
                .map_err(|e| match e.node() {
                    Some(n) => PoolError::ServerDown(n),
                    None => PoolError::Internal("fabric rejected a well-formed transfer"),
                })?;
        }
        let parity = pool.alloc(len, Placement::On(target))?;
        let mut acc = vec![0u8; len as usize];
        for &m in members {
            let data = pool.read_bytes(LogicalAddr::new(m, 0), len)?;
            xor_into(&mut acc, &data);
        }
        pool.write_bytes(LogicalAddr::new(parity, 0), &acc)?;
        let gid = GroupId(self.next_group);
        self.next_group += 1;
        self.groups.insert(
            gid,
            ParityGroup {
                members: members.to_vec(),
                parity,
                len,
            },
        );
        for &m in members {
            self.member_group.insert(m, gid);
        }
        self.member_group.insert(parity, gid);
        Ok(gid)
    }

    /// Protected write: keeps replicas and parity in sync.
    pub fn write(
        &mut self,
        pool: &mut LogicalPool,
        addr: LogicalAddr,
        data: &[u8],
    ) -> Result<WriteAmplification, PoolError> {
        let mut amp = WriteAmplification {
            primary_bytes: data.len() as u64,
            extra_bytes: 0,
        };
        // Parity delta must be computed against the old contents.
        if let Some(gid) = self.member_group.get(&addr.segment).copied() {
            let group = self
                .groups
                .get(&gid)
                .ok_or(PoolError::Internal("member points at a dissolved group"))?
                .clone();
            if group.parity == addr.segment {
                return Err(PoolError::InvalidRequest(
                    "direct writes to a parity segment are not allowed",
                ));
            }
            let old = pool.read_bytes(addr, data.len() as u64)?;
            let mut delta: Vec<u8> = old.iter().zip(data).map(|(o, n)| o ^ n).collect();
            let paddr = LogicalAddr::new(group.parity, addr.offset);
            let pold = pool.read_bytes(paddr, data.len() as u64)?;
            xor_into(&mut delta, &pold);
            pool.write_bytes(paddr, &delta)?;
            amp.extra_bytes += data.len() as u64;
        }
        pool.write_bytes(addr, data)?;
        if let Some(&replica) = self.mirrors.get(&addr.segment) {
            pool.write_bytes(LogicalAddr::new(replica, addr.offset), data)?;
            amp.extra_bytes += data.len() as u64;
        }
        Ok(amp)
    }

    /// Serve a read even while the segment's primary copy is unavailable —
    /// crashed and not yet reconstructed, or unreachable behind a flapped
    /// port. The paper's goal is that applications see *slow* reads during
    /// the recovery window, not `SegmentLost` exceptions.
    ///
    /// Resolution order: the primary if its server is alive and reachable;
    /// the mirror twin (replica for a primary, primary for a replica);
    /// otherwise an on-the-fly XOR of the requested byte range across the
    /// surviving parity-group segments. Every remote hop is charged to the
    /// fabric, so degraded reads are honestly slower. Returns
    /// [`PoolError::SegmentLost`] only when no complete path to the bytes
    /// exists.
    pub fn read_degraded(
        &self,
        pool: &LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        requester: NodeId,
        addr: LogicalAddr,
        len: u64,
    ) -> Result<DegradedRead, PoolError> {
        let seg = addr.segment;
        let seg_len = pool.segment_len(seg).ok_or(PoolError::UnknownSegment(seg))?;
        let end = addr.offset + len;
        if end > seg_len {
            return Err(PoolError::OutOfBounds {
                segment: seg,
                end,
                len: seg_len,
            });
        }
        let holder = pool.holder_of(seg).ok_or(PoolError::UnknownSegment(seg))?;
        // 1. Primary, when alive and reachable.
        if !pool.node(holder).is_failed() {
            if holder == requester {
                return Ok(DegradedRead {
                    bytes: pool.read_bytes(addr, len)?,
                    complete: now,
                    source: DegradedSource::Primary,
                });
            }
            if let Ok(fc) = fabric.try_read(now, requester, holder, len) {
                return Ok(DegradedRead {
                    bytes: pool.read_bytes(addr, len)?,
                    complete: fc.complete,
                    source: DegradedSource::Primary,
                });
            }
            // Port flap: fall through and route around it.
        }
        self.read_degraded_via_protection(pool, fabric, now, requester, addr, len)
    }

    /// [`ProtectionManager::read_degraded`] minus its primary attempt:
    /// serve straight from the protection layer — mirror twin first, then
    /// an on-the-fly XOR rebuild. This is the hedge path: a hedged read
    /// already has a (slow) primary in flight and wants the duplicate to
    /// race it through the *other* copy, never the same congested link.
    /// Returns [`PoolError::SegmentLost`] when no protection covers `seg`.
    pub fn read_degraded_via_protection(
        &self,
        pool: &LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        requester: NodeId,
        addr: LogicalAddr,
        len: u64,
    ) -> Result<DegradedRead, PoolError> {
        let seg = addr.segment;
        let seg_len = pool.segment_len(seg).ok_or(PoolError::UnknownSegment(seg))?;
        let end = addr.offset + len;
        if end > seg_len {
            return Err(PoolError::OutOfBounds {
                segment: seg,
                end,
                len: seg_len,
            });
        }
        // 2. Mirror twin, at the same offset (writes keep them in sync).
        if let Some(twin) = self.mirror_twin(seg) {
            let home = pool.holder_of(twin).ok_or(PoolError::SegmentLost(seg))?;
            if pool.node(home).is_failed() {
                return Err(PoolError::SegmentLost(seg));
            }
            let complete = if home == requester {
                now
            } else {
                fabric
                    .try_read(now, requester, home, len)
                    .map_err(|_| PoolError::SegmentLost(seg))?
                    .complete
            };
            return Ok(DegradedRead {
                bytes: pool.read_bytes(LogicalAddr::new(twin, addr.offset), len)?,
                complete,
                source: DegradedSource::MirrorReplica,
            });
        }
        // 3. On-the-fly XOR of the surviving parity-group segments: the
        // victim's range is the XOR of the same range in every other
        // member plus the parity.
        if let Some(gid) = self.member_group.get(&seg) {
            let group = self
                .groups
                .get(gid)
                .ok_or(PoolError::Internal("member points at a dissolved group"))?;
            let mut acc = vec![0u8; len as usize];
            let mut complete = now;
            let mut survivors = 0u32;
            for &s in group.members.iter().chain(std::iter::once(&group.parity)) {
                if s == seg {
                    continue;
                }
                let home = pool.holder_of(s).ok_or(PoolError::SegmentLost(seg))?;
                if pool.node(home).is_failed() {
                    return Err(PoolError::SegmentLost(seg));
                }
                let data = pool.read_bytes(LogicalAddr::new(s, addr.offset), len)?;
                xor_into(&mut acc, &data);
                if home != requester {
                    let fc = fabric
                        .try_read(now, requester, home, len)
                        .map_err(|_| PoolError::SegmentLost(seg))?;
                    complete = complete.max(fc.complete);
                }
                survivors += 1;
            }
            return Ok(DegradedRead {
                bytes: acc,
                complete,
                source: DegradedSource::ParityRebuild { survivors },
            });
        }
        Err(PoolError::SegmentLost(seg))
    }

    /// Recover from the crash of `server`. Call after
    /// [`LogicalPool::crash_server`]; handles every affected segment.
    pub fn recover(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        _server: NodeId,
        affected: &[SegmentId],
    ) -> RecoveryReport {
        let mut report = RecoveryReport {
            complete: now,
            ..Default::default()
        };
        for &seg in affected {
            if let Some(replica) = self.mirrors.remove(&seg) {
                // Promote the replica: its frames become the segment's.
                self.replica_of.remove(&replica);
                // Correlated failure (e.g. a rack loss under host-only
                // placement): the replica died with its primary. Promoting
                // would hand the segment frames on a dead server; report
                // the loss instead. The replica's own bookkeeping is
                // dropped here so a later pass over its home's segments
                // does not double-report it.
                let replica_alive = pool
                    .holder_of(replica)
                    .is_some_and(|h| !pool.node(h).is_failed());
                if !replica_alive {
                    pool.drop_segment_bookkeeping(replica);
                    report.lost.push(seg);
                    continue;
                }
                if pool.promote_replica(seg, replica).is_err() {
                    // Bookkeeping disagreed about the replica (a bug, not
                    // an injectable fault); degrade to reporting loss.
                    report.lost.push(seg);
                    continue;
                }
                report.promoted.push(seg);
                // Re-mirror for continued protection, if room exists.
                if self.mirror(pool, fabric, now, seg).is_ok() {
                    report.reprotected.push(seg);
                    report.bytes_transferred += pool.segment_len(seg).unwrap_or(0);
                }
            } else if let Some(primary) = self.replica_of.remove(&seg) {
                // A replica died; the primary is fine. Re-mirror it.
                self.mirrors.remove(&primary);
                pool.drop_segment_bookkeeping(seg);
                if self.mirror(pool, fabric, now, primary).is_ok() {
                    report.reprotected.push(primary);
                    report.bytes_transferred += pool.segment_len(primary).unwrap_or(0);
                }
            } else if let Some(gid) = self.member_group.get(&seg).copied() {
                let Some(group) = self.groups.get(&gid).cloned() else {
                    // Member points at a dissolved group (a bug, not an
                    // injectable fault); degrade to reporting loss.
                    report.lost.push(seg);
                    continue;
                };
                match self.reconstruct(pool, fabric, now, &group, seg) {
                    Ok((bytes, done, degraded)) => {
                        report.bytes_transferred += bytes;
                        report.complete = report.complete.max(done);
                        if degraded {
                            report.degraded_placement.push(seg);
                        }
                        if seg == group.parity {
                            report.reprotected.push(seg);
                        } else {
                            report.reconstructed.push(seg);
                        }
                    }
                    Err(_) => {
                        // Second failure in the group or no capacity.
                        self.dissolve_group(gid);
                        report.lost.push(seg);
                    }
                }
            } else if pool.segment_len(seg).is_some() {
                // Unprotected (or protection already torn down): lost.
                // Segments whose bookkeeping an earlier pass dropped —
                // e.g. a replica cleaned up when its primary was reported
                // lost — are skipped rather than double-reported.
                report.lost.push(seg);
            }
        }
        report.lost.sort_unstable();
        report
    }

    fn reconstruct(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        group: &ParityGroup,
        victim: SegmentId,
    ) -> Result<(u64, SimTime, bool), PoolError> {
        let len = group.len;
        // Survivors: every other group segment (members + parity).
        let mut survivors = Vec::new();
        for &s in group.members.iter().chain(std::iter::once(&group.parity)) {
            if s == victim {
                continue;
            }
            let home = pool.holder_of(s).ok_or(PoolError::UnknownSegment(s))?;
            if pool.node(home).is_failed() {
                return Err(PoolError::SegmentLost(s));
            }
            survivors.push((s, home));
        }
        // Prefer a target that restores full fault independence at the
        // policy's strongest level (another rack under `DomainAware`, any
        // other host under `HostOnly`); fall back tier by tier — degraded
        // placement beats data loss, but the caller must hear about it so
        // the loss of independence is never silent, and telemetry gets a
        // labelled `placement.independence_lost{domain}` bump.
        let exclude: Vec<NodeId> = survivors.iter().map(|(_, h)| *h).collect();
        let decision = self
            .policy
            .place_recovery(pool, len, &exclude)
            .ok_or(PoolError::Capacity {
                requested_frames: len.div_ceil(FRAME_BYTES),
            })?;
        let (target, degraded) = (decision.target, decision.lost.is_some());
        if let Some(level) = decision.lost {
            if let Some(t) = pool.telemetry_mut() {
                t.note_independence_lost(level);
            }
        }
        // XOR the survivors into the replacement.
        let mut acc = vec![0u8; len as usize];
        let mut done = now;
        for (s, h) in &survivors {
            let data = pool.read_bytes(LogicalAddr::new(*s, 0), len)?;
            xor_into(&mut acc, &data);
            if *h != target {
                // A survivor (or the target) behind a down port makes the
                // group unreadable right now; the caller degrades to loss.
                let fc = fabric
                    .try_read(now, target, *h, len)
                    .map_err(|_| PoolError::SegmentLost(*s))?;
                done = done.max(fc.complete);
            }
        }
        pool.rehome_segment(victim, target, &acc)?;
        Ok((len * survivors.len() as u64, done, degraded))
    }

    fn dissolve_group(&mut self, gid: GroupId) {
        if let Some(g) = self.groups.remove(&gid) {
            for m in g.members {
                self.member_group.remove(&m);
            }
            self.member_group.remove(&g.parity);
        }
    }
}

/// XOR `data` into `acc`. Callers always pass equal lengths (all members
/// of a parity group share one length); `zip` makes a mismatch inert
/// rather than a panic.
fn xor_into(acc: &mut [u8], data: &[u8]) {
    for (a, d) in acc.iter_mut().zip(data) {
        *a ^= d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use lmp_fabric::LinkProfile;
    use lmp_mem::DramProfile;

    fn setup(servers: u32) -> (LogicalPool, Fabric, ProtectionManager) {
        let cfg = PoolConfig {
            servers,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (
            LogicalPool::new(cfg),
            Fabric::new(LinkProfile::link1(), servers),
            ProtectionManager::new(),
        )
    }

    #[test]
    fn mirror_promotion_preserves_data_and_address() {
        let (mut p, mut f, mut pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, 123);
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        pm.write(&mut p, addr, b"replicated!").unwrap();

        let affected = p.crash_server(NodeId(0));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        assert_eq!(report.promoted, vec![seg]);
        assert!(report.lost.is_empty());
        // Same logical address, same bytes, new server.
        assert_eq!(p.read_bytes(addr, 11).unwrap(), b"replicated!");
        assert_ne!(p.holder_of(seg), Some(NodeId(0)));
    }

    #[test]
    fn mirror_reprotects_after_promotion() {
        let (mut p, mut f, mut pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let affected = p.crash_server(NodeId(0));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        assert_eq!(report.reprotected, vec![seg]);
        assert!(pm.replica(seg).is_some(), "protection re-established");
    }

    #[test]
    fn replica_crash_reprotects_primary() {
        let (mut p, mut f, mut pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let replica = pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let replica_home = p.holder_of(replica).unwrap();
        let affected = p.crash_server(replica_home);
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, replica_home, &affected);
        assert_eq!(report.reprotected, vec![seg]);
        let new_replica = pm.replica(seg).unwrap();
        assert_ne!(new_replica, replica);
        assert!(report.lost.is_empty());
    }

    #[test]
    fn parity_reconstruction_recovers_exact_bytes() {
        let (mut p, mut f, mut pm) = setup(4);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        pm.write(&mut p, LogicalAddr::new(a, 0), b"alpha-data").unwrap();
        pm.write(&mut p, LogicalAddr::new(b, 0), b"bravo-data").unwrap();

        let affected = p.crash_server(NodeId(0));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        assert_eq!(report.reconstructed, vec![a]);
        assert!(report.lost.is_empty());
        assert_eq!(p.read_bytes(LogicalAddr::new(a, 0), 10).unwrap(), b"alpha-data");
        assert_ne!(p.holder_of(a), Some(NodeId(0)));
        assert!(report.bytes_transferred >= 2 * FRAME_BYTES);
    }

    #[test]
    fn parity_segment_crash_recomputes_parity() {
        let (mut p, mut f, mut pm) = setup(4);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let gid = pm
            .protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        let parity = pm.groups[&gid].parity;
        let parity_home = p.holder_of(parity).unwrap();
        let affected = p.crash_server(parity_home);
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, parity_home, &affected);
        assert_eq!(report.reprotected, vec![parity]);
        // Group still protects: crash a member next and recover it.
        pm.write(&mut p, LogicalAddr::new(b, 5), b"post-repair").unwrap();
        let affected = p.crash_server(NodeId(1));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(1), &affected);
        assert_eq!(report.reconstructed, vec![b]);
        assert_eq!(
            p.read_bytes(LogicalAddr::new(b, 5), 11).unwrap(),
            b"post-repair"
        );
    }

    #[test]
    fn unprotected_segments_are_lost() {
        let (mut p, mut f, mut pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let affected = p.crash_server(NodeId(1));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(1), &affected);
        assert_eq!(report.lost, vec![seg]);
        assert!(matches!(
            p.read_bytes(LogicalAddr::new(seg, 0), 1),
            Err(PoolError::SegmentLost(_))
        ));
    }

    #[test]
    fn mirror_fails_cleanly_when_ports_down() {
        let (mut p, mut f, mut pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let free_before: Vec<u64> = (0..3).map(|i| p.free_shared_frames(NodeId(i))).collect();
        f.set_port_down(NodeId(1), true);
        f.set_port_down(NodeId(2), true);
        let r = pm.mirror(&mut p, &mut f, SimTime::ZERO, seg);
        assert!(matches!(r, Err(PoolError::ServerDown(_))));
        assert!(!pm.is_protected(seg));
        // No replica leaked: capacity unchanged everywhere.
        let free_after: Vec<u64> = (0..3).map(|i| p.free_shared_frames(NodeId(i))).collect();
        assert_eq!(free_before, free_after);
        // Port restored, mirroring works again.
        f.set_port_down(NodeId(1), false);
        f.set_port_down(NodeId(2), false);
        assert!(pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).is_ok());
    }

    #[test]
    fn reconstruction_degrades_to_loss_when_survivor_port_down() {
        let (mut p, mut f, mut pm) = setup(4);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        let affected = p.crash_server(NodeId(0));
        // The surviving member's port flaps during recovery.
        f.set_port_down(NodeId(1), true);
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        assert_eq!(report.lost, vec![a], "no reachable survivors: lost");
        assert!(report.reconstructed.is_empty());
        assert!(!pm.is_protected(b), "group dissolved");
    }

    #[test]
    fn write_amplification_accounting() {
        let (mut p, mut f, mut pm) = setup(4);
        let plain = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let amp = pm.write(&mut p, LogicalAddr::new(plain, 0), b"xxxx").unwrap();
        assert_eq!(amp.extra_bytes, 0);

        let mirrored = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, mirrored).unwrap();
        let amp = pm
            .write(&mut p, LogicalAddr::new(mirrored, 0), b"xxxx")
            .unwrap();
        assert_eq!(amp.extra_bytes, 4, "mirror doubles writes");
    }

    #[test]
    fn double_protection_is_a_recoverable_error() {
        let (mut p, mut f, mut pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let free_before: Vec<u64> = (0..3).map(|i| p.free_shared_frames(NodeId(i))).collect();
        assert_eq!(
            pm.mirror(&mut p, &mut f, SimTime::ZERO, seg),
            Err(PoolError::AlreadyProtected(seg)),
        );
        // No second replica leaked, and the original protection is intact.
        let free_after: Vec<u64> = (0..3).map(|i| p.free_shared_frames(NodeId(i))).collect();
        assert_eq!(free_before, free_after);
        assert!(pm.replica(seg).is_some());
        // Same for parity membership.
        let other = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        assert_eq!(
            pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[seg, other]),
            Err(PoolError::AlreadyProtected(seg)),
        );
    }

    #[test]
    fn degraded_placement_is_reported_not_silent() {
        // 3 servers: members on 0 and 1, parity forced onto 2. After
        // crashing 0 the only reconstruction targets already host group
        // segments — the fallback must say so.
        let (mut p, mut f, mut pm) = setup(3);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        pm.write(&mut p, LogicalAddr::new(a, 0), b"fragile").unwrap();

        let affected = p.crash_server(NodeId(0));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        assert_eq!(report.reconstructed, vec![a]);
        assert_eq!(
            report.degraded_placement,
            vec![a],
            "co-located rebuild must be reported"
        );
        assert_eq!(p.read_bytes(LogicalAddr::new(a, 0), 7).unwrap(), b"fragile");
        // The rebuilt copy landed on a server that hosts another group
        // segment — exactly the independence loss the report flags.
        let new_home = p.holder_of(a).unwrap();
        let group_homes = [p.holder_of(b).unwrap(), {
            let gid = pm.group_of(b).unwrap();
            p.holder_of(pm.parity_segment(gid).unwrap()).unwrap()
        }];
        assert!(group_homes.contains(&new_home));
    }

    #[test]
    fn double_loss_after_degraded_placement_loses_cleanly() {
        // Regression: the second crash in a degraded-placement group used
        // to be unrepresentable (the fallback was silent). It must surface
        // as loss of both co-located segments — never a panic.
        let (mut p, mut f, mut pm) = setup(3);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        let affected = p.crash_server(NodeId(0));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        assert_eq!(report.degraded_placement, vec![a]);
        let second_home = p.holder_of(a).unwrap();
        assert_eq!(second_home, p.holder_of(b).unwrap(), "co-located rebuild");

        let affected = p.crash_server(second_home);
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, second_home, &affected);
        let mut lost = report.lost.clone();
        lost.sort_unstable();
        assert_eq!(lost, vec![a, b], "both co-located segments are lost");
        assert!(report.reconstructed.is_empty());
        assert!(!pm.is_protected(a) && !pm.is_protected(b), "group dissolved");
    }

    #[test]
    fn degraded_read_serves_from_mirror_before_recovery() {
        let (mut p, mut f, mut pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        pm.write(&mut p, LogicalAddr::new(seg, 40), b"still-here").unwrap();
        p.crash_server(NodeId(0));
        f.set_port_down(NodeId(0), true);
        // No recovery has run: a plain read faults, a degraded read serves.
        assert!(matches!(
            p.read_bytes(LogicalAddr::new(seg, 40), 10),
            Err(PoolError::SegmentLost(_))
        ));
        let r = pm
            .read_degraded(&p, &mut f, SimTime::ZERO, NodeId(2), LogicalAddr::new(seg, 40), 10)
            .unwrap();
        assert_eq!(r.bytes, b"still-here");
        assert_eq!(r.source, DegradedSource::MirrorReplica);
        assert!(r.complete > SimTime::ZERO, "remote hop was charged");
    }

    #[test]
    fn degraded_read_rebuilds_range_from_parity() {
        let (mut p, mut f, mut pm) = setup(4);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        pm.write(&mut p, LogicalAddr::new(a, 100), b"alpha-bytes").unwrap();
        pm.write(&mut p, LogicalAddr::new(b, 100), b"bravo-bytes").unwrap();
        p.crash_server(NodeId(0));
        f.set_port_down(NodeId(0), true);
        let r = pm
            .read_degraded(&p, &mut f, SimTime::ZERO, NodeId(3), LogicalAddr::new(a, 100), 11)
            .unwrap();
        assert_eq!(r.bytes, b"alpha-bytes");
        assert_eq!(r.source, DegradedSource::ParityRebuild { survivors: 2 });
    }

    #[test]
    fn degraded_read_routes_around_port_flap() {
        // Holder alive but unreachable (flap): the read must route through
        // the protection layer instead of failing.
        let (mut p, mut f, mut pm) = setup(4);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        pm.write(&mut p, LogicalAddr::new(a, 0), b"reroute").unwrap();
        f.set_port_down(NodeId(0), true);
        let r = pm
            .read_degraded(&p, &mut f, SimTime::ZERO, NodeId(3), LogicalAddr::new(a, 0), 7)
            .unwrap();
        assert_eq!(r.bytes, b"reroute");
        assert_eq!(r.source, DegradedSource::ParityRebuild { survivors: 2 });
        // Flap clears: reads come straight from the primary again.
        f.set_port_down(NodeId(0), false);
        let r = pm
            .read_degraded(&p, &mut f, SimTime::ZERO, NodeId(3), LogicalAddr::new(a, 0), 7)
            .unwrap();
        assert_eq!(r.source, DegradedSource::Primary);
    }

    #[test]
    fn independence_loss_bumps_labelled_counter() {
        // 3 servers, members on 0 and 1, parity on 2: after crashing 0 the
        // rebuild has to co-locate with a survivor. With telemetry
        // attached, that must bump
        // `placement.independence_lost{domain=host}` — a silent
        // blast-radius regression is the bug class this counter exists for.
        let (mut p, mut f, mut pm) = setup(3);
        p.attach_telemetry();
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        // Nothing lost yet: the counter is not even registered, keeping
        // pre-loss snapshots byte-identical to their historical digests.
        let before = p.telemetry().unwrap().snapshot();
        assert_eq!(
            before.counter("placement.independence_lost", &[("domain", "host")]),
            0
        );
        assert!(!before.to_json().contains("independence_lost"));

        let affected = p.crash_server(NodeId(0));
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        assert_eq!(report.degraded_placement, vec![a]);
        let snap = p.telemetry().unwrap().snapshot();
        assert_eq!(
            snap.counter("placement.independence_lost", &[("domain", "host")]),
            1
        );
    }

    #[test]
    fn rack_fallback_bumps_rack_labelled_counter() {
        use crate::placement::{DomainMap, PlacementPolicy};
        // Every server in one rack: domain-aware mirroring cannot cross
        // racks, so it degrades to host independence and says so at the
        // rack label.
        let (mut p, mut f, _) = setup(3);
        p.attach_telemetry();
        let mut pm =
            ProtectionManager::with_policy(PlacementPolicy::DomainAware(DomainMap::single_rack(3)));
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let snap = p.telemetry().unwrap().snapshot();
        assert_eq!(
            snap.counter("placement.independence_lost", &[("domain", "rack")]),
            1
        );
    }

    #[test]
    fn domain_aware_mirror_and_parity_cross_racks() {
        use crate::placement::{DomainMap, PlacementPolicy};
        // 2 racks × 2 hosts. Host-only placement would put the replica on
        // host 1 (most free, lowest id) — the same rack as the primary.
        let (mut p, mut f, _) = setup(4);
        let map = DomainMap::uniform(2, 2);
        let mut pm = ProtectionManager::with_policy(PlacementPolicy::DomainAware(map.clone()));
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let replica = pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let rhome = p.holder_of(replica).unwrap();
        assert!(
            !map.same_rack(NodeId(0), rhome),
            "replica must leave the primary's rack, landed on {rhome}"
        );

        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(2))).unwrap();
        let gid = pm
            .protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        let parity_home = p.holder_of(pm.parity_segment(gid).unwrap()).unwrap();
        // Members span both racks, so no rack-independent host exists; the
        // parity still refuses the members' hosts.
        assert!(parity_home != NodeId(1) && parity_home != NodeId(2));
    }

    #[test]
    fn correlated_mirror_loss_is_reported_not_promoted() {
        // Host-only placement puts the replica in the primary's failure
        // domain; when both die at once (a rack loss), recovery must
        // report the segment lost — never promote onto a dead server, and
        // never report the dead replica as a second loss.
        let (mut p, mut f, mut pm) = setup(4);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let replica = pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let rhome = p.holder_of(replica).unwrap();

        // Both hosts go down before any recovery runs.
        let mut affected0 = p.crash_server(NodeId(0));
        affected0.sort_unstable();
        let mut affected1 = p.crash_server(rhome);
        affected1.sort_unstable();

        let r0 = pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected0);
        assert_eq!(r0.lost, vec![seg], "correlated loss is loss");
        assert!(r0.promoted.is_empty());
        // The replica's own home pass has nothing left to report.
        let r1 = pm.recover(&mut p, &mut f, SimTime::ZERO, rhome, &affected1);
        assert!(r1.lost.is_empty(), "replica is not double-reported");
        assert!(!pm.is_protected(seg));
        assert!(matches!(
            p.read_bytes(LogicalAddr::new(seg, 0), 1),
            Err(PoolError::SegmentLost(_))
        ));
    }

    #[test]
    fn mirror_of_crashed_home_fails_without_leaking() {
        let (mut p, mut f, mut pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        p.crash_server(NodeId(0));
        let free_before: Vec<u64> = (1..3).map(|i| p.free_shared_frames(NodeId(i))).collect();
        assert!(matches!(
            pm.mirror(&mut p, &mut f, SimTime::ZERO, seg),
            Err(PoolError::ServerDown(NodeId(0)))
        ));
        let other = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        assert!(matches!(
            pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[seg, other]),
            Err(PoolError::ServerDown(NodeId(0)))
        ));
        let free_after: Vec<u64> = (1..3).map(|i| p.free_shared_frames(NodeId(i))).collect();
        assert_eq!(free_before[1], free_after[1], "no replica/parity leaked");
    }

    #[test]
    fn parity_write_updates_parity_incrementally() {
        let (mut p, mut f, mut pm) = setup(4);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b])
            .unwrap();
        // Overwrite a twice; parity must track the latest value.
        pm.write(&mut p, LogicalAddr::new(a, 0), b"v1").unwrap();
        pm.write(&mut p, LogicalAddr::new(a, 0), b"v2").unwrap();
        let affected = p.crash_server(NodeId(0));
        pm.recover(&mut p, &mut f, SimTime::ZERO, NodeId(0), &affected);
        assert_eq!(p.read_bytes(LogicalAddr::new(a, 0), 2).unwrap(), b"v2");
    }
}
