//! Pool-level telemetry: instruments, spans, and the rack roll-up.
//!
//! [`PoolTelemetry`] attaches to a [`LogicalPool`] and records every timed
//! access through cheap pre-registered handles, plus a span tree per
//! access (`access` → `dram` [+ `fabric`]) whose children partition the
//! root exactly — so the per-phase latency breakdown sums back to the
//! end-to-end access latency, nanosecond for nanosecond.
//!
//! [`rack_snapshot`] demonstrates the roll-up path: each node exports into
//! a fresh per-node registry, the fabric into another, and the snapshots
//! merge into one rack-level view with deterministic JSON and digest.

use crate::migrate::MigrationReport;
use crate::placement::DomainLevel;
use crate::pool::{LogicalPool, PoolAccess};
use lmp_fabric::{Fabric, MemOp, NodeId};
use lmp_qos::TenantId;
use lmp_sim::prelude::*;
use lmp_telemetry::prelude::*;
use std::collections::BTreeMap;

/// Telemetry state carried by a [`LogicalPool`] once attached.
#[derive(Debug)]
pub struct PoolTelemetry {
    registry: MetricRegistry,
    spans: SpanRecorder,
    ops_read: CounterId,
    ops_write: CounterId,
    acc_local: CounterId,
    acc_remote: CounterId,
    bytes_local: CounterId,
    bytes_remote: CounterId,
    faults: CounterId,
    latency_ns: CounterId,
    access_latency: HistogramId,
    migrations: CounterId,
    migration_bytes: CounterId,
    degraded_reads: CounterId,
    per_server_local: Vec<CounterId>,
    per_server_remote: Vec<CounterId>,
    /// `placement.independence_lost{domain}` — registered lazily on the
    /// first loss so snapshots taken before any degraded placement keep
    /// their historical byte-identical digests.
    independence_lost_rack: Option<CounterId>,
    independence_lost_host: Option<CounterId>,
    /// Live mirror of the `pool.access_latency` instrument. The registry's
    /// histograms are write-only until snapshot time, but hedged reads need
    /// a quantile *during* the run to derive deadlines — this mirror gives
    /// them one without changing the exported snapshot.
    access_latency_live: Histogram,
    /// `qos.admission_rejected{tenant}` — registered lazily on a tenant's
    /// first rejection so QoS-free runs keep their historical digests.
    admission_rejected: BTreeMap<u32, CounterId>,
    /// `qos.hedge.{issued,won,wasted}` — registered lazily on first use.
    hedge_issued: Option<CounterId>,
    hedge_won: Option<CounterId>,
    hedge_wasted: Option<CounterId>,
    /// `compute.stale_holder` — a shipped scan found its stripe living on a
    /// different node than the plan recorded (migration or post-crash
    /// promotion in between). Registered lazily so compute-free runs keep
    /// their historical digests.
    stale_holder: Option<CounterId>,
}

impl PoolTelemetry {
    /// Fresh telemetry for a pool of `servers` nodes.
    pub fn new(servers: u32) -> Self {
        let mut registry = MetricRegistry::new();
        let ops_read = registry.counter("pool.ops.read", &[]);
        let ops_write = registry.counter("pool.ops.write", &[]);
        let acc_local = registry.counter("pool.accesses.local", &[]);
        let acc_remote = registry.counter("pool.accesses.remote", &[]);
        let bytes_local = registry.counter("pool.bytes.local", &[]);
        let bytes_remote = registry.counter("pool.bytes.remote", &[]);
        let faults = registry.counter("pool.faults", &[]);
        let latency_ns = registry.counter("pool.latency_ns", &[]);
        let access_latency = registry.histogram("pool.access_latency", &[]);
        let migrations = registry.counter("pool.migrations", &[]);
        let migration_bytes = registry.counter("pool.migration_bytes", &[]);
        let degraded_reads = registry.counter("pool.degraded_reads", &[]);
        let mut per_server_local = Vec::with_capacity(servers as usize);
        let mut per_server_remote = Vec::with_capacity(servers as usize);
        for s in 0..servers {
            let label = s.to_string();
            per_server_local.push(
                registry.counter("pool.accesses.local.by_server", &[("server", &label)]),
            );
            per_server_remote.push(
                registry.counter("pool.accesses.remote.by_server", &[("server", &label)]),
            );
        }
        PoolTelemetry {
            registry,
            spans: SpanRecorder::new(),
            ops_read,
            ops_write,
            acc_local,
            acc_remote,
            bytes_local,
            bytes_remote,
            faults,
            latency_ns,
            access_latency,
            migrations,
            migration_bytes,
            degraded_reads,
            per_server_local,
            per_server_remote,
            independence_lost_rack: None,
            independence_lost_host: None,
            access_latency_live: Histogram::new(),
            admission_rejected: BTreeMap::new(),
            hedge_issued: None,
            hedge_won: None,
            hedge_wasted: None,
            stale_holder: None,
        }
    }

    /// Record one completed batch of pool accesses (a single op is a batch
    /// of one). `dram_done` is the instant the last DRAM run finished; the
    /// tail up to `complete` is attributed to the fabric (present only when
    /// the batch moved remote bytes — for all-local batches the two
    /// coincide). Per-op counters are bumped exactly as a one-by-one issue
    /// order would, but the span tree gets **one** root — `access` for a
    /// single op, `batch` for more — whose children partition the batch's
    /// end-to-end `[now, complete]` window.
    pub(crate) fn on_batch(
        &mut self,
        now: SimTime,
        requester: NodeId,
        ops: &[(MemOp, PoolAccess)],
        dram_done: SimTime,
        complete: SimTime,
    ) {
        let mut remote_bytes = 0;
        for (op, access) in ops {
            match op {
                MemOp::Read => self.registry.inc(self.ops_read),
                MemOp::Write => self.registry.inc(self.ops_write),
            }
            let remote = access.remote_bytes > 0;
            if remote {
                self.registry.inc(self.acc_remote);
                self.registry.inc(self.per_server_remote[requester.0 as usize]);
            } else {
                self.registry.inc(self.acc_local);
                self.registry.inc(self.per_server_local[requester.0 as usize]);
            }
            self.registry.add(self.bytes_local, access.local_bytes);
            self.registry.add(self.bytes_remote, access.remote_bytes);
            self.registry.add(self.faults, access.faults as u64);
            remote_bytes += access.remote_bytes;
        }
        // One latency sample per batch: the span roots below cover
        // [now, complete] once, and `latency_breakdown` promises its
        // self-times sum back to `latency_total_ns` exactly.
        let total = complete.duration_since(now);
        self.registry.add(self.latency_ns, total.as_nanos());
        self.registry.record_duration(self.access_latency, total);
        self.access_latency_live.record_duration(total);

        // Span tree: the children partition [now, complete] exactly.
        let name = if ops.len() == 1 { "access" } else { "batch" };
        let root = self.spans.span_start(name, None, now);
        self.spans.record_closed("dram", Some(root), now, dram_done);
        if remote_bytes > 0 {
            self.spans
                .record_closed("fabric", Some(root), dram_done, complete);
        }
        self.spans.span_end(root, complete);
    }

    /// Record one executed migration.
    pub(crate) fn on_migration(&mut self, report: &MigrationReport) {
        self.registry.inc(self.migrations);
        self.registry.add(self.migration_bytes, report.bytes);
    }

    /// Note a degraded-mode read served by a protection layer.
    pub fn note_degraded_read(&mut self) {
        self.registry.inc(self.degraded_reads);
    }

    /// Note a placement that had to surrender failure-domain independence
    /// at `level` (capacity forced co-location). Bumps the labelled
    /// `placement.independence_lost{domain}` counter so a silent
    /// blast-radius regression shows up in snapshots.
    pub fn note_independence_lost(&mut self, level: DomainLevel) {
        let slot = match level {
            DomainLevel::Rack => &mut self.independence_lost_rack,
            DomainLevel::Host => &mut self.independence_lost_host,
        };
        let id = *slot.get_or_insert_with(|| {
            self.registry
                .counter("placement.independence_lost", &[("domain", level.label())])
        });
        self.registry.inc(id);
    }

    /// Quantile `q` of the live access-latency distribution, or `None`
    /// before the first access. Hedged reads derive their per-tenant
    /// deadlines from this.
    pub fn access_latency_quantile(&self, q: f64) -> Option<SimDuration> {
        if self.access_latency_live.count() == 0 {
            None
        } else {
            Some(SimDuration::from_nanos(self.access_latency_live.quantile(q)))
        }
    }

    /// Note an admission-control rejection for `tenant`. Bumps the
    /// labelled `qos.admission_rejected{tenant}` counter, registered
    /// lazily so QoS-free snapshots keep their historical digests.
    pub fn note_admission_rejected(&mut self, tenant: TenantId) {
        let registry = &mut self.registry;
        let id = *self.admission_rejected.entry(tenant.0).or_insert_with(|| {
            registry.counter("qos.admission_rejected", &[("tenant", &tenant.0.to_string())])
        });
        self.registry.inc(id);
    }

    /// Note a hedged read issued to the protection twin.
    pub fn note_hedge_issued(&mut self) {
        let id = *self
            .hedge_issued
            .get_or_insert_with(|| self.registry.counter("qos.hedge.issued", &[]));
        self.registry.inc(id);
    }

    /// Note a hedge that beat its primary.
    pub fn note_hedge_won(&mut self) {
        let id = *self
            .hedge_won
            .get_or_insert_with(|| self.registry.counter("qos.hedge.won", &[]));
        self.registry.inc(id);
    }

    /// Note a hedge whose primary responded first (duplicated work).
    pub fn note_hedge_wasted(&mut self) {
        let id = *self
            .hedge_wasted
            .get_or_insert_with(|| self.registry.counter("qos.hedge.wasted", &[]));
        self.registry.inc(id);
    }

    /// Note a compute-shipping holder relocation: the live pool mapping
    /// disagreed with the holder a plan (or a `DistVector`) recorded.
    pub fn note_stale_holder(&mut self) {
        let id = *self
            .stale_holder
            .get_or_insert_with(|| self.registry.counter("compute.stale_holder", &[]));
        self.registry.inc(id);
    }

    /// Total holder relocations observed by compute shipping so far.
    pub fn stale_holders(&self) -> u64 {
        self.stale_holder
            .map(|id| self.registry.counter_value(id))
            .unwrap_or(0)
    }

    /// The underlying registry.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The span recorder (e.g. to clear between measurement windows).
    pub fn spans_mut(&mut self) -> &mut SpanRecorder {
        &mut self.spans
    }

    /// Per-phase self time (ns), flamegraph style: `access` holds only
    /// time not covered by its children, so
    /// `dram + fabric + access == latency_total_ns`.
    pub fn latency_breakdown(&self) -> BTreeMap<&'static str, u64> {
        self.spans.self_time_by_name()
    }

    /// Sum of end-to-end access latencies (ns) — equals the span roots.
    pub fn latency_total_ns(&self) -> u64 {
        self.registry.counter_value(self.latency_ns)
    }

    /// Fraction of accesses that resolved locally (1.0 when idle).
    pub fn local_access_ratio(&self) -> f64 {
        let local = self.registry.counter_value(self.acc_local);
        let remote = self.registry.counter_value(self.acc_remote);
        if local + remote == 0 {
            1.0
        } else {
            local as f64 / (local + remote) as f64
        }
    }

    /// Freeze the pool instruments into a snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.registry.snapshot()
    }
}

/// Roll the whole rack up into one snapshot: every node's memory system,
/// the fabric, and the pool's own instruments, merged in deterministic
/// order. Fresh registries are used per exporter so repeated calls never
/// double count.
pub fn rack_snapshot(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    now: SimTime,
) -> TelemetrySnapshot {
    let mut rack = TelemetrySnapshot::new();
    for s in 0..pool.servers() {
        let mut reg = MetricRegistry::new();
        let label = s.to_string();
        pool.node_mut(NodeId(s)).export_into(now, &label, &mut reg);
        rack.merge(&reg.snapshot());
    }
    let mut freg = MetricRegistry::new();
    fabric.export_into(now, &mut freg);
    rack.merge(&freg.snapshot());
    if let Some(t) = pool.telemetry() {
        rack.merge(&t.snapshot());
    }
    rack
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LogicalAddr;
    use crate::pool::{Placement, PoolConfig};
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 3,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 8 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        let mut pool = LogicalPool::new(cfg);
        pool.attach_telemetry();
        (pool, Fabric::new(LinkProfile::link1(), 3))
    }

    #[test]
    fn access_instruments_and_spans_agree() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, 0);
        p.access(&mut f, SimTime::ZERO, NodeId(0), addr, 64, MemOp::Read)
            .unwrap();
        p.access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        p.access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Write)
            .unwrap();
        let t = p.telemetry().unwrap();
        let snap = t.snapshot();
        assert_eq!(snap.counter("pool.ops.read", &[]), 2);
        assert_eq!(snap.counter("pool.ops.write", &[]), 1);
        assert_eq!(snap.counter("pool.accesses.local", &[]), 1);
        assert_eq!(snap.counter("pool.accesses.remote", &[]), 2);
        assert_eq!(
            snap.counter("pool.accesses.remote.by_server", &[("server", "1")]),
            2
        );
        // Span self-times partition every access's end-to-end latency.
        let breakdown = t.latency_breakdown();
        let total: u64 = breakdown.values().sum();
        assert_eq!(total, t.latency_total_ns());
        assert!(breakdown["fabric"] > 0, "remote accesses have fabric time");
    }

    #[test]
    fn rack_snapshot_merges_all_layers_deterministically() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, 0);
        for _ in 0..5 {
            p.access(&mut f, SimTime::ZERO, NodeId(2), addr, 256, MemOp::Read)
                .unwrap();
        }
        let now = SimTime::from_nanos(10_000);
        let a = rack_snapshot(&mut p, &mut f, now);
        let b = rack_snapshot(&mut p, &mut f, now);
        assert_eq!(a.to_json(), b.to_json(), "export must not double count");
        assert_eq!(a.counter("fabric.reads", &[]), 5);
        assert_eq!(a.counter_total("mem.accesses.remote"), 5);
        assert_eq!(a.counter("pool.accesses.remote", &[]), 5);
    }

    #[test]
    fn migration_is_counted() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        crate::migrate::migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(1)).unwrap();
        let snap = p.telemetry().unwrap().snapshot();
        assert_eq!(snap.counter("pool.migrations", &[]), 1);
        assert_eq!(snap.counter("pool.migration_bytes", &[]), FRAME_BYTES);
    }
}
