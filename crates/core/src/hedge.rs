//! Hedged reads: tail-latency QoS for remote accesses.
//!
//! A remote read *predicted* to miss its deadline — the prediction chains
//! the fabric's live `free_at` horizons, charging nothing — is issued as a
//! race: the requester asks both the primary holder and the segment's
//! mirror twin for the same bytes, the switch forwards whichever payload
//! arrives first, and the loser is **cancelled at the switch**
//! ([`Fabric::try_read_hedged`]). Cancellation is what makes hedging pay:
//! both holders spend transmit bandwidth (the honest price of the
//! duplicate), but only the winner occupies the requester's down wire, so
//! the duplicate can actually pass a primary stuck behind a backlog. An
//! event-driven caller cancels the loser's completion event at the
//! adjudication instant (`lmp_sim::engine::Engine::cancel`).
//!
//! The deadline is derived from the pool's *live* access-latency
//! distribution — hedging targets the tail observed in this run, not a
//! hard-coded constant — with a configurable floor so an idle pool never
//! hedges trivially fast reads. Only mirror twins serve hedges: an XOR
//! parity group would cost k duplicate reads, not one. Raced reads are
//! protection-layer traffic like degraded reads: they charge the fabric
//! but not the pool's per-access counters, and they do not feed the
//! latency distribution the deadline comes from.
//!
//! The `qos.hedge.{issued,won,wasted}` counters account for every
//! decision, and `issued == won + wasted` always holds.

use crate::addr::LogicalAddr;
use crate::failure::{DegradedRead, DegradedSource, ProtectionManager};
use crate::pool::{LogicalPool, PoolError};
use lmp_fabric::{Band, Fabric, MemOp, NodeId};
use lmp_sim::prelude::*;

/// When to hedge and where the deadline comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// Deadline floor: a read predicted to finish within this is never
    /// hedged, regardless of what the latency distribution says.
    pub floor: SimDuration,
    /// Quantile of the live access-latency distribution feeding the
    /// deadline (e.g. `0.99` hedges reads slower than the observed p99).
    pub quantile: f64,
    /// Deadline = `max(floor, quantile_latency × multiplier)`.
    pub multiplier: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            floor: SimDuration::from_micros(2),
            quantile: 0.99,
            multiplier: 1.0,
        }
    }
}

impl HedgeConfig {
    /// The deadline this policy derives from `pool`'s live telemetry:
    /// `quantile_latency × multiplier`, floored at [`HedgeConfig::floor`].
    /// Before any access is recorded (or without telemetry attached) the
    /// floor alone is the deadline.
    pub fn deadline(&self, pool: &LogicalPool) -> SimDuration {
        let observed = pool
            .telemetry()
            .and_then(|t| t.access_latency_quantile(self.quantile));
        match observed {
            Some(d) => {
                let scaled = d.mul_f64(self.multiplier);
                if scaled > self.floor {
                    scaled
                } else {
                    self.floor
                }
            }
            None => self.floor,
        }
    }
}

/// Which leg of a hedged read responded first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HedgeWinner {
    /// The original read beat the hedge (the hedge was wasted work).
    Primary,
    /// The duplicate served the caller first.
    Hedge,
}

/// Outcome of a hedged read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HedgeOutcome {
    /// No duplicate was issued: the read was local, or its predicted
    /// completion was inside the deadline.
    NotNeeded {
        /// When the (sole) primary read completes.
        complete: SimTime,
    },
    /// Primary and hedge raced; the switch forwarded the first payload to
    /// arrive and cancelled the loser. The caller cancels the loser's
    /// completion event at [`HedgeOutcome::loser_done`]
    /// (`lmp_sim::engine::Engine::cancel`).
    Raced {
        /// The leg that reached the switch first.
        winner: HedgeWinner,
        /// When the winning payload is fully delivered at the requester.
        complete: SimTime,
        /// When the primary leg left the race: its payload's arrival at
        /// the switch, or — when the twin was local and the remote read
        /// was cancelled before transmitting — its predicted completion.
        primary_done: SimTime,
        /// When the hedge leg left the race (its payload's arrival at the
        /// switch; `now` for a local twin).
        hedge_done: SimTime,
        /// Where the hedge leg's bytes came from (always the mirror twin).
        hedge_source: DegradedSource,
    },
    /// The deadline demanded a hedge but the segment has no live mirror
    /// twin; the slow primary serves alone and the attempt counts as
    /// wasted.
    NoTwin {
        /// When the primary read completes.
        complete: SimTime,
    },
    /// The primary failed outright (crashed holder or dead port); the
    /// full degraded path — mirror twin, or the XOR of the surviving
    /// parity group — served the read instead.
    PrimaryFailed {
        /// The degraded read that served the caller.
        read: DegradedRead,
    },
}

impl HedgeOutcome {
    /// When the caller's bytes arrive, whichever leg served them.
    pub fn complete(&self) -> SimTime {
        match self {
            HedgeOutcome::NotNeeded { complete }
            | HedgeOutcome::Raced { complete, .. }
            | HedgeOutcome::NoTwin { complete } => *complete,
            HedgeOutcome::PrimaryFailed { read } => read.complete,
        }
    }

    /// The instant the losing leg of a race was cancelled, if any — the
    /// event an engine-driven caller cancels.
    pub fn loser_done(&self) -> Option<SimTime> {
        match self {
            HedgeOutcome::Raced {
                winner,
                primary_done,
                hedge_done,
                ..
            } => Some(match winner {
                HedgeWinner::Primary => *hedge_done,
                HedgeWinner::Hedge => *primary_done,
            }),
            _ => None,
        }
    }
}

/// The unhedged service ladder: an ordinary access, falling to the full
/// degraded path (twin, then XOR rebuild) when the primary is lost.
fn serve_unhedged(
    pool: &mut LogicalPool,
    pm: &ProtectionManager,
    fabric: &mut Fabric,
    now: SimTime,
    requester: NodeId,
    addr: LogicalAddr,
    len: u64,
) -> Result<HedgeOutcome, PoolError> {
    match pool.access(fabric, now, requester, addr, len, MemOp::Read) {
        Ok(a) => Ok(HedgeOutcome::NotNeeded {
            complete: a.complete,
        }),
        Err(PoolError::SegmentLost(_) | PoolError::ServerDown(_)) => {
            let read = pm.read_degraded(pool, fabric, now, requester, addr, len)?;
            Ok(HedgeOutcome::PrimaryFailed { read })
        }
        Err(e) => Err(e),
    }
}

/// Issue `requester`'s read of `len` bytes at `addr`, hedging it through
/// the mirror twin when the fabric's plan-time estimate
/// ([`Fabric::estimate_read_completion`]) exceeds the deadline
/// [`HedgeConfig::deadline`] derives from live telemetry.
///
/// Failure ladder: a local, unknown, or unreachable primary never races —
/// the ordinary access serves it, or the full degraded path masks the
/// crash. A hedge that cannot be placed (no live twin on a third node)
/// leaves the slow primary serving alone. Raced reads ride
/// [`Band::High`]: like heartbeat probes, a hedge is latency-critical
/// traffic that must not queue behind the very flood it is dodging.
#[allow(clippy::too_many_arguments)]
pub fn hedged_read(
    pool: &mut LogicalPool,
    pm: &ProtectionManager,
    fabric: &mut Fabric,
    now: SimTime,
    requester: NodeId,
    addr: LogicalAddr,
    len: u64,
    cfg: &HedgeConfig,
) -> Result<HedgeOutcome, PoolError> {
    let seg = addr.segment;
    // Locate the primary copy and predict its completion without touching
    // any wire. A missing/local/dead primary has nothing to race.
    let predicted = pool
        .holder_of(seg)
        .filter(|&h| !pool.node(h).is_failed())
        .and_then(|h| {
            fabric
                .estimate_read_completion(now, requester, h, len)
                .map(|done| (h, done))
        });
    let Some((holder, predicted)) = predicted else {
        return serve_unhedged(pool, pm, fabric, now, requester, addr, len);
    };
    if predicted.saturating_duration_since(now) <= cfg.deadline(pool) {
        return serve_unhedged(pool, pm, fabric, now, requester, addr, len);
    }

    // Predicted past the deadline: place the duplicate on the mirror twin.
    // The race primitive validates nothing about the pool, so check the
    // range here — a bad range must fail before any wire is charged.
    let seg_len = pool.segment_len(seg).ok_or(PoolError::UnknownSegment(seg))?;
    let end = addr.offset + len;
    if end > seg_len {
        return Err(PoolError::OutOfBounds {
            segment: seg,
            end,
            len: seg_len,
        });
    }
    let twin_home = pm
        .mirror_twin(seg)
        .and_then(|twin| pool.holder_of(twin))
        .filter(|&h| h != holder && !pool.node(h).is_failed() && !fabric.is_port_down(h));
    let Some(twin_home) = twin_home else {
        // No live twin: nothing to race. The slow primary serves, and the
        // hedge decision was pure waste.
        let a = pool.access(fabric, now, requester, addr, len, MemOp::Read)?;
        if let Some(t) = pool.telemetry_mut() {
            t.note_hedge_issued();
            t.note_hedge_wasted();
        }
        return Ok(HedgeOutcome::NoTwin {
            complete: a.complete,
        });
    };
    if twin_home == requester {
        // The twin lives on the requester itself: the duplicate is a local
        // DRAM read, so the remote primary is cancelled at request time
        // and never transmits. (The hedge recovers the locality the
        // placement already paid for.)
        if let Some(t) = pool.telemetry_mut() {
            t.note_hedge_issued();
            t.note_hedge_won();
        }
        return Ok(HedgeOutcome::Raced {
            winner: HedgeWinner::Hedge,
            complete: now,
            primary_done: predicted,
            hedge_done: now,
            hedge_source: DegradedSource::MirrorReplica,
        });
    }
    let race = fabric
        .try_read_hedged(now, requester, holder, twin_home, len, Band::High)
        .map_err(|e| match e.node() {
            Some(n) => PoolError::ServerDown(n),
            None => PoolError::Internal("hedge race rejected pre-checked legs"),
        })?;
    let winner = if race.primary_won {
        HedgeWinner::Primary
    } else {
        HedgeWinner::Hedge
    };
    if let Some(t) = pool.telemetry_mut() {
        t.note_hedge_issued();
        match winner {
            HedgeWinner::Hedge => t.note_hedge_won(),
            HedgeWinner::Primary => t.note_hedge_wasted(),
        }
    }
    Ok(HedgeOutcome::Raced {
        winner,
        complete: race.complete,
        primary_done: race.primary_at_switch,
        hedge_done: race.hedge_at_switch,
        hedge_source: DegradedSource::MirrorReplica,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Placement, PoolConfig};
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup(servers: u32) -> (LogicalPool, Fabric, ProtectionManager) {
        let cfg = PoolConfig {
            servers,
            capacity_per_server: 32 * FRAME_BYTES,
            shared_per_server: 16 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        let mut pool = LogicalPool::new(cfg);
        pool.attach_telemetry();
        (
            pool,
            Fabric::new(LinkProfile::link1(), servers),
            ProtectionManager::new(),
        )
    }

    fn counter(pool: &LogicalPool, name: &str) -> u64 {
        pool.telemetry().map_or(0, |t| t.snapshot().counter(name, &[]))
    }

    #[test]
    fn fast_read_is_not_hedged() {
        let (mut p, mut f, pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let r = hedged_read(
            &mut p,
            &pm,
            &mut f,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            64,
            &HedgeConfig::default(),
        )
        .unwrap();
        assert!(matches!(r, HedgeOutcome::NotNeeded { .. }));
        // A fast *remote* read is also served unhedged: the idle-fabric
        // estimate lands well inside the default 2 µs floor.
        let r = hedged_read(
            &mut p,
            &pm,
            &mut f,
            SimTime::ZERO,
            NodeId(1),
            LogicalAddr::new(seg, 0),
            4096,
            &HedgeConfig::default(),
        )
        .unwrap();
        assert!(matches!(r, HedgeOutcome::NotNeeded { .. }));
        assert_eq!(counter(&p, "qos.hedge.issued"), 0);
        // The counter is not even registered: digests of hedge-free runs
        // stay byte-identical.
        assert!(!p.telemetry().unwrap().snapshot().to_json().contains("hedge"));
    }

    #[test]
    fn hedge_wins_past_a_congested_primary_link() {
        let (mut p, mut f, mut pm) = setup(4);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let twin_home = p.holder_of(pm.replica(seg).unwrap()).unwrap();
        assert_ne!(twin_home, NodeId(1));
        // ~95 µs of unrelated traffic already leaving the primary's port.
        f.try_read(SimTime::ZERO, NodeId(3), NodeId(1), 2_000_000).unwrap();
        let r = hedged_read(
            &mut p,
            &pm,
            &mut f,
            SimTime::ZERO,
            NodeId(2),
            LogicalAddr::new(seg, 0),
            4096,
            &HedgeConfig::default(),
        )
        .unwrap();
        match r {
            HedgeOutcome::Raced {
                winner,
                complete,
                primary_done,
                hedge_done,
                hedge_source,
            } => {
                assert_eq!(winner, HedgeWinner::Hedge);
                assert_eq!(hedge_source, DegradedSource::MirrorReplica);
                assert!(hedge_done < primary_done, "hedge must dodge the backlog");
                // Delivery happens after the switch forwards the winner...
                assert!(complete > hedge_done);
                // ...and still beats the primary's own switch arrival.
                assert!(complete < primary_done, "the race must pay off");
                assert_eq!(r.loser_done(), Some(primary_done));
            }
            other => panic!("expected a won race, got {other:?}"),
        }
        assert_eq!(counter(&p, "qos.hedge.issued"), 1);
        assert_eq!(counter(&p, "qos.hedge.won"), 1);
        assert_eq!(counter(&p, "qos.hedge.wasted"), 0);
    }

    #[test]
    fn primary_win_counts_the_hedge_as_wasted() {
        let (mut p, mut f, mut pm) = setup(4);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let twin_home = p.holder_of(pm.replica(seg).unwrap()).unwrap();
        // This time the *twin's* port drowns in traffic.
        f.try_read(SimTime::ZERO, NodeId(3), twin_home, 2_000_000).unwrap();
        // A floor of 1 ns forces a hedge on any remote read.
        let cfg = HedgeConfig {
            floor: SimDuration::from_nanos(1),
            ..HedgeConfig::default()
        };
        let r = hedged_read(
            &mut p,
            &pm,
            &mut f,
            SimTime::ZERO,
            NodeId(2),
            LogicalAddr::new(seg, 0),
            4096,
            &cfg,
        )
        .unwrap();
        match r {
            HedgeOutcome::Raced {
                winner,
                complete,
                primary_done,
                hedge_done,
                ..
            } => {
                assert_eq!(winner, HedgeWinner::Primary);
                assert!(primary_done < hedge_done);
                assert!(complete > primary_done, "delivery follows adjudication");
                // The loser was cancelled when its payload hit the switch.
                assert_eq!(r.loser_done(), Some(hedge_done));
            }
            other => panic!("expected a lost race, got {other:?}"),
        }
        assert_eq!(counter(&p, "qos.hedge.issued"), 1);
        assert_eq!(counter(&p, "qos.hedge.wasted"), 1);
        assert_eq!(counter(&p, "qos.hedge.won"), 0);
    }

    #[test]
    fn local_twin_wins_without_transmitting() {
        let (mut p, mut f, mut pm) = setup(4);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.mirror(&mut p, &mut f, SimTime::ZERO, seg).unwrap();
        let twin_home = p.holder_of(pm.replica(seg).unwrap()).unwrap();
        // Congest the primary so the deadline demands a hedge...
        f.try_read(SimTime::ZERO, NodeId(3), NodeId(1), 2_000_000).unwrap();
        // ...and read from the twin's own home: the duplicate is a local
        // DRAM read, so the race is over before it starts.
        let r = hedged_read(
            &mut p,
            &pm,
            &mut f,
            SimTime::ZERO,
            twin_home,
            LogicalAddr::new(seg, 0),
            4096,
            &HedgeConfig::default(),
        )
        .unwrap();
        match r {
            HedgeOutcome::Raced {
                winner,
                complete,
                primary_done,
                hedge_done,
                ..
            } => {
                assert_eq!(winner, HedgeWinner::Hedge);
                assert_eq!(complete, SimTime::ZERO);
                assert_eq!(hedge_done, SimTime::ZERO);
                assert!(primary_done > SimTime::ZERO, "cancelled prediction");
            }
            other => panic!("expected an instant win, got {other:?}"),
        }
        assert_eq!(counter(&p, "qos.hedge.issued"), 1);
        assert_eq!(counter(&p, "qos.hedge.won"), 1);
    }

    #[test]
    fn crashed_primary_falls_to_degraded_xor() {
        let (mut p, mut f, mut pm) = setup(4);
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &[a, b]).unwrap();
        pm.write(&mut p, LogicalAddr::new(a, 10), b"hedge-me").unwrap();
        p.crash_server(NodeId(0));
        f.set_port_down(NodeId(0), true);
        let r = hedged_read(
            &mut p,
            &pm,
            &mut f,
            SimTime::ZERO,
            NodeId(3),
            LogicalAddr::new(a, 10),
            8,
            &HedgeConfig::default(),
        )
        .unwrap();
        match r {
            HedgeOutcome::PrimaryFailed { read } => {
                assert_eq!(read.bytes, b"hedge-me");
                assert_eq!(read.source, DegradedSource::ParityRebuild { survivors: 2 });
            }
            other => panic!("expected the degraded ladder, got {other:?}"),
        }
    }

    #[test]
    fn unprotected_segment_cannot_be_hedged() {
        let (mut p, mut f, pm) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let cfg = HedgeConfig {
            floor: SimDuration::from_nanos(1),
            ..HedgeConfig::default()
        };
        let r = hedged_read(
            &mut p,
            &pm,
            &mut f,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            4096,
            &cfg,
        )
        .unwrap();
        assert!(matches!(r, HedgeOutcome::NoTwin { .. }));
        assert!(r.loser_done().is_none());
        assert_eq!(counter(&p, "qos.hedge.issued"), 1);
        assert_eq!(counter(&p, "qos.hedge.wasted"), 1);
    }

    #[test]
    fn deadline_tracks_the_live_distribution() {
        let (mut p, mut f, _) = setup(3);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let cfg = HedgeConfig::default();
        assert_eq!(cfg.deadline(&p), cfg.floor, "no samples: floor only");
        for _ in 0..50 {
            p.access(
                &mut f,
                SimTime::ZERO,
                NodeId(0),
                LogicalAddr::new(seg, 0),
                4096,
                MemOp::Read,
            )
            .unwrap();
        }
        let d = cfg.deadline(&p);
        let q = p
            .telemetry()
            .unwrap()
            .access_latency_quantile(cfg.quantile)
            .unwrap();
        assert!(d >= cfg.floor);
        assert!(d >= q, "multiplier 1.0: deadline at least the quantile");
        // A 10× multiplier scales the deadline with the distribution.
        let wide = HedgeConfig {
            multiplier: 10.0,
            ..cfg
        };
        assert_eq!(wide.deadline(&p), q.mul_f64(10.0).max(cfg.floor));
    }
}
