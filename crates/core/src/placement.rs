//! Failure domains and domain-aware placement.
//!
//! At datacenter scale the correlated version of a server crash is a whole
//! rack: a ToR switch or PDU loss downs every host behind it at once.
//! Host-level exclusion ("a replica never lives on its primary's server")
//! cannot mask that — both copies can sit behind the same ToR. This module
//! makes the failure-domain hierarchy explicit:
//!
//! ```text
//! datacenter ─┬─ rack 0 ─┬─ host 0
//!             │          ├─ host 1
//!             │          └─ host 2
//!             └─ rack 1 ─┬─ host 3
//!                        └─ …
//! ```
//!
//! * [`DomainMap`] — which rack each host belongs to.
//! * [`PlacementPolicy`] — where a replica, parity segment, or rebuilt
//!   segment may land. `HostOnly` reproduces the original
//!   `pick_other_server` exclusion byte for byte; `DomainAware` first
//!   excludes every host sharing a rack with an excluded host, and only
//!   when capacity forces it falls back toward weaker independence —
//!   **loudly**, via [`PlacementDecision::lost`], never silently.
//!
//! The policy itself never panics and never errors: impossible placement is
//! `None`, weakened placement carries the [`DomainLevel`] that was given up,
//! and callers (the protection manager) turn those into recoverable
//! `PoolError`s and telemetry bumps.

use crate::pool::LogicalPool;
use lmp_fabric::NodeId;
use lmp_mem::FRAME_BYTES;

/// Which rack every host belongs to: the explicit (datacenter → rack →
/// host) hierarchy, host-indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainMap {
    /// `rack_of[h]` = rack of host `h`.
    rack_of: Vec<u32>,
    racks: u32,
}

impl DomainMap {
    /// Every host in one rack — the degenerate single-rack datacenter,
    /// under which `DomainAware` placement collapses to `HostOnly`
    /// semantics (rack exclusion would exclude everything, so the fallback
    /// tier always decides).
    pub fn single_rack(hosts: u32) -> Self {
        DomainMap {
            rack_of: vec![0; hosts as usize],
            racks: 1,
        }
    }

    /// `racks × hosts_per_rack` hosts, rack-major: host `h` lives in rack
    /// `h / hosts_per_rack`. Zero sizes are clamped to one — an empty
    /// hierarchy is never useful and this module must not panic.
    pub fn uniform(racks: u32, hosts_per_rack: u32) -> Self {
        let racks = racks.max(1);
        let per = hosts_per_rack.max(1);
        DomainMap {
            rack_of: (0..racks * per).map(|h| h / per).collect(),
            racks,
        }
    }

    /// An explicit host → rack assignment (racks may be ragged). The rack
    /// count is `max(assignment) + 1`; an empty assignment becomes the
    /// one-host single rack.
    pub fn from_assignment(rack_of: Vec<u32>) -> Self {
        if rack_of.is_empty() {
            return DomainMap::single_rack(1);
        }
        let racks = rack_of.iter().copied().max().unwrap_or(0).saturating_add(1);
        DomainMap { rack_of, racks }
    }

    /// Total hosts covered by the map.
    pub fn hosts(&self) -> u32 {
        self.rack_of.len() as u32
    }

    /// Number of racks.
    pub fn racks(&self) -> u32 {
        self.racks
    }

    /// The rack `node` belongs to. Hosts beyond the map (a pool larger
    /// than the hierarchy describes) fold into rack 0 rather than panic.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        self.rack_of.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// All hosts in `rack`, ascending.
    pub fn hosts_in(&self, rack: u32) -> Vec<NodeId> {
        self.rack_of
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == rack)
            .map(|(h, _)| NodeId(h as u32))
            .collect()
    }

    /// Whether two hosts share a failure domain above the host level.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }
}

/// A level of the failure-domain hierarchy that a placement had to give
/// up. Ordered by blast radius: losing rack independence is survivable by
/// a host crash but not a rack loss; losing host independence means one
/// host crash can take multiple group members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DomainLevel {
    /// Members share a rack (but still distinct hosts).
    Rack,
    /// Members share a host — the weakest placement that still holds data.
    Host,
}

impl DomainLevel {
    /// Label used for the `placement.independence_lost{domain}` counter.
    pub fn label(&self) -> &'static str {
        match self {
            DomainLevel::Rack => "rack",
            DomainLevel::Host => "host",
        }
    }
}

/// Where a member may land, and what independence (if any) the placement
/// gave up to exist at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementDecision {
    /// The chosen server.
    pub target: NodeId,
    /// `None` = full independence at this policy's strongest level;
    /// `Some(level)` = capacity forced co-location within `level`.
    pub lost: Option<DomainLevel>,
}

/// How mirror/parity members and recovery targets are placed relative to
/// the segments they protect.
#[derive(Debug, Clone, Default)]
pub enum PlacementPolicy {
    /// The original behavior: exclude exactly the listed hosts. Recovery
    /// may fall back to *any* live host (reported as lost host-level
    /// independence), initial protection may not.
    #[default]
    HostOnly,
    /// Exclude every host that shares a rack with a listed host; fall back
    /// tier by tier (rack independence, then host independence) only when
    /// capacity forces it, reporting each surrendered level.
    DomainAware(DomainMap),
}

impl PlacementPolicy {
    /// The domain map, when the policy carries one.
    pub fn domains(&self) -> Option<&DomainMap> {
        match self {
            PlacementPolicy::HostOnly => None,
            PlacementPolicy::DomainAware(d) => Some(d),
        }
    }

    /// Expand `exclude` to the full blast radius this policy defends
    /// against: for `DomainAware`, every host sharing a rack with an
    /// excluded host.
    fn expanded_exclude(&self, pool: &LogicalPool, exclude: &[NodeId]) -> Vec<NodeId> {
        match self {
            PlacementPolicy::HostOnly => exclude.to_vec(),
            PlacementPolicy::DomainAware(map) => (0..pool.servers())
                .map(NodeId)
                .filter(|n| exclude.iter().any(|e| map.same_rack(*n, *e)))
                .collect(),
        }
    }

    /// Place a *new* protection member (mirror replica or parity segment)
    /// of `len` bytes, excluding the group's existing homes. `None` means
    /// no live server can take it even with independence surrendered.
    pub fn place_member(
        &self,
        pool: &LogicalPool,
        len: u64,
        exclude: &[NodeId],
    ) -> Option<PlacementDecision> {
        match self {
            // Original semantics: host exclusion, no fallback — initial
            // protection never silently co-locates.
            PlacementPolicy::HostOnly => pick(pool, len, exclude).map(|target| {
                PlacementDecision {
                    target,
                    lost: None,
                }
            }),
            PlacementPolicy::DomainAware(_) => {
                let wide = self.expanded_exclude(pool, exclude);
                if let Some(target) = pick(pool, len, &wide) {
                    return Some(PlacementDecision { target, lost: None });
                }
                // Not enough racks (or rack capacity): degrade to host
                // independence, loudly.
                pick(pool, len, exclude).map(|target| PlacementDecision {
                    target,
                    lost: Some(DomainLevel::Rack),
                })
            }
        }
    }

    /// Place a *rebuilt* segment during recovery, excluding the surviving
    /// group homes. Unlike [`Self::place_member`], recovery prefers
    /// degraded placement over data loss, so the final fallback accepts
    /// co-location with a survivor (lost host-level independence).
    pub fn place_recovery(
        &self,
        pool: &LogicalPool,
        len: u64,
        exclude: &[NodeId],
    ) -> Option<PlacementDecision> {
        match self {
            PlacementPolicy::HostOnly => {
                if let Some(target) = pick(pool, len, exclude) {
                    return Some(PlacementDecision { target, lost: None });
                }
                pick(pool, len, &[]).map(|target| PlacementDecision {
                    target,
                    lost: Some(DomainLevel::Host),
                })
            }
            PlacementPolicy::DomainAware(_) => {
                let wide = self.expanded_exclude(pool, exclude);
                if let Some(target) = pick(pool, len, &wide) {
                    return Some(PlacementDecision { target, lost: None });
                }
                if let Some(target) = pick(pool, len, exclude) {
                    return Some(PlacementDecision {
                        target,
                        lost: Some(DomainLevel::Rack),
                    });
                }
                pick(pool, len, &[]).map(|target| PlacementDecision {
                    target,
                    lost: Some(DomainLevel::Host),
                })
            }
        }
    }
}

/// The placement primitive every tier shares — the original
/// `pick_other_server`: among live, non-excluded servers with room for
/// `len` bytes of shared frames, the one with the most free shared frames;
/// ties go to the lowest id.
pub(crate) fn pick(pool: &LogicalPool, len: u64, exclude: &[NodeId]) -> Option<NodeId> {
    let frames = len.div_ceil(FRAME_BYTES);
    (0..pool.servers())
        .map(NodeId)
        .filter(|n| !exclude.contains(n) && !pool.node(*n).is_failed())
        .filter(|n| pool.free_shared_frames(*n) >= frames)
        .max_by_key(|n| (pool.free_shared_frames(*n), std::cmp::Reverse(n.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Placement, PoolConfig};
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn pool(servers: u32) -> LogicalPool {
        LogicalPool::new(PoolConfig {
            servers,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        })
    }

    #[test]
    fn domain_map_shapes() {
        let m = DomainMap::uniform(3, 4);
        assert_eq!(m.hosts(), 12);
        assert_eq!(m.racks(), 3);
        assert_eq!(m.rack_of(NodeId(0)), 0);
        assert_eq!(m.rack_of(NodeId(7)), 1);
        assert_eq!(m.rack_of(NodeId(11)), 2);
        // Out-of-map hosts fold to rack 0 instead of panicking.
        assert_eq!(m.rack_of(NodeId(99)), 0);
        assert_eq!(
            m.hosts_in(1),
            vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]
        );
        assert!(m.same_rack(NodeId(4), NodeId(7)));
        assert!(!m.same_rack(NodeId(3), NodeId(4)));

        let ragged = DomainMap::from_assignment(vec![0, 0, 1]);
        assert_eq!(ragged.racks(), 2);
        assert_eq!(ragged.hosts_in(1), vec![NodeId(2)]);
        assert_eq!(DomainMap::from_assignment(Vec::new()).hosts(), 1);

        // Clamped, never panicking, never empty.
        assert_eq!(DomainMap::uniform(0, 0).hosts(), 1);
    }

    #[test]
    fn host_only_matches_original_pick_semantics() {
        let p = pool(4);
        let policy = PlacementPolicy::HostOnly;
        // Most-free wins; ties go to the lowest id — all free, exclude 0.
        let d = policy
            .place_member(&p, FRAME_BYTES, &[NodeId(0)])
            .unwrap();
        assert_eq!(d.target, NodeId(1));
        assert_eq!(d.lost, None);
        assert_eq!(
            pick(&p, FRAME_BYTES, &[NodeId(0)]),
            Some(NodeId(1)),
            "policy and primitive agree"
        );
    }

    #[test]
    fn domain_aware_leaves_the_excluded_rack() {
        let p = pool(6);
        let map = DomainMap::uniform(3, 2); // racks {0,1} {2,3} {4,5}
        let policy = PlacementPolicy::DomainAware(map);
        // Excluding host 0 must exclude its rack-mate host 1 too.
        let d = policy
            .place_member(&p, FRAME_BYTES, &[NodeId(0)])
            .unwrap();
        assert_eq!(d.target, NodeId(2));
        assert_eq!(d.lost, None);
    }

    #[test]
    fn domain_aware_degrades_loudly_not_silently() {
        // One rack holds everything: rack independence is impossible, so
        // the policy must fall back and say so.
        let p = pool(3);
        let policy = PlacementPolicy::DomainAware(DomainMap::single_rack(3));
        let d = policy
            .place_member(&p, FRAME_BYTES, &[NodeId(0)])
            .unwrap();
        assert_eq!(d.target, NodeId(1));
        assert_eq!(d.lost, Some(DomainLevel::Rack));
    }

    #[test]
    fn recovery_fallback_reports_host_level_loss() {
        let mut p = pool(2);
        // Exclude every server: only the unconstrained tier can place, and
        // it must be reported as host-level independence loss.
        let policy = PlacementPolicy::HostOnly;
        let d = policy
            .place_recovery(&p, FRAME_BYTES, &[NodeId(0), NodeId(1)])
            .unwrap();
        assert_eq!(d.lost, Some(DomainLevel::Host));
        // A new member, by contrast, refuses to co-locate.
        assert!(policy
            .place_member(&p, FRAME_BYTES, &[NodeId(0), NodeId(1)])
            .is_none());
        // With every server failed there is nothing to fall back to.
        p.crash_server(NodeId(0));
        p.crash_server(NodeId(1));
        assert!(policy.place_recovery(&p, FRAME_BYTES, &[]).is_none());
    }

    #[test]
    fn full_segments_excluded_by_capacity() {
        let mut p = pool(2);
        // Fill server 1's shared region completely.
        for _ in 0..12 {
            p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        }
        assert_eq!(pick(&p, FRAME_BYTES, &[NodeId(0)]), None);
        let policy = PlacementPolicy::HostOnly;
        assert!(policy.place_member(&p, FRAME_BYTES, &[NodeId(0)]).is_none());
    }
}
