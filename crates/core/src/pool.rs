//! The logical memory pool.
//!
//! [`LogicalPool`] is the paper's contribution (§3): every server donates
//! its shared region to a rack-wide pool addressed by
//! logical addresses ([`crate::addr::LogicalAddr`]). Accesses that resolve to the
//! requesting server run at local DRAM speed — the defining performance
//! property (§4.3) — while remote accesses cross the fabric. The
//! private/shared split of every server can be resized at runtime (§4.5).

use crate::addr::{frame_chunks, LogicalAddr, SegmentId};
use crate::batch::{BatchOp, BatchResult};
use crate::observe::PoolTelemetry;
use crate::translate::{GlobalMap, LocalMap, SegmentLoc, TranslationCache};
use lmp_fabric::{Fabric, FabricError, MemOp, NodeId};
use lmp_mem::{DramProfile, MemoryNode, RegionKind, FRAME_BYTES};
use lmp_qos::{AdmissionController, Band, TenantId, TenantRate};
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Construction parameters for a logical pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of servers.
    pub servers: u32,
    /// DRAM capacity per server, bytes.
    pub capacity_per_server: u64,
    /// Initial shared-region budget per server, bytes.
    pub shared_per_server: u64,
    /// DRAM timing profile for every server.
    pub dram: DramProfile,
    /// Per-server translation-cache capacity (segments). Zero disables the
    /// cache (the ablation baseline: every access hits the global map).
    pub tlb_capacity: usize,
}

impl PoolConfig {
    /// The paper's §4.1 logical configuration: 4 servers × 24 GB, fully
    /// shared, testbed DRAM.
    pub fn paper_logical() -> Self {
        PoolConfig {
            servers: 4,
            capacity_per_server: 24 * GIB,
            shared_per_server: 24 * GIB,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 1024,
        }
    }
}

/// Placement policy for new segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Exactly on this server (fails if it lacks room).
    On(NodeId),
    /// On this server if it has room, else wherever most room is.
    LocalFirst(NodeId),
    /// On the server with the most free shared frames.
    MostFree,
    /// Rotate across servers.
    RoundRobin,
}

/// Errors surfaced by pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Not enough shared capacity anywhere (or on the requested server).
    Capacity {
        /// Frames requested.
        requested_frames: u64,
    },
    /// The segment does not exist (never allocated, or freed).
    UnknownSegment(SegmentId),
    /// Access past the end of a segment.
    OutOfBounds {
        /// Offending segment.
        segment: SegmentId,
        /// Requested end offset.
        end: u64,
        /// Segment length.
        len: u64,
    },
    /// The segment's holder has crashed and no protection covers it — the
    /// paper's "failure reporting to application through exceptions".
    SegmentLost(SegmentId),
    /// Operation addressed a crashed server directly.
    ServerDown(NodeId),
    /// The segment already carries protection (mirror or parity). The
    /// recovery orchestrator may race re-protection with a second crash;
    /// this is recoverable, not a programming error.
    AlreadyProtected(SegmentId),
    /// The tenant's token bucket is empty: admission control refused the
    /// op before anything was charged. Recoverable — the caller backs off
    /// and retries once the bucket refills.
    AdmissionRejected(TenantId),
    /// The caller violated an API contract (zero-length allocation,
    /// mismatched buffer, …). Recoverable: the pool state is unchanged.
    InvalidRequest(&'static str),
    /// Internal bookkeeping corruption: maps disagree with each other.
    /// Surfaced as an error (not a panic) so an injected fault cannot
    /// abort the whole simulation, but any occurrence is a bug.
    Internal(&'static str),
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Capacity { requested_frames } => {
                write!(f, "no room for {requested_frames} shared frames")
            }
            PoolError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            PoolError::OutOfBounds { segment, end, len } => {
                write!(f, "access to {end} past end of {segment} (len {len})")
            }
            PoolError::SegmentLost(s) => write!(f, "memory exception: {s} lost to a crash"),
            PoolError::ServerDown(n) => write!(f, "server {n} is down"),
            PoolError::AlreadyProtected(s) => write!(f, "segment {s} is already protected"),
            PoolError::AdmissionRejected(t) => {
                write!(f, "admission rejected: {t} is over its rate limit")
            }
            PoolError::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            PoolError::Internal(why) => write!(f, "internal invariant violated: {why}"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Timing outcome of one pool access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolAccess {
    /// When the access completes at the requester.
    pub complete: SimTime,
    /// Bytes served from the requester's own memory.
    pub local_bytes: u64,
    /// Bytes that crossed the fabric.
    pub remote_bytes: u64,
    /// Translation faults taken (stale cache entries).
    pub faults: u32,
}

/// Per-tenant QoS policy carried by the pool once any limit or band is
/// configured. Absent (the default) the tenant-aware entry points behave
/// exactly like their tenant-blind counterparts.
#[derive(Debug, Default)]
struct PoolQos {
    admission: AdmissionController,
    /// Fabric priority band per tenant; unlisted tenants ride
    /// [`Band::Normal`].
    bands: BTreeMap<TenantId, Band>,
}

/// The rack-wide logical memory pool.
#[derive(Debug)]
pub struct LogicalPool {
    config: PoolConfig,
    nodes: Vec<MemoryNode>,
    global: GlobalMap,
    locals: Vec<LocalMap>,
    tlbs: Vec<Option<TranslationCache>>,
    segment_len: BTreeMap<SegmentId, u64>,
    next_segment: u64,
    rr_cursor: u32,
    local_accesses: Counter,
    remote_accesses: Counter,
    telemetry: Option<Box<PoolTelemetry>>,
    qos: Option<Box<PoolQos>>,
}

impl LogicalPool {
    /// Build a pool per `config`.
    ///
    /// # Panics
    /// Panics when `shared_per_server > capacity_per_server` or there are
    /// zero servers.
    pub fn new(config: PoolConfig) -> Self {
        // lmp-lint: allow(no-panic) — constructor precondition on static
        // config, documented under `# Panics`; no pool exists yet to recover.
        assert!(config.servers > 0, "pool needs servers");
        let nodes = (0..config.servers)
            .map(|i| {
                MemoryNode::new(
                    format!("server{i}"),
                    config.capacity_per_server,
                    config.shared_per_server,
                    config.dram.clone(),
                )
            })
            .collect();
        let locals = (0..config.servers).map(|_| LocalMap::new()).collect();
        let tlbs = (0..config.servers)
            .map(|_| {
                if config.tlb_capacity > 0 {
                    Some(TranslationCache::new(config.tlb_capacity))
                } else {
                    None
                }
            })
            .collect();
        LogicalPool {
            config,
            nodes,
            global: GlobalMap::new(),
            locals,
            tlbs,
            segment_len: BTreeMap::new(),
            next_segment: 0,
            rr_cursor: 0,
            local_accesses: Counter::new(),
            remote_accesses: Counter::new(),
            telemetry: None,
            qos: None,
        }
    }

    fn qos_mut(&mut self) -> &mut PoolQos {
        self.qos.get_or_insert_with(Box::default)
    }

    /// Rate-limit `tenant`: at most `rate.ops_per_sec` pool ops per
    /// simulated second sustained, `rate.burst` back-to-back. The bucket
    /// starts full.
    pub fn set_tenant_rate(&mut self, tenant: TenantId, rate: TenantRate) {
        self.qos_mut().admission.set_limit(tenant, rate);
    }

    /// Remove `tenant`'s rate limit; it is admitted unconditionally again.
    pub fn clear_tenant_rate(&mut self, tenant: TenantId) {
        if let Some(q) = self.qos.as_deref_mut() {
            q.admission.clear_limit(tenant);
        }
    }

    /// Route `tenant`'s fabric traffic on `band`. Only observable when the
    /// fabric has priority bands enabled ([`Fabric::enable_bands`]).
    ///
    /// [`Fabric::enable_bands`]: lmp_fabric::Fabric::enable_bands
    pub fn set_tenant_band(&mut self, tenant: TenantId, band: Band) {
        self.qos_mut().bands.insert(tenant, band);
    }

    /// The band `tenant`'s traffic rides ([`Band::Normal`] by default).
    pub fn tenant_band(&self, tenant: TenantId) -> Band {
        self.qos
            .as_deref()
            .and_then(|q| q.bands.get(&tenant).copied())
            .unwrap_or(Band::Normal)
    }

    /// Whole admission tokens `tenant` could spend at `now` (`u64::MAX`
    /// when unlimited).
    pub fn admission_available(&mut self, now: SimTime, tenant: TenantId) -> u64 {
        match self.qos.as_deref_mut() {
            Some(q) => q.admission.available(now, tenant),
            None => u64::MAX,
        }
    }

    /// Attach per-access telemetry (instruments + spans). Idempotent; the
    /// pool runs un-instrumented until this is called.
    pub fn attach_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::new(PoolTelemetry::new(self.config.servers)));
        }
    }

    /// The attached telemetry, if any.
    pub fn telemetry(&self) -> Option<&PoolTelemetry> {
        self.telemetry.as_deref()
    }

    /// Mutable attached telemetry, if any.
    pub fn telemetry_mut(&mut self) -> Option<&mut PoolTelemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.config.servers
    }

    /// A server's memory node.
    pub fn node(&self, id: NodeId) -> &MemoryNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutable access to a server's memory node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut MemoryNode {
        &mut self.nodes[id.0 as usize]
    }

    /// The coarse global map (telemetry and failure handling).
    pub fn global_map(&self) -> &GlobalMap {
        &self.global
    }

    /// A server's fine map (telemetry).
    pub fn local_map(&self, id: NodeId) -> &LocalMap {
        &self.locals[id.0 as usize]
    }

    /// A server's translation cache, if enabled.
    pub fn tlb(&self, id: NodeId) -> Option<&TranslationCache> {
        self.tlbs[id.0 as usize].as_ref()
    }

    /// Length of a segment in bytes.
    pub fn segment_len(&self, seg: SegmentId) -> Option<u64> {
        self.segment_len.get(&seg).copied()
    }

    /// Current holder of a segment.
    pub fn holder_of(&self, seg: SegmentId) -> Option<NodeId> {
        self.global.peek(seg).map(|l| l.server)
    }

    /// Free shared frames on a server (0 when crashed).
    pub fn free_shared_frames(&self, id: NodeId) -> u64 {
        let n = &self.nodes[id.0 as usize];
        if n.is_failed() {
            0
        } else {
            n.split().available(RegionKind::Shared)
        }
    }

    /// Total pool capacity in bytes across live servers.
    pub fn pool_capacity_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| !n.is_failed())
            .map(|n| n.shared_bytes())
            .sum()
    }

    /// Accesses that resolved locally / remotely (for the §4 benefit
    /// accounting).
    pub fn access_counts(&self) -> (u64, u64) {
        (self.local_accesses.get(), self.remote_accesses.get())
    }

    fn pick_server(&mut self, frames: u64, placement: Placement) -> Option<NodeId> {
        let has_room = |pool: &Self, id: u32| pool.free_shared_frames(NodeId(id)) >= frames;
        match placement {
            Placement::On(n) => has_room(self, n.0).then_some(n),
            Placement::LocalFirst(n) => {
                if has_room(self, n.0) {
                    Some(n)
                } else {
                    self.pick_server(frames, Placement::MostFree)
                }
            }
            Placement::MostFree => (0..self.config.servers)
                .filter(|&i| has_room(self, i))
                .max_by_key(|&i| (self.free_shared_frames(NodeId(i)), std::cmp::Reverse(i)))
                .map(NodeId),
            Placement::RoundRobin => {
                for step in 0..self.config.servers {
                    let i = (self.rr_cursor + step) % self.config.servers;
                    if has_room(self, i) {
                        self.rr_cursor = (i + 1) % self.config.servers;
                        return Some(NodeId(i));
                    }
                }
                None
            }
        }
    }

    /// Allocate a pool buffer of `len` bytes. Returns its segment id; the
    /// segment's logical addresses are stable for its lifetime, across any
    /// number of migrations.
    pub fn alloc(&mut self, len: u64, placement: Placement) -> Result<SegmentId, PoolError> {
        if len == 0 {
            return Err(PoolError::InvalidRequest("zero-length allocation"));
        }
        let frames = len.div_ceil(FRAME_BYTES);
        let server = self
            .pick_server(frames, placement)
            .ok_or(PoolError::Capacity {
                requested_frames: frames,
            })?;
        let frame_ids = self.nodes[server.0 as usize]
            .alloc_many(RegionKind::Shared, frames)
            .map_err(|_| PoolError::Capacity {
                requested_frames: frames,
            })?;
        let seg = SegmentId(self.next_segment);
        self.next_segment += 1;
        self.global.insert(seg, server);
        self.locals[server.0 as usize].insert(seg, frame_ids);
        self.segment_len.insert(seg, len);
        Ok(seg)
    }

    /// Free a pool buffer.
    pub fn free(&mut self, seg: SegmentId) -> Result<(), PoolError> {
        let loc = self.global.remove(seg).ok_or(PoolError::UnknownSegment(seg))?;
        self.segment_len.remove(&seg);
        if let Some(frames) = self.locals[loc.server.0 as usize].remove(seg) {
            if !self.nodes[loc.server.0 as usize].is_failed() {
                for f in frames {
                    self.nodes[loc.server.0 as usize]
                        .free(f)
                        .map_err(|_| PoolError::Internal("local map frame not allocated"))?;
                }
            }
        }
        for tlb in self.tlbs.iter_mut().flatten() {
            tlb.invalidate(seg);
        }
        Ok(())
    }

    /// Resolve `seg` for `requester`, using its translation cache when
    /// enabled. Returns the location and the number of stale-entry faults
    /// taken (0 or 1).
    pub fn translate(
        &mut self,
        requester: NodeId,
        seg: SegmentId,
    ) -> Result<(SegmentLoc, u32), PoolError> {
        let tlb = &mut self.tlbs[requester.0 as usize];
        if let Some(tlb) = tlb {
            if let Some(loc) = tlb.lookup(seg) {
                // Fast path: the cached entry must still match the coarse
                // map — same holder *and* same epoch (an uncounted peek,
                // modelling the local check hardware does for free). The
                // epoch comparison catches A→B→A round trips, where the
                // original holder's fine map holds the segment again and
                // would otherwise validate a stale-epoch entry as fresh.
                if self.global.peek(seg) == Some(loc)
                    && self.locals[loc.server.0 as usize].holds(seg)
                {
                    return Ok((loc, 0));
                }
                tlb.note_stale(seg);
                let loc = self
                    .global
                    .lookup(seg)
                    .ok_or(PoolError::UnknownSegment(seg))?;
                tlb.refill(seg, loc);
                return Ok((loc, 1));
            }
            let loc = self
                .global
                .lookup(seg)
                .ok_or(PoolError::UnknownSegment(seg))?;
            tlb.refill(seg, loc);
            Ok((loc, 0))
        } else {
            let loc = self
                .global
                .lookup(seg)
                .ok_or(PoolError::UnknownSegment(seg))?;
            Ok((loc, 0))
        }
    }

    fn check_bounds(&self, addr: LogicalAddr, len: u64) -> Result<(), PoolError> {
        let seg_len = self
            .segment_len
            .get(&addr.segment)
            .copied()
            .ok_or(PoolError::UnknownSegment(addr.segment))?;
        // `offset + len` can wrap on a hostile `len`, which would slip a
        // huge access past the check — saturate the reported end instead.
        match addr.offset.checked_add(len) {
            Some(end) if end <= seg_len => Ok(()),
            overflowed_or_past_end => Err(PoolError::OutOfBounds {
                segment: addr.segment,
                end: overflowed_or_past_end.unwrap_or(u64::MAX),
                len: seg_len,
            }),
        }
    }

    /// Timed access: `requester` reads or writes `len` bytes at `addr`.
    ///
    /// Local resolution uses the requester's DRAM only; remote resolution
    /// pays the fabric plus the holder's DRAM. Multi-frame accesses issue
    /// all chunks at `now` (hardware pipelines independent cache-line
    /// streams) and complete when the last chunk does.
    ///
    /// A single op is a batch of one: this delegates to
    /// [`LogicalPool::access_batch`], so both paths share one frame walk,
    /// one validation order, and one commit discipline.
    pub fn access(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        requester: NodeId,
        addr: LogicalAddr,
        len: u64,
        op: MemOp,
    ) -> Result<PoolAccess, PoolError> {
        let batch = [BatchOp { addr, len, op }];
        let mut r = self.access_batch(fabric, now, requester, &batch)?;
        r.ops
            .pop()
            .ok_or(PoolError::Internal("batch of one returned no op"))
    }

    /// Batched scatter-gather access: `requester` issues every op in `ops`
    /// at `now`, as one pipelined wave.
    ///
    /// * Each distinct segment is translated **once** (one TLB or global
    ///   lookup), with any stale-entry fault attributed to the first op
    ///   that touches the segment — exactly the faults a one-by-one issue
    ///   order would take.
    /// * Adjacent frame chunks on the same holder and direction coalesce
    ///   into single DRAM runs and single fabric transfers, up to one
    ///   frame ([`FRAME_BYTES`]) per run so long payloads still pipeline
    ///   across the two-wire fabric path.
    /// * Each (holder, direction) pair carries one pipelined fabric stream
    ///   charged per-stream overheads once; the batch completes at the max
    ///   over streams, not the sum of serialized ops.
    ///
    /// Failure semantics are atomic: every op is validated (bounds, liveness
    /// of requester and holders, fabric ports) before anything commits, so
    /// an error means no counter, DRAM occupancy, or fabric traffic was
    /// charged. Translation-cache refills from the validation phase do
    /// persist, as they would for a failed single op.
    pub fn access_batch(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        requester: NodeId,
        ops: &[BatchOp],
    ) -> Result<BatchResult, PoolError> {
        self.access_batch_banded(fabric, now, requester, ops, Band::Normal)
    }

    /// Tenant-aware timed access: admission control first, then the
    /// tenant's priority band. A rejected op charges nothing — no
    /// counters, DRAM occupancy, or fabric traffic — and surfaces as the
    /// recoverable [`PoolError::AdmissionRejected`].
    #[allow(clippy::too_many_arguments)]
    pub fn access_as(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        tenant: TenantId,
        requester: NodeId,
        addr: LogicalAddr,
        len: u64,
        op: MemOp,
    ) -> Result<PoolAccess, PoolError> {
        let batch = [BatchOp { addr, len, op }];
        let mut r = self.access_batch_as(fabric, now, tenant, requester, &batch)?;
        r.ops
            .pop()
            .ok_or(PoolError::Internal("batch of one returned no op"))
    }

    /// Tenant-aware [`LogicalPool::access_batch`]: the whole batch is
    /// admitted or rejected as a unit (one token per op), then issued on
    /// the tenant's configured band. Without any configured QoS this is
    /// byte-identical to the tenant-blind path.
    pub fn access_batch_as(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        tenant: TenantId,
        requester: NodeId,
        ops: &[BatchOp],
    ) -> Result<BatchResult, PoolError> {
        if let Some(q) = self.qos.as_deref_mut() {
            if !q.admission.admit(now, tenant, ops.len() as u64) {
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.note_admission_rejected(tenant);
                }
                return Err(PoolError::AdmissionRejected(tenant));
            }
        }
        let band = self.tenant_band(tenant);
        self.access_batch_banded(fabric, now, requester, ops, band)
    }

    /// [`LogicalPool::access_batch`] with an explicit fabric priority
    /// band. With bands disabled on the fabric (the default) the band is
    /// ignored and the schedule is byte-identical to the plain path.
    pub fn access_batch_banded(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        requester: NodeId,
        ops: &[BatchOp],
        band: Band,
    ) -> Result<BatchResult, PoolError> {
        if ops.is_empty() {
            return Ok(BatchResult {
                complete: now,
                ops: Vec::new(),
                local_bytes: 0,
                remote_bytes: 0,
                faults: 0,
                holder_done: Vec::new(),
            });
        }
        // ---- validate: nothing is charged until every op clears ----
        for o in ops {
            self.check_bounds(o.addr, o.len)?;
        }
        if self.nodes[requester.0 as usize].is_failed() {
            return Err(PoolError::ServerDown(requester));
        }
        let mut locs: BTreeMap<SegmentId, SegmentLoc> = BTreeMap::new();
        let mut op_faults = vec![0u32; ops.len()];
        for (i, o) in ops.iter().enumerate() {
            if locs.contains_key(&o.addr.segment) {
                continue;
            }
            let (loc, faults) = self.translate(requester, o.addr.segment)?;
            if self.nodes[loc.server.0 as usize].is_failed() {
                return Err(PoolError::SegmentLost(o.addr.segment));
            }
            // The fabric's port state can lag the pool's crash state by a
            // simulated detection delay under fault injection. Checking
            // ports up front keeps the commit below infallible, so a failed
            // access never leaves partially-bumped counters behind.
            if loc.server != requester {
                if fabric.is_port_down(requester) {
                    return Err(PoolError::ServerDown(requester));
                }
                if fabric.is_port_down(loc.server) {
                    return Err(PoolError::SegmentLost(o.addr.segment));
                }
            }
            locs.insert(o.addr.segment, loc);
            op_faults[i] = faults;
        }

        // ---- plan: shared frame walk, then (holder, direction) streams ----
        struct Chunk {
            op: usize,
            seg: SegmentId,
            /// Byte offset within the segment (for adjacency detection).
            start: u64,
            bytes: u64,
            frame: lmp_mem::FrameId,
        }
        let mut chunks: Vec<Chunk> = Vec::new();
        let mut streams: std::collections::BTreeMap<(u32, bool), Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, o) in ops.iter().enumerate() {
            let holder = locs[&o.addr.segment].server;
            for (frame_idx, within, chunk) in frame_chunks(o.addr, o.len) {
                let frame = self.locals[holder.0 as usize]
                    .resolve(o.addr.segment, frame_idx)
                    .ok_or(PoolError::Internal("fine map missing frame of live segment"))?;
                streams
                    .entry((holder.0, matches!(o.op, MemOp::Write)))
                    .or_default()
                    .push(chunks.len());
                chunks.push(Chunk {
                    op: i,
                    seg: o.addr.segment,
                    start: frame_idx * FRAME_BYTES + within,
                    bytes: chunk,
                    frame,
                });
            }
        }

        // ---- commit: per-stream runs, DRAM, then the fabric stream ----
        let mut per_op = vec![
            PoolAccess {
                complete: now,
                local_bytes: 0,
                remote_bytes: 0,
                faults: 0,
            };
            ops.len()
        ];
        let mut dram_done = now;
        // Per-holder completion: the max over that holder's streams. Kept in
        // a BTreeMap so the emitted list is ordered by node id — one
        // schedulable completion event per holder, deterministically.
        let mut holder_done: BTreeMap<u32, SimTime> = BTreeMap::new();
        for ((holder_idx, is_write), mut members) in streams {
            let holder = NodeId(holder_idx);
            let local = holder == requester;
            // Coalesce byte-contiguous chunks (ordered by segment position)
            // into runs of at most one frame, so a run is a realistic DRAM
            // burst and fabric streams keep chunk-level wire pipelining.
            members.sort_by_key(|&ci| (chunks[ci].seg, chunks[ci].start, chunks[ci].op));
            struct Run {
                seg: SegmentId,
                end: u64,
                bytes: u64,
                frames: Vec<lmp_mem::FrameId>,
                members: Vec<usize>,
            }
            let mut runs: Vec<Run> = Vec::new();
            for &ci in &members {
                let c = &chunks[ci];
                match runs.last_mut() {
                    Some(r)
                        if r.seg == c.seg
                            && r.end == c.start
                            && r.bytes + c.bytes <= FRAME_BYTES =>
                    {
                        r.end += c.bytes;
                        r.bytes += c.bytes;
                        r.frames.push(c.frame);
                        r.members.push(ci);
                    }
                    _ => runs.push(Run {
                        seg: c.seg,
                        end: c.start + c.bytes,
                        bytes: c.bytes,
                        frames: vec![c.frame],
                        members: vec![ci],
                    }),
                }
            }

            // One DRAM occupancy per run, all issued at `now` (independent
            // cache-line streams pipeline in hardware); each pre-coalescing
            // chunk still contributes its hotness sample and pool counter,
            // so accounting matches a one-by-one issue order exactly.
            let mut run_dram: Vec<SimTime> = Vec::with_capacity(runs.len());
            for r in &runs {
                let d = self.nodes[holder_idx as usize].access_run(
                    now,
                    r.bytes,
                    requester.0,
                    local,
                    &r.frames,
                );
                run_dram.push(d.complete);
            }
            for _ in &members {
                if local {
                    self.local_accesses.inc();
                } else {
                    self.remote_accesses.inc();
                }
            }
            let mut run_complete = run_dram.clone();
            if !local {
                let sizes: Vec<u64> = runs.iter().map(|r| r.bytes).collect();
                let mut stream_ops: Vec<usize> =
                    members.iter().map(|&ci| chunks[ci].op).collect();
                stream_ops.sort_unstable();
                stream_ops.dedup();
                let op = if is_write { MemOp::Write } else { MemOp::Read };
                // Unreachable after the port pre-flight (port state cannot
                // change mid-call); kept as defence in depth.
                let bt = fabric
                    .transfer_batch_banded(
                        now,
                        requester,
                        holder,
                        op,
                        &sizes,
                        stream_ops.len() as u64,
                        band,
                    )
                    .map_err(|e| match e {
                        FabricError::RequesterDown(n) => PoolError::ServerDown(n),
                        FabricError::HolderDown(_) => PoolError::SegmentLost(runs[0].seg),
                        FabricError::Contract(why) => PoolError::Internal(why),
                    })?;
                for (ri, &done) in bt.chunk_done.iter().enumerate() {
                    run_complete[ri] = run_complete[ri].max(done);
                }
            }
            let stream_done = run_complete.iter().copied().max().unwrap_or(now);
            let hd = holder_done.entry(holder_idx).or_insert(stream_done);
            *hd = (*hd).max(stream_done);
            for (ri, r) in runs.iter().enumerate() {
                dram_done = dram_done.max(run_dram[ri]);
                for &ci in &r.members {
                    let c = &chunks[ci];
                    let a = &mut per_op[c.op];
                    a.complete = a.complete.max(run_complete[ri]);
                    if local {
                        a.local_bytes += c.bytes;
                    } else {
                        a.remote_bytes += c.bytes;
                    }
                }
            }
        }

        let mut result = BatchResult {
            complete: now,
            ops: Vec::with_capacity(ops.len()),
            local_bytes: 0,
            remote_bytes: 0,
            faults: 0,
            holder_done: holder_done
                .into_iter()
                .map(|(h, t)| (NodeId(h), t))
                .collect(),
        };
        for (i, mut a) in per_op.into_iter().enumerate() {
            a.faults = op_faults[i];
            result.complete = result.complete.max(a.complete);
            result.local_bytes += a.local_bytes;
            result.remote_bytes += a.remote_bytes;
            result.faults += a.faults;
            result.ops.push(a);
        }
        if let Some(t) = self.telemetry.as_deref_mut() {
            let pairs: Vec<(MemOp, PoolAccess)> = ops
                .iter()
                .zip(&result.ops)
                .map(|(o, a)| (o.op, *a))
                .collect();
            t.on_batch(now, requester, &pairs, dram_done, result.complete);
        }
        Ok(result)
    }

    /// Materialized write of `data` at `addr` (correctness path; no timing).
    pub fn write_bytes(&mut self, addr: LogicalAddr, data: &[u8]) -> Result<(), PoolError> {
        self.check_bounds(addr, data.len() as u64)?;
        let loc = self
            .global
            .peek(addr.segment)
            .ok_or(PoolError::UnknownSegment(addr.segment))?;
        if self.nodes[loc.server.0 as usize].is_failed() {
            return Err(PoolError::SegmentLost(addr.segment));
        }
        let mut cursor = 0usize;
        for (frame_idx, within, chunk) in frame_chunks(addr, data.len() as u64) {
            let frame = self.locals[loc.server.0 as usize]
                .resolve(addr.segment, frame_idx)
                .ok_or(PoolError::Internal("fine map missing frame of live segment"))?;
            self.nodes[loc.server.0 as usize].write_bytes(
                frame,
                within,
                &data[cursor..cursor + chunk as usize],
            );
            cursor += chunk as usize;
        }
        Ok(())
    }

    /// Materialized read of `len` bytes at `addr`.
    pub fn read_bytes(&self, addr: LogicalAddr, len: u64) -> Result<Vec<u8>, PoolError> {
        self.check_bounds(addr, len)?;
        let loc = self
            .global
            .peek(addr.segment)
            .ok_or(PoolError::UnknownSegment(addr.segment))?;
        if self.nodes[loc.server.0 as usize].is_failed() {
            return Err(PoolError::SegmentLost(addr.segment));
        }
        let mut out = Vec::with_capacity(len as usize);
        for (frame_idx, within, chunk) in frame_chunks(addr, len) {
            let frame = self.locals[loc.server.0 as usize]
                .resolve(addr.segment, frame_idx)
                .ok_or(PoolError::Internal("fine map missing frame of live segment"))?;
            out.extend(self.nodes[loc.server.0 as usize].read_bytes(
                frame,
                within,
                chunk as usize,
            ));
        }
        Ok(out)
    }

    /// Resize a server's shared budget (bytes, rounded down to frames) —
    /// the §4.5 flexibility knob.
    pub fn resize_shared(&mut self, server: NodeId, shared_bytes: u64) -> Result<(), PoolError> {
        if self.nodes[server.0 as usize].is_failed() {
            return Err(PoolError::ServerDown(server));
        }
        self.nodes[server.0 as usize]
            .split_mut()
            .resize_shared(shared_bytes / FRAME_BYTES)
            .map_err(|_| PoolError::Capacity {
                requested_frames: shared_bytes / FRAME_BYTES,
            })
    }

    /// Crash a server. Its pool shard vanishes; segments homed there become
    /// lost (until a protection layer restores them). Returns the affected
    /// segments.
    pub fn crash_server(&mut self, server: NodeId) -> Vec<SegmentId> {
        self.nodes[server.0 as usize].crash();
        self.global.segments_on(server)
    }

    /// Warm-revive a crashed server: memory contents and segment
    /// bookkeeping survive intact, so segments homed there resolve again.
    /// Only valid when the crash never destroyed DRAM ([`MemoryNode::crash`]
    /// retains contents; the model of a rack power/ToR loss). A rejoin
    /// whose warm claim is rejected must go through
    /// [`Self::restart_server`] instead.
    ///
    /// [`MemoryNode::crash`]: lmp_mem::MemoryNode::crash
    pub fn revive_server(&mut self, server: NodeId) {
        self.nodes[server.0 as usize].revive();
    }

    /// Restart a crashed server with empty memory. Segments still mapped
    /// to it died with its DRAM, so their bookkeeping is dropped here:
    /// later accesses surface [`PoolError::UnknownSegment`] instead of
    /// resolving into the recycled empty frames.
    pub fn restart_server(&mut self, server: NodeId) {
        for seg in self.global.segments_on(server) {
            self.drop_segment_bookkeeping(seg);
        }
        self.nodes[server.0 as usize].restart();
        self.locals[server.0 as usize] = LocalMap::new();
    }

    // ----- crate-internal hooks for migration & failure handling -----

    /// Failure handling: `replica`'s frames become `seg`'s (same length),
    /// and the replica id disappears. Used to promote a mirror after its
    /// primary's server crashed.
    pub(crate) fn promote_replica(
        &mut self,
        seg: SegmentId,
        replica: SegmentId,
    ) -> Result<(), PoolError> {
        let rloc = self
            .global
            .peek(replica)
            .ok_or(PoolError::Internal("replica segment unknown to global map"))?;
        let frames = self.locals[rloc.server.0 as usize]
            .remove(replica)
            .ok_or(PoolError::Internal("replica segment has no frames"))?;
        let rlen = self
            .segment_len
            .remove(&replica)
            .ok_or(PoolError::Internal("replica segment has no length"))?;
        // Forget the segment's stale presence on its crashed home.
        if let Some(old) = self.global.peek(seg) {
            self.locals[old.server.0 as usize].remove(seg);
        }
        self.locals[rloc.server.0 as usize].insert(seg, frames);
        self.global.remove(replica);
        self.global.relocate(seg, rloc.server);
        self.segment_len.insert(seg, rlen);
        for tlb in self.tlbs.iter_mut().flatten() {
            tlb.invalidate(seg);
            tlb.invalidate(replica);
        }
        Ok(())
    }

    /// Failure handling: forget a segment whose frames died with a crashed
    /// server (no freeing possible).
    pub(crate) fn drop_segment_bookkeeping(&mut self, seg: SegmentId) {
        if let Some(loc) = self.global.remove(seg) {
            self.locals[loc.server.0 as usize].remove(seg);
        }
        self.segment_len.remove(&seg);
        for tlb in self.tlbs.iter_mut().flatten() {
            tlb.invalidate(seg);
        }
    }

    /// Failure handling: give `seg` fresh frames on `target` filled with
    /// `data` (reconstruction output), preserving its logical address.
    pub(crate) fn rehome_segment(
        &mut self,
        seg: SegmentId,
        target: NodeId,
        data: &[u8],
    ) -> Result<(), PoolError> {
        let len = self
            .segment_len
            .get(&seg)
            .copied()
            .ok_or(PoolError::UnknownSegment(seg))?;
        if data.len() as u64 != len {
            return Err(PoolError::Internal("reconstruction length mismatch"));
        }
        let frames = len.div_ceil(FRAME_BYTES);
        let frame_ids = self.nodes[target.0 as usize]
            .alloc_many(RegionKind::Shared, frames)
            .map_err(|_| PoolError::Capacity {
                requested_frames: frames,
            })?;
        if let Some(old) = self.global.peek(seg) {
            self.locals[old.server.0 as usize].remove(seg);
        }
        // Fill the new frames.
        let node = &mut self.nodes[target.0 as usize];
        let mut cursor = 0usize;
        for f in &frame_ids {
            let chunk = (FRAME_BYTES as usize).min(data.len() - cursor);
            node.write_bytes(*f, 0, &data[cursor..cursor + chunk]);
            cursor += chunk;
        }
        self.locals[target.0 as usize].insert(seg, frame_ids);
        self.global.relocate(seg, target);
        for tlb in self.tlbs.iter_mut().flatten() {
            tlb.invalidate(seg);
        }
        Ok(())
    }

    pub(crate) fn global_mut(&mut self) -> &mut GlobalMap {
        &mut self.global
    }

    pub(crate) fn local_mut(&mut self, id: NodeId) -> &mut LocalMap {
        &mut self.locals[id.0 as usize]
    }

    pub(crate) fn node_raw(&mut self, id: NodeId) -> &mut MemoryNode {
        &mut self.nodes[id.0 as usize]
    }

    pub(crate) fn two_nodes(
        &mut self,
        a: NodeId,
        b: NodeId,
    ) -> (&mut MemoryNode, &mut MemoryNode) {
        // lmp-lint: allow(no-panic) — aliasing precondition: `a == b` would
        // hand out two `&mut` to one node. Every caller checks it first.
        assert_ne!(a, b);
        let (ai, bi) = (a.0 as usize, b.0 as usize);
        if ai < bi {
            let (lo, hi) = self.nodes.split_at_mut(bi);
            (&mut lo[ai], &mut hi[0])
        } else {
            let (lo, hi) = self.nodes.split_at_mut(ai);
            (&mut hi[0], &mut lo[bi])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;

    fn small_pool() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 4,
            capacity_per_server: 32 * FRAME_BYTES,
            shared_per_server: 16 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        };
        let fabric = Fabric::new(LinkProfile::link1(), 4);
        (LogicalPool::new(cfg), fabric)
    }

    #[test]
    fn alloc_places_on_requested_server() {
        let (mut p, _) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(2))).unwrap();
        assert_eq!(p.holder_of(seg), Some(NodeId(2)));
        assert_eq!(p.segment_len(seg), Some(FRAME_BYTES));
        assert_eq!(p.node(NodeId(2)).split().shared_used(), 1);
    }

    #[test]
    fn alloc_most_free_balances() {
        let (mut p, _) = small_pool();
        let a = p.alloc(4 * FRAME_BYTES, Placement::MostFree).unwrap();
        let b = p.alloc(4 * FRAME_BYTES, Placement::MostFree).unwrap();
        assert_ne!(p.holder_of(a), p.holder_of(b));
    }

    #[test]
    fn round_robin_rotates() {
        let (mut p, _) = small_pool();
        let homes: Vec<_> = (0..4)
            .map(|_| {
                let s = p.alloc(FRAME_BYTES, Placement::RoundRobin).unwrap();
                p.holder_of(s).unwrap()
            })
            .collect();
        assert_eq!(homes, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn local_first_overflows() {
        let (mut p, _) = small_pool();
        // Fill server 0's 16 shared frames.
        p.alloc(16 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let seg = p
            .alloc(FRAME_BYTES, Placement::LocalFirst(NodeId(0)))
            .unwrap();
        assert_ne!(p.holder_of(seg), Some(NodeId(0)));
    }

    #[test]
    fn capacity_error_when_full() {
        let (mut p, _) = small_pool();
        for _ in 0..4 {
            p.alloc(16 * FRAME_BYTES, Placement::MostFree).unwrap();
        }
        assert!(matches!(
            p.alloc(FRAME_BYTES, Placement::MostFree),
            Err(PoolError::Capacity { .. })
        ));
    }

    #[test]
    fn free_returns_frames() {
        let (mut p, _) = small_pool();
        let seg = p.alloc(8 * FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        assert_eq!(p.free_shared_frames(NodeId(1)), 8);
        p.free(seg).unwrap();
        assert_eq!(p.free_shared_frames(NodeId(1)), 16);
        assert!(matches!(p.free(seg), Err(PoolError::UnknownSegment(_))));
    }

    #[test]
    fn local_access_is_fast_and_counted() {
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let a = p
            .access(
                &mut f,
                SimTime::ZERO,
                NodeId(0),
                LogicalAddr::new(seg, 0),
                64,
                MemOp::Read,
            )
            .unwrap();
        assert_eq!(a.local_bytes, 64);
        assert_eq!(a.remote_bytes, 0);
        // Local DRAM latency only.
        assert!(a.complete.as_nanos() < 200, "local access too slow: {a:?}");
        assert_eq!(p.access_counts(), (1, 0));
    }

    #[test]
    fn remote_access_pays_fabric() {
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let a = p
            .access(
                &mut f,
                SimTime::ZERO,
                NodeId(0),
                LogicalAddr::new(seg, 0),
                64,
                MemOp::Read,
            )
            .unwrap();
        assert_eq!(a.remote_bytes, 64);
        assert!(a.complete.as_nanos() >= 261, "missing Link1 latency: {a:?}");
        assert_eq!(p.access_counts(), (0, 1));
    }

    #[test]
    fn multi_frame_access_spans() {
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(3 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let a = p
            .access(
                &mut f,
                SimTime::ZERO,
                NodeId(0),
                LogicalAddr::new(seg, FRAME_BYTES - 100),
                200,
                MemOp::Read,
            )
            .unwrap();
        assert_eq!(a.local_bytes, 200);
        assert_eq!(p.access_counts(), (2, 0), "two frames touched");
    }

    #[test]
    fn bounds_checked() {
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(100, Placement::On(NodeId(0))).unwrap();
        let r = p.access(
            &mut f,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 90),
            11,
            MemOp::Read,
        );
        assert!(matches!(r, Err(PoolError::OutOfBounds { .. })));
    }

    #[test]
    fn materialized_round_trip() {
        let (mut p, _) = small_pool();
        let seg = p.alloc(2 * FRAME_BYTES, Placement::On(NodeId(3))).unwrap();
        let addr = LogicalAddr::new(seg, FRAME_BYTES - 2);
        p.write_bytes(addr, b"boundary-crossing payload").unwrap();
        assert_eq!(
            p.read_bytes(addr, 25).unwrap(),
            b"boundary-crossing payload"
        );
    }

    #[test]
    fn crash_makes_segments_lost() {
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(2))).unwrap();
        let affected = p.crash_server(NodeId(2));
        assert_eq!(affected, vec![seg]);
        let r = p.access(
            &mut f,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            64,
            MemOp::Read,
        );
        assert_eq!(r, Err(PoolError::SegmentLost(seg)));
        assert_eq!(p.free_shared_frames(NodeId(2)), 0);
        assert_eq!(p.pool_capacity_bytes(), 3 * 16 * FRAME_BYTES);
    }

    #[test]
    fn restart_after_loss_unmaps_segments() {
        let (mut p, _) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        p.crash_server(NodeId(1));
        p.restart_server(NodeId(1));
        // The lost segment's id is gone, not silently resolving into the
        // restarted server's empty memory.
        assert!(matches!(
            p.read_bytes(LogicalAddr::new(seg, 0), 1),
            Err(PoolError::UnknownSegment(_))
        ));
        // Capacity is fully reusable after the restart.
        assert_eq!(p.free_shared_frames(NodeId(1)), 16);
        assert!(p.alloc(16 * FRAME_BYTES, Placement::On(NodeId(1))).is_ok());
    }

    #[test]
    fn resize_shared_enables_larger_allocations() {
        let (mut p, _) = small_pool();
        assert!(p.alloc(20 * FRAME_BYTES, Placement::On(NodeId(0))).is_err());
        p.resize_shared(NodeId(0), 32 * FRAME_BYTES).unwrap();
        assert!(p.alloc(20 * FRAME_BYTES, Placement::On(NodeId(0))).is_ok());
    }

    #[test]
    fn tlb_serves_repeat_translations() {
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        for _ in 0..10 {
            p.access(
                &mut f,
                SimTime::ZERO,
                NodeId(0),
                LogicalAddr::new(seg, 0),
                64,
                MemOp::Read,
            )
            .unwrap();
        }
        let tlb = p.tlb(NodeId(0)).unwrap();
        assert_eq!(tlb.miss_count(), 1);
        assert_eq!(tlb.hit_count(), 9);
        // Global map consulted exactly once by this requester.
        assert_eq!(p.global_map().lookup_count(), 1);
    }

    #[test]
    fn huge_len_overflow_is_out_of_bounds() {
        // Regression: `offset + len` used to wrap, letting a hostile `len`
        // slip a near-2^64-byte access past the bounds check.
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let r = p.access(
            &mut f,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 1),
            u64::MAX,
            MemOp::Read,
        );
        assert!(
            matches!(r, Err(PoolError::OutOfBounds { .. })),
            "wrapping length must be rejected, got {r:?}"
        );
        assert_eq!(p.access_counts(), (0, 0), "nothing may be charged");
    }

    #[test]
    fn failed_multi_frame_access_charges_nothing() {
        // Regression: counters and DRAM accounting used to be bumped chunk
        // by chunk *before* the fabric could refuse a later chunk, so a
        // port dropping mid-access inflated the books. The access is now
        // atomic: validate everything, then commit.
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(3 * FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        // Warm the translation so the failed attempt takes the fast path.
        p.access(
            &mut f,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            64,
            MemOp::Read,
        )
        .unwrap();
        let counts_before = p.access_counts();
        let dram_before = p.node(NodeId(1)).dram().access_count();
        f.set_port_down(NodeId(1), true);
        let r = p.access(
            &mut f,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            3 * FRAME_BYTES,
            MemOp::Write,
        );
        assert_eq!(r, Err(PoolError::SegmentLost(seg)));
        assert_eq!(p.access_counts(), counts_before, "no counter inflation");
        assert_eq!(
            p.node(NodeId(1)).dram().access_count(),
            dram_before,
            "no DRAM occupancy charged for the failed access"
        );
        // The fabric saw no traffic from the refused access either.
        let (reads, writes) = (f.read_count(), f.write_count());
        f.set_port_down(NodeId(1), false);
        p.access(
            &mut f,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            3 * FRAME_BYTES,
            MemOp::Write,
        )
        .unwrap();
        assert_eq!(f.read_count(), reads);
        assert!(f.write_count() > writes);
    }

    #[test]
    fn batch_coalesces_and_splits_per_holder() {
        let (mut p, mut f) = small_pool();
        let near = p.alloc(2 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let far = p.alloc(2 * FRAME_BYTES, Placement::On(NodeId(2))).unwrap();
        let ops = [
            // Two adjacent chunks on the local holder: coalesce to one run.
            BatchOp::read(LogicalAddr::new(near, 0), 512),
            BatchOp::read(LogicalAddr::new(near, 512), 512),
            // One remote op spanning a frame boundary: two chunks.
            BatchOp::read(LogicalAddr::new(far, FRAME_BYTES - 256), 512),
            // A remote write: separate stream (direction differs).
            BatchOp::write(LogicalAddr::new(far, 0), 128),
        ];
        let r = p
            .access_batch(&mut f, SimTime::ZERO, NodeId(0), &ops)
            .unwrap();
        assert_eq!(r.ops.len(), 4);
        assert_eq!(r.local_bytes, 1024);
        assert_eq!(r.remote_bytes, 640);
        assert_eq!(r.ops[0].local_bytes, 512);
        assert_eq!(r.ops[2].remote_bytes, 512);
        assert_eq!(r.ops[3].remote_bytes, 128);
        // Pool counters count pre-coalescing chunks, exactly as a
        // one-by-one issue order would: 2 local + 3 remote.
        assert_eq!(p.access_counts(), (2, 3));
        // DRAM runs after coalescing: 1 local (adjacent pair merged); the
        // remote read's two frame chunks are byte-contiguous so they merge
        // too — 1 read run + 1 write run on the far holder.
        assert_eq!(p.node(NodeId(0)).dram().access_count(), 1);
        assert_eq!(p.node(NodeId(2)).dram().access_count(), 2);
        // One fabric stream per (holder, direction), charging the logical
        // op count: 1 read op + 1 write op.
        assert_eq!(f.read_count(), 1);
        assert_eq!(f.write_count(), 1);
        // The batch completes when its slowest op does.
        let slowest = r.ops.iter().map(|a| a.complete).max().unwrap();
        assert_eq!(r.complete, slowest);
        assert!(r.complete > SimTime::ZERO);
    }

    #[test]
    fn empty_batch_is_free() {
        let (mut p, mut f) = small_pool();
        let now = SimTime::from_nanos(42);
        let r = p.access_batch(&mut f, now, NodeId(0), &[]).unwrap();
        assert_eq!(r.complete, now);
        assert!(r.ops.is_empty());
        assert_eq!(p.access_counts(), (0, 0));
    }

    #[test]
    fn admission_rejects_over_limit_and_charges_nothing() {
        let (mut p, mut f) = small_pool();
        p.attach_telemetry();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let tenant = lmp_qos::TenantId(7);
        p.set_tenant_rate(
            tenant,
            lmp_qos::TenantRate {
                ops_per_sec: 1_000_000, // 1 op per µs
                burst: 2,
            },
        );
        let addr = LogicalAddr::new(seg, 0);
        for _ in 0..2 {
            p.access_as(&mut f, SimTime::ZERO, tenant, NodeId(0), addr, 64, MemOp::Read)
                .unwrap();
        }
        let counts = p.access_counts();
        let reads = f.read_count();
        let r = p.access_as(&mut f, SimTime::ZERO, tenant, NodeId(0), addr, 64, MemOp::Read);
        assert_eq!(r, Err(PoolError::AdmissionRejected(tenant)));
        assert_eq!(p.access_counts(), counts, "rejected op charges no counters");
        assert_eq!(f.read_count(), reads, "rejected op sends no fabric traffic");
        let snap = p.telemetry().unwrap().snapshot();
        assert_eq!(
            snap.counter("qos.admission_rejected", &[("tenant", "7")]),
            1
        );
        // After the bucket refills the tenant is served again.
        assert!(p
            .access_as(
                &mut f,
                SimTime::from_nanos(1_000),
                tenant,
                NodeId(0),
                addr,
                64,
                MemOp::Read
            )
            .is_ok());
    }

    #[test]
    fn unlimited_tenants_match_the_tenant_blind_path() {
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let addr = LogicalAddr::new(seg, 0);
        let a = p
            .access_as(
                &mut f,
                SimTime::ZERO,
                lmp_qos::TenantId(0),
                NodeId(0),
                addr,
                256,
                MemOp::Read,
            )
            .unwrap();
        let (mut p2, mut f2) = small_pool();
        let seg2 = p2.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let b = p2
            .access(
                &mut f2,
                SimTime::ZERO,
                NodeId(0),
                LogicalAddr::new(seg2, 0),
                256,
                MemOp::Read,
            )
            .unwrap();
        assert_eq!(a, b, "no QoS configured: identical timing");
        assert_eq!(p.tenant_band(lmp_qos::TenantId(0)), lmp_qos::Band::Normal);
    }

    #[test]
    fn whole_batch_is_admitted_or_rejected_as_a_unit() {
        let (mut p, mut f) = small_pool();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let tenant = lmp_qos::TenantId(1);
        p.set_tenant_rate(
            tenant,
            lmp_qos::TenantRate {
                ops_per_sec: 1_000,
                burst: 3,
            },
        );
        let op = BatchOp::read(LogicalAddr::new(seg, 0), 64);
        let four = [op, op, op, op];
        assert_eq!(
            p.access_batch_as(&mut f, SimTime::ZERO, tenant, NodeId(0), &four),
            Err(PoolError::AdmissionRejected(tenant)),
            "4 ops cannot fit a 3-token bucket"
        );
        // The failed batch consumed nothing: a 3-op batch still fits.
        let three = [op, op, op];
        assert!(p
            .access_batch_as(&mut f, SimTime::ZERO, tenant, NodeId(0), &three)
            .is_ok());
    }

    #[test]
    fn batch_beats_serialized_singles_on_remote_streams() {
        // The pipelining claim: a batch of remote reads completes earlier
        // than the same ops issued back-to-back, each waiting on the last.
        let ops_of = |segs: &[SegmentId]| -> Vec<BatchOp> {
            segs.iter()
                .map(|&s| BatchOp::read(LogicalAddr::new(s, 0), 256 * 1024))
                .collect()
        };
        let (mut p, mut f) = small_pool();
        let segs: Vec<_> = (1..4)
            .map(|s| p.alloc(FRAME_BYTES, Placement::On(NodeId(s))).unwrap())
            .collect();
        let batch = p
            .access_batch(&mut f, SimTime::ZERO, NodeId(0), &ops_of(&segs))
            .unwrap();

        let (mut p2, mut f2) = small_pool();
        let segs2: Vec<_> = (1..4)
            .map(|s| p2.alloc(FRAME_BYTES, Placement::On(NodeId(s))).unwrap())
            .collect();
        let mut serial = SimTime::ZERO;
        for op in ops_of(&segs2) {
            let a = p2
                .access(&mut f2, serial, NodeId(0), op.addr, op.len, op.op)
                .unwrap();
            serial = a.complete;
        }
        assert!(
            batch.complete < serial,
            "pipelined batch {:?} must beat serialized singles {:?}",
            batch.complete,
            serial
        );
    }
}
