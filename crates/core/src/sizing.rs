//! Shared-region sizing (§5 "Sizing the shared regions").
//!
//! The paper frames sizing as "a global optimization problem that is solved
//! periodically. The objective is to maximize the number of local accesses
//! while prioritizing high-value applications." This module implements that
//! optimizer as a deterministic greedy solver: demands are placed in
//! priority order, local-first, overflowing to the servers with the most
//! head-room; the resulting per-server shared budgets are then applied to
//! the pool.

use crate::pool::{LogicalPool, PoolError};
use lmp_fabric::NodeId;
use lmp_mem::FRAME_BYTES;

/// One application's memory demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppDemand {
    /// The server the application runs on (where "local" is).
    pub server: NodeId,
    /// Working-set size in bytes.
    pub bytes: u64,
    /// Higher = placed earlier (the paper's "high-value applications").
    pub priority: u32,
}

/// Where one demand's frames ended up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementResult {
    /// Index into the input demand slice.
    pub demand: usize,
    /// (server, frames) assignments, local share first.
    pub shares: Vec<(NodeId, u64)>,
    /// Frames placed on the demand's own server.
    pub local_frames: u64,
    /// Frames that could not be placed anywhere (pool too small).
    pub unplaced_frames: u64,
}

/// The solver's output.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingPlan {
    /// Shared budget per server, in frames.
    pub shared_frames: Vec<u64>,
    /// Per-demand placement, in input order.
    pub placements: Vec<PlacementResult>,
    /// Fraction of placed frames that are local to their application,
    /// weighted by priority.
    pub weighted_local_fraction: f64,
    /// Whether every demand was fully placed.
    pub feasible: bool,
}

/// Solve the sizing problem.
///
/// * `capacity_frames[s]` — total frames on server `s`.
/// * `private_floor_frames[s]` — frames that must remain private on `s`
///   (OS, process state); the shared budget can never eat into these.
/// * `demands` — application working sets with priorities.
///
/// # Panics
/// Panics when the two capacity slices disagree in length or a floor
/// exceeds its capacity.
pub fn solve(
    capacity_frames: &[u64],
    private_floor_frames: &[u64],
    demands: &[AppDemand],
) -> SizingPlan {
    // lmp-lint: allow(no-panic) — solver input contract: one floor per server;
    // an arity mismatch is a caller bug.
    assert_eq!(capacity_frames.len(), private_floor_frames.len());
    for (c, f) in capacity_frames.iter().zip(private_floor_frames) {
        // lmp-lint: allow(no-panic) — solver input contract: a floor above
        // capacity makes the sizing LP infeasible by construction.
        assert!(f <= c, "private floor {f} exceeds capacity {c}");
    }
    let servers = capacity_frames.len();
    // Free poolable frames per server.
    let mut room: Vec<u64> = capacity_frames
        .iter()
        .zip(private_floor_frames)
        .map(|(c, f)| c - f)
        .collect();
    let mut placed_on = vec![0u64; servers];

    // Priority order, stable by input index for determinism.
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(demands[i].priority), i));

    let mut placements: Vec<PlacementResult> = (0..demands.len())
        .map(|i| PlacementResult {
            demand: i,
            shares: Vec::new(),
            local_frames: 0,
            unplaced_frames: 0,
        })
        .collect();

    for &i in &order {
        let d = demands[i];
        let home = d.server.0 as usize;
        // lmp-lint: allow(no-panic) — solver input contract: demands reference
        // servers in the capacity vector; an unknown home is a caller bug.
        assert!(home < servers, "demand on unknown server {}", d.server);
        let mut need = d.bytes.div_ceil(FRAME_BYTES);
        // Local first.
        let take = need.min(room[home]);
        if take > 0 {
            room[home] -= take;
            placed_on[home] += take;
            placements[i].shares.push((d.server, take));
            placements[i].local_frames = take;
            need -= take;
        }
        // Overflow to the most-free other servers.
        while need > 0 {
            let best = (0..servers)
                .filter(|&s| s != home && room[s] > 0)
                .max_by_key(|&s| (room[s], std::cmp::Reverse(s)));
            match best {
                Some(s) => {
                    let take = need.min(room[s]);
                    room[s] -= take;
                    placed_on[s] += take;
                    placements[i].shares.push((NodeId(s as u32), take));
                    need -= take;
                }
                None => {
                    placements[i].unplaced_frames = need;
                    break;
                }
            }
        }
    }

    let mut weighted_local = 0f64;
    let mut weighted_total = 0f64;
    let mut feasible = true;
    for (i, p) in placements.iter().enumerate() {
        let w = demands[i].priority.max(1) as f64;
        let placed: u64 = p.shares.iter().map(|(_, n)| n).sum();
        weighted_local += w * p.local_frames as f64;
        weighted_total += w * (placed + p.unplaced_frames) as f64;
        if p.unplaced_frames > 0 {
            feasible = false;
        }
    }
    SizingPlan {
        shared_frames: placed_on,
        placements,
        weighted_local_fraction: if weighted_total > 0.0 {
            weighted_local / weighted_total
        } else {
            1.0
        },
        feasible,
    }
}

/// Apply a plan's budgets to the pool (only growing or shrinking budgets;
/// existing allocations may block a shrink, which is reported as an error).
pub fn apply(pool: &mut LogicalPool, plan: &SizingPlan) -> Result<(), PoolError> {
    for (s, &frames) in plan.shared_frames.iter().enumerate() {
        pool.resize_shared(NodeId(s as u32), frames * FRAME_BYTES)?;
    }
    Ok(())
}

/// Best-effort application for the periodic background task: each server's
/// budget moves toward the plan but never below what is currently
/// allocated (live spill shrinks on a later run, after migration frees
/// frames). Returns how many servers were resized.
pub fn apply_best_effort(pool: &mut LogicalPool, plan: &SizingPlan) -> usize {
    let mut applied = 0;
    for (s, &frames) in plan.shared_frames.iter().enumerate() {
        let server = NodeId(s as u32);
        if pool.node(server).is_failed() {
            continue;
        }
        let target = frames.max(pool.node(server).split().shared_used());
        if pool.resize_shared(server, target * FRAME_BYTES).is_ok() {
            applied += 1;
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_fits_locally() {
        let plan = solve(
            &[16, 16],
            &[4, 4],
            &[
                AppDemand {
                    server: NodeId(0),
                    bytes: 8 * FRAME_BYTES,
                    priority: 1,
                },
                AppDemand {
                    server: NodeId(1),
                    bytes: 8 * FRAME_BYTES,
                    priority: 1,
                },
            ],
        );
        assert!(plan.feasible);
        assert_eq!(plan.weighted_local_fraction, 1.0);
        assert_eq!(plan.shared_frames, vec![8, 8]);
    }

    #[test]
    fn overflow_spills_to_most_free() {
        let plan = solve(
            &[16, 16, 16],
            &[4, 4, 4],
            &[AppDemand {
                server: NodeId(0),
                bytes: 20 * FRAME_BYTES,
                priority: 1,
            }],
        );
        assert!(plan.feasible);
        let p = &plan.placements[0];
        assert_eq!(p.local_frames, 12);
        assert_eq!(p.shares.len(), 2);
        assert!(plan.weighted_local_fraction < 1.0);
    }

    #[test]
    fn priority_wins_local_memory() {
        // Two apps on server 0 both want all 12 poolable local frames.
        let demands = [
            AppDemand {
                server: NodeId(0),
                bytes: 12 * FRAME_BYTES,
                priority: 1,
            },
            AppDemand {
                server: NodeId(0),
                bytes: 12 * FRAME_BYTES,
                priority: 9,
            },
        ];
        let plan = solve(&[16, 16], &[4, 4], &demands);
        assert_eq!(plan.placements[1].local_frames, 12, "high priority local");
        assert_eq!(plan.placements[0].local_frames, 0, "low priority spilled");
    }

    #[test]
    fn infeasible_when_pool_too_small() {
        let plan = solve(
            &[8, 8],
            &[4, 4],
            &[AppDemand {
                server: NodeId(0),
                bytes: 100 * FRAME_BYTES,
                priority: 1,
            }],
        );
        assert!(!plan.feasible);
        assert!(plan.placements[0].unplaced_frames > 0);
    }

    #[test]
    fn private_floor_never_consumed() {
        let plan = solve(
            &[10, 10],
            &[10, 0],
            &[AppDemand {
                server: NodeId(0),
                bytes: 5 * FRAME_BYTES,
                priority: 1,
            }],
        );
        // Server 0 is fully private: demand spills entirely to server 1.
        assert_eq!(plan.shared_frames[0], 0);
        assert_eq!(plan.shared_frames[1], 5);
        assert_eq!(plan.placements[0].local_frames, 0);
    }

    #[test]
    fn deterministic_tie_breaks() {
        let demands = [
            AppDemand {
                server: NodeId(0),
                bytes: 4 * FRAME_BYTES,
                priority: 5,
            },
            AppDemand {
                server: NodeId(0),
                bytes: 4 * FRAME_BYTES,
                priority: 5,
            },
        ];
        let a = solve(&[16, 16], &[0, 0], &demands);
        let b = solve(&[16, 16], &[0, 0], &demands);
        assert_eq!(a, b);
        // Equal priority: input order wins.
        assert_eq!(a.placements[0].local_frames, 4);
    }
}
