//! The per-server runtime and application library (§3.2).
//!
//! "Implementing LMPs requires a per-server runtime and an application
//! library for allocating, controlling, and setting up disaggregated
//! memory access — for example, by mapping a range of virtual addresses to
//! memory in the pool. Furthermore, the runtime must execute at least two
//! background tasks: one for adjusting the size of shared regions to
//! minimize remote accesses, and another to find opportunities for buffer
//! migration."
//!
//! [`ServerRuntime`] is that library: applications allocate pool buffers
//! and receive **virtual addresses**; loads and stores go through the VA
//! map, so application code never handles segments directly.
//! [`RackRuntime`] hosts the two background tasks on configurable periods.

use crate::addr::{LogicalAddr, SegmentId};
use crate::balance::{BalanceRound, BalancerConfig, LocalityBalancer};
use crate::pool::{LogicalPool, Placement, PoolAccess, PoolError};
use crate::sizing::{apply_best_effort, solve as solve_sizing, AppDemand, SizingPlan};
use lmp_fabric::{Fabric, MemOp, NodeId};
use lmp_mem::FRAME_BYTES;
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// A virtual address handed to applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtAddr(pub u64);

impl std::fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Base of the pool-mapping region in each server's address space
/// (mirrors where mmap regions land on Linux x86-64).
const VA_BASE: u64 = 0x7f00_0000_0000;

/// Errors from the VA layer (wraps pool errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The virtual address is not mapped (or the access crosses the end of
    /// its mapping) — a segfault, reported rather than raised.
    Fault(VirtAddr),
    /// An underlying pool error.
    Pool(PoolError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Fault(va) => write!(f, "fault: {va} not mapped"),
            RuntimeError::Pool(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<PoolError> for RuntimeError {
    fn from(e: PoolError) -> Self {
        RuntimeError::Pool(e)
    }
}

/// One mapping: a segment visible at a VA range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mapping {
    segment: SegmentId,
    len: u64,
}

/// A server's pool-mapping address space plus its access API.
#[derive(Debug)]
pub struct ServerRuntime {
    server: NodeId,
    next_va: u64,
    /// base VA → mapping; ranges never overlap.
    maps: BTreeMap<u64, Mapping>,
    mapped_bytes: Counter,
}

impl ServerRuntime {
    /// The runtime for `server`.
    pub fn new(server: NodeId) -> Self {
        ServerRuntime {
            server,
            next_va: VA_BASE,
            maps: BTreeMap::new(),
            mapped_bytes: Counter::new(),
        }
    }

    /// The server this runtime manages.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// Allocate `len` bytes of pool memory and map it. Placement defaults
    /// to local-first, the policy that gives the LMP its speed.
    pub fn alloc_map(
        &mut self,
        pool: &mut LogicalPool,
        len: u64,
        placement: Option<Placement>,
    ) -> Result<VirtAddr, RuntimeError> {
        let seg = pool.alloc(
            len,
            placement.unwrap_or(Placement::LocalFirst(self.server)),
        )?;
        Ok(self.map(seg, len))
    }

    /// Map an existing segment (e.g. one shared by another server) at a
    /// fresh VA range. This is how two servers share one buffer: each maps
    /// the same segment into its own address space.
    pub fn map(&mut self, segment: SegmentId, len: u64) -> VirtAddr {
        let base = self.next_va;
        // Keep mappings frame-aligned like mmap.
        self.next_va += len.div_ceil(FRAME_BYTES) * FRAME_BYTES;
        self.maps.insert(base, Mapping { segment, len });
        self.mapped_bytes.add(len);
        VirtAddr(base)
    }

    /// Unmap a VA range, returning the segment (which keeps existing — the
    /// caller decides whether to free it from the pool).
    pub fn unmap(&mut self, va: VirtAddr) -> Result<SegmentId, RuntimeError> {
        match self.maps.remove(&va.0) {
            Some(m) => Ok(m.segment),
            None => Err(RuntimeError::Fault(va)),
        }
    }

    /// Translate a VA to its logical address, checking `len` stays within
    /// the mapping.
    pub fn resolve(&self, va: VirtAddr, len: u64) -> Result<LogicalAddr, RuntimeError> {
        let (base, m) = self
            .maps
            .range(..=va.0)
            .next_back()
            .ok_or(RuntimeError::Fault(va))?;
        let offset = va.0 - base;
        if offset + len > m.len {
            return Err(RuntimeError::Fault(va));
        }
        Ok(LogicalAddr::new(m.segment, offset))
    }

    /// Timed load of `len` bytes at `va`.
    pub fn load(
        &self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        va: VirtAddr,
        len: u64,
    ) -> Result<PoolAccess, RuntimeError> {
        let addr = self.resolve(va, len)?;
        Ok(pool.access(fabric, now, self.server, addr, len, MemOp::Read)?)
    }

    /// Timed store of `len` bytes at `va`.
    pub fn store(
        &self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        va: VirtAddr,
        len: u64,
    ) -> Result<PoolAccess, RuntimeError> {
        let addr = self.resolve(va, len)?;
        Ok(pool.access(fabric, now, self.server, addr, len, MemOp::Write)?)
    }

    /// Materialized write through the VA map.
    pub fn write_bytes(
        &self,
        pool: &mut LogicalPool,
        va: VirtAddr,
        data: &[u8],
    ) -> Result<(), RuntimeError> {
        let addr = self.resolve(va, data.len() as u64)?;
        Ok(pool.write_bytes(addr, data)?)
    }

    /// Materialized read through the VA map.
    pub fn read_bytes(
        &self,
        pool: &LogicalPool,
        va: VirtAddr,
        len: u64,
    ) -> Result<Vec<u8>, RuntimeError> {
        let addr = self.resolve(va, len)?;
        Ok(pool.read_bytes(addr, len)?)
    }

    /// Bytes currently mapped.
    pub fn mapped_bytes(&self) -> u64 {
        self.maps.values().map(|m| m.len).sum()
    }
}

/// Periods for the two background tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// How often the locality balancer runs.
    pub balance_period: SimDuration,
    /// How often the shared-region sizing optimizer runs.
    pub sizing_period: SimDuration,
    /// Balancer tuning.
    pub balancer: BalancerConfig,
    /// Per-server private floors in frames (memory the sizing optimizer
    /// must leave private: OS, process state). When `None`, each server's
    /// floor is derived from its current budget (`capacity − shared`),
    /// which freezes the split; set explicit floors to let the optimizer
    /// grow shared regions — the §4.5 flexibility.
    pub private_floors: Option<Vec<u64>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            balance_period: SimDuration::from_millis(10),
            sizing_period: SimDuration::from_millis(100),
            balancer: BalancerConfig::default(),
            private_floors: None,
        }
    }
}

/// The rack-wide runtime: per-server runtimes plus the background tasks.
#[derive(Debug)]
pub struct RackRuntime {
    config: RuntimeConfig,
    servers: Vec<ServerRuntime>,
    balancer: LocalityBalancer,
    demands: Vec<AppDemand>,
    next_balance: SimTime,
    next_sizing: SimTime,
    sizing_runs: Counter,
}

impl RackRuntime {
    /// Runtimes for every server of `pool`.
    pub fn new(pool: &LogicalPool, config: RuntimeConfig) -> Self {
        let servers = (0..pool.servers()).map(|s| ServerRuntime::new(NodeId(s))).collect();
        let balancer = LocalityBalancer::new(config.balancer.clone());
        RackRuntime {
            next_balance: SimTime::ZERO + config.balance_period,
            next_sizing: SimTime::ZERO + config.sizing_period,
            config,
            servers,
            balancer,
            demands: Vec::new(),
            sizing_runs: Counter::new(),
        }
    }

    /// A server's runtime.
    pub fn server(&mut self, id: NodeId) -> &mut ServerRuntime {
        &mut self.servers[id.0 as usize]
    }

    /// Declare an application demand that future sizing runs must honour.
    pub fn register_demand(&mut self, demand: AppDemand) {
        self.demands.push(demand);
    }

    /// Drive background tasks up to `now`. Returns whatever rounds ran.
    pub fn tick(
        &mut self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
    ) -> (Option<BalanceRound>, Option<SizingPlan>) {
        let mut round = None;
        if now >= self.next_balance {
            round = Some(self.balancer.run_round(pool, fabric, now));
            self.next_balance = now + self.config.balance_period;
        }
        let mut plan = None;
        if now >= self.next_sizing && !self.demands.is_empty() {
            let capacities: Vec<u64> =
                (0..pool.servers()).map(|s| pool.node(NodeId(s)).split().total()).collect();
            let floors: Vec<u64> = match &self.config.private_floors {
                Some(f) => {
                    // lmp-lint: allow(no-panic) — startup config validation; a
                    // floors vector of the wrong arity is a harness-
                    // configuration bug.
                    assert_eq!(f.len(), capacities.len(), "one floor per server");
                    f.clone()
                }
                None => (0..pool.servers())
                    .map(|s| {
                        let split = pool.node(NodeId(s)).split();
                        split.total() - split.shared_budget().max(split.shared_used())
                    })
                    .collect(),
            };
            let p = solve_sizing(&capacities, &floors, &self.demands);
            // Best-effort: a shrink blocked by live allocations is retried
            // on a later run once migration frees the frames.
            apply_best_effort(pool, &p);
            self.sizing_runs.inc();
            self.next_sizing = now + self.config.sizing_period;
            plan = Some(p);
        }
        (round, plan)
    }

    /// The balancing daemon (telemetry).
    pub fn balancer(&self) -> &LocalityBalancer {
        &self.balancer
    }

    /// Sizing runs executed.
    pub fn sizing_runs(&self) -> u64 {
        self.sizing_runs.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use lmp_fabric::LinkProfile;
    use lmp_mem::DramProfile;

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 3,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 12 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 3))
    }

    #[test]
    fn va_round_trip() {
        let (mut pool, _) = setup();
        let mut rt = ServerRuntime::new(NodeId(0));
        let va = rt.alloc_map(&mut pool, 3 * FRAME_BYTES, None).unwrap();
        rt.write_bytes(&mut pool, va, b"through the VA layer").unwrap();
        assert_eq!(
            rt.read_bytes(&pool, va, 20).unwrap(),
            b"through the VA layer"
        );
        assert_eq!(rt.mapped_bytes(), 3 * FRAME_BYTES);
    }

    #[test]
    fn va_interior_pointers_resolve() {
        let (mut pool, _) = setup();
        let mut rt = ServerRuntime::new(NodeId(0));
        let va = rt.alloc_map(&mut pool, 2 * FRAME_BYTES, None).unwrap();
        let inner = VirtAddr(va.0 + FRAME_BYTES + 17);
        rt.write_bytes(&mut pool, inner, b"interior").unwrap();
        assert_eq!(rt.read_bytes(&pool, inner, 8).unwrap(), b"interior");
        let addr = rt.resolve(inner, 8).unwrap();
        assert_eq!(addr.offset, FRAME_BYTES + 17);
    }

    #[test]
    fn faults_on_unmapped_and_overrun() {
        let (mut pool, _) = setup();
        let mut rt = ServerRuntime::new(NodeId(0));
        assert!(matches!(
            rt.read_bytes(&pool, VirtAddr(VA_BASE), 1),
            Err(RuntimeError::Fault(_))
        ));
        let va = rt.alloc_map(&mut pool, 100, None).unwrap();
        assert!(matches!(
            rt.read_bytes(&pool, VirtAddr(va.0 + 90), 20),
            Err(RuntimeError::Fault(_))
        ));
        // Below the first mapping also faults.
        assert!(matches!(
            rt.resolve(VirtAddr(VA_BASE - 8), 1),
            Err(RuntimeError::Fault(_))
        ));
    }

    #[test]
    fn mappings_do_not_overlap() {
        let (mut pool, _) = setup();
        let mut rt = ServerRuntime::new(NodeId(0));
        let a = rt.alloc_map(&mut pool, FRAME_BYTES + 1, None).unwrap();
        let b = rt.alloc_map(&mut pool, FRAME_BYTES, None).unwrap();
        assert!(b.0 >= a.0 + 2 * FRAME_BYTES, "frame-aligned, disjoint");
    }

    #[test]
    fn shared_mapping_sees_other_servers_writes() {
        let (mut pool, _) = setup();
        let mut rt0 = ServerRuntime::new(NodeId(0));
        let mut rt1 = ServerRuntime::new(NodeId(1));
        let va0 = rt0.alloc_map(&mut pool, FRAME_BYTES, None).unwrap();
        let seg = rt0.resolve(va0, 1).unwrap().segment;
        let va1 = rt1.map(seg, FRAME_BYTES);
        rt0.write_bytes(&mut pool, va0, b"shared!").unwrap();
        assert_eq!(rt1.read_bytes(&pool, va1, 7).unwrap(), b"shared!");
    }

    #[test]
    fn unmap_keeps_segment_alive() {
        let (mut pool, _) = setup();
        let mut rt = ServerRuntime::new(NodeId(0));
        let va = rt.alloc_map(&mut pool, FRAME_BYTES, None).unwrap();
        let seg = rt.unmap(va).unwrap();
        assert!(pool.segment_len(seg).is_some(), "segment still allocated");
        assert!(matches!(
            rt.read_bytes(&pool, va, 1),
            Err(RuntimeError::Fault(_))
        ));
        pool.free(seg).unwrap();
    }

    #[test]
    fn background_tasks_fire_on_schedule() {
        let (mut pool, mut fabric) = setup();
        let mut rack = RackRuntime::new(&pool, RuntimeConfig::default());
        rack.register_demand(AppDemand {
            server: NodeId(0),
            bytes: 4 * FRAME_BYTES,
            priority: 1,
        });
        // Before the periods elapse: nothing runs.
        let (r, p) = rack.tick(&mut pool, &mut fabric, SimTime::from_nanos(1));
        assert!(r.is_none() && p.is_none());
        // At 10ms the balancer runs; at 100ms sizing runs too.
        let (r, _) = rack.tick(&mut pool, &mut fabric, SimTime::ZERO + SimDuration::from_millis(10));
        assert!(r.is_some());
        let (_, p) = rack.tick(&mut pool, &mut fabric, SimTime::ZERO + SimDuration::from_millis(100));
        assert!(p.is_some());
        assert_eq!(rack.sizing_runs(), 1);
    }

    #[test]
    fn runtime_load_times_match_pool_access() {
        let (mut pool, mut fabric) = setup();
        let mut rt = ServerRuntime::new(NodeId(0));
        let va = rt.alloc_map(&mut pool, FRAME_BYTES, None).unwrap();
        let a = rt.load(&mut pool, &mut fabric, SimTime::ZERO, va, 64).unwrap();
        assert_eq!(a.remote_bytes, 0);
        assert!(a.complete.as_nanos() < 200);
    }
}
