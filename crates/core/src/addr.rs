//! The logical address space.
//!
//! §5 "Address translation": pool buffers are named by **logical addresses**
//! that survive migration. A logical address is a `(segment, offset)` pair —
//! the segment is the allocation unit (a buffer), the offset a byte index
//! within it. Translation to a physical location happens in two steps
//! (segment → server, then offset → frame within the server), implemented
//! in [`crate::translate`].

use lmp_mem::FRAME_BYTES;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a pool buffer (allocation unit). Never reused.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SegmentId(pub u64);

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A byte address in the logical pool: `(segment, offset)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LogicalAddr {
    /// The buffer.
    pub segment: SegmentId,
    /// Byte offset within the buffer.
    pub offset: u64,
}

impl LogicalAddr {
    /// Address of `offset` within `segment`.
    pub fn new(segment: SegmentId, offset: u64) -> Self {
        LogicalAddr { segment, offset }
    }

    /// The frame index within the segment this address falls in.
    pub fn frame_index(&self) -> u64 {
        self.offset / FRAME_BYTES
    }

    /// The byte offset within that frame.
    pub fn frame_offset(&self) -> u64 {
        self.offset % FRAME_BYTES
    }

    /// The address `delta` bytes further into the segment. Saturates at
    /// `u64::MAX`; a saturated offset is past any segment's length, so
    /// downstream bounds checks reject it.
    pub fn add(&self, delta: u64) -> LogicalAddr {
        LogicalAddr {
            segment: self.segment,
            offset: self.offset.saturating_add(delta),
        }
    }
}

impl fmt::Display for LogicalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{:#x}", self.segment, self.offset)
    }
}

/// Split the byte range `[addr.offset, addr.offset + len)` of a segment
/// into per-frame `(frame_index, frame_offset, chunk_len)` pieces — the
/// granularity at which hardware (and our simulator) actually operates.
pub fn frame_chunks(addr: LogicalAddr, len: u64) -> Vec<(u64, u64, u64)> {
    let mut out = Vec::new();
    let mut off = addr.offset;
    let end = addr.offset.saturating_add(len);
    while off < end {
        let frame = off / FRAME_BYTES;
        let within = off % FRAME_BYTES;
        // `within < FRAME_BYTES` (it is a remainder) and `off < end` (loop
        // guard), so neither subtraction can underflow.
        let chunk = FRAME_BYTES
            .saturating_sub(within)
            .min(end.saturating_sub(off));
        out.push((frame, within, chunk));
        off = off.saturating_add(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_index_and_offset() {
        let a = LogicalAddr::new(SegmentId(1), FRAME_BYTES + 5);
        assert_eq!(a.frame_index(), 1);
        assert_eq!(a.frame_offset(), 5);
    }

    #[test]
    fn add_advances_offset_only() {
        let a = LogicalAddr::new(SegmentId(2), 10).add(20);
        assert_eq!(a.segment, SegmentId(2));
        assert_eq!(a.offset, 30);
    }

    #[test]
    fn chunks_within_one_frame() {
        let a = LogicalAddr::new(SegmentId(0), 100);
        assert_eq!(frame_chunks(a, 50), vec![(0, 100, 50)]);
    }

    #[test]
    fn chunks_split_at_frame_boundaries() {
        let a = LogicalAddr::new(SegmentId(0), FRAME_BYTES - 10);
        let chunks = frame_chunks(a, 20);
        assert_eq!(
            chunks,
            vec![(0, FRAME_BYTES - 10, 10), (1, 0, 10)]
        );
    }

    #[test]
    fn chunks_cover_exactly() {
        let a = LogicalAddr::new(SegmentId(0), 12345);
        let len = 3 * FRAME_BYTES + 777;
        let chunks = frame_chunks(a, len);
        let total: u64 = chunks.iter().map(|c| c.2).sum();
        assert_eq!(total, len);
        // Contiguity.
        let mut pos = a.offset;
        for (frame, within, chunk) in chunks {
            assert_eq!(frame * FRAME_BYTES + within, pos);
            pos += chunk;
        }
    }

    #[test]
    fn zero_length_has_no_chunks() {
        assert!(frame_chunks(LogicalAddr::new(SegmentId(0), 5), 0).is_empty());
    }
}
