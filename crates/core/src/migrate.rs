//! Buffer migration (§5 "Locality balancing" mechanism).
//!
//! Migration moves a segment's frames to another server **without changing
//! its logical address**: the coarse map entry is updated and its epoch
//! bumped; translation caches that still point at the old server fault on
//! the holder's fine map and re-resolve. Data is pulled by the destination
//! over the fabric, so migrations contend with foreground traffic —
//! the cost the balancer must weigh.

use crate::addr::SegmentId;
use crate::pool::{LogicalPool, PoolError};
use lmp_fabric::{Fabric, NodeId};
use lmp_mem::{RegionKind, FRAME_BYTES};
use lmp_sim::prelude::*;

/// Outcome of one migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// The migrated segment.
    pub segment: SegmentId,
    /// Previous holder.
    pub from: NodeId,
    /// New holder.
    pub to: NodeId,
    /// Bytes copied across the fabric.
    pub bytes: u64,
    /// When the copy (and map switch) completed.
    pub complete: SimTime,
    /// The segment's new epoch.
    pub new_epoch: u64,
}

/// Migrate `seg` to server `dst`. No-op (zero-byte report) when `dst`
/// already holds it.
///
/// The copy is destination-pull: `dst` reads every frame from the source
/// over the fabric, then the maps switch atomically (the simulator's
/// single-threaded step; real hardware would use a short write-block
/// window). Old translations are invalidated lazily via the epoch bump.
pub fn migrate_segment(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    now: SimTime,
    seg: SegmentId,
    dst: NodeId,
) -> Result<MigrationReport, PoolError> {
    let loc = pool
        .global_map()
        .peek(seg)
        .ok_or(PoolError::UnknownSegment(seg))?;
    let src = loc.server;
    if src == dst {
        return Ok(MigrationReport {
            segment: seg,
            from: src,
            to: dst,
            bytes: 0,
            complete: now,
            new_epoch: loc.epoch,
        });
    }
    if pool.node(src).is_failed() {
        return Err(PoolError::SegmentLost(seg));
    }
    if pool.node(dst).is_failed() {
        return Err(PoolError::ServerDown(dst));
    }
    let src_frames = pool.local_map(src).frames_of(seg).to_vec();
    let n = src_frames.len() as u64;
    // Reserve destination frames first; all-or-nothing.
    let dst_frames = pool
        .node_raw(dst)
        .alloc_many(RegionKind::Shared, n)
        .map_err(|_| PoolError::Capacity {
            requested_frames: n,
        })?;

    // Pull every frame across the fabric (timing) and copy contents
    // (correctness).
    let mut complete = now;
    {
        let (src_node, dst_node) = pool.two_nodes(src, dst);
        for (sf, df) in src_frames.iter().zip(dst_frames.iter()) {
            let data = src_node.read_frame(*sf);
            dst_node.write_frame(*df, &data);
            let fc = fabric.read(now, dst, src, FRAME_BYTES);
            // Source DRAM read + destination DRAM write also occupy time.
            let sd = src_node.access(now, FRAME_BYTES, dst.0, false, Some(*sf));
            let dd = dst_node.access(fc.complete, FRAME_BYTES, dst.0, true, Some(*df));
            complete = complete.max(fc.complete).max(sd.complete).max(dd.complete);
        }
    }

    // Switch the maps: install at destination, free at source, bump epoch.
    pool.local_mut(dst).insert(seg, dst_frames);
    if let Some(frames) = pool.local_mut(src).remove(seg) {
        for f in frames {
            pool.node_raw(src)
                .free(f)
                .map_err(|_| PoolError::Internal("migrated frame was not allocated"))?;
        }
    }
    let new_loc = pool.global_mut().relocate(seg, dst);
    let report = MigrationReport {
        segment: seg,
        from: src,
        to: dst,
        bytes: n * FRAME_BYTES,
        complete,
        new_epoch: new_loc.epoch,
    };
    if let Some(t) = pool.telemetry_mut() {
        t.on_migration(&report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LogicalAddr;
    use crate::pool::{Placement, PoolConfig};
    use lmp_fabric::{LinkProfile, MemOp};
    use lmp_mem::DramProfile;

    fn setup() -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 3,
            capacity_per_server: 16 * FRAME_BYTES,
            shared_per_server: 8 * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 3))
    }

    #[test]
    fn data_survives_migration_at_same_address() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(2 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, FRAME_BYTES - 3);
        p.write_bytes(addr, b"pointer-stable").unwrap();

        let r = migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(2)).unwrap();
        assert_eq!(r.from, NodeId(0));
        assert_eq!(r.to, NodeId(2));
        assert_eq!(r.bytes, 2 * FRAME_BYTES);
        assert_eq!(r.new_epoch, 1);
        assert_eq!(p.holder_of(seg), Some(NodeId(2)));
        // Same logical address still reads the same bytes.
        assert_eq!(p.read_bytes(addr, 14).unwrap(), b"pointer-stable");
        // Source frames were returned.
        assert_eq!(p.free_shared_frames(NodeId(0)), 8);
    }

    #[test]
    fn migration_to_self_is_noop() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let r = migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(1)).unwrap();
        assert_eq!(r.bytes, 0);
        assert_eq!(r.new_epoch, 0);
    }

    #[test]
    fn migration_takes_fabric_time() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(4 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let r = migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(1)).unwrap();
        // 8 MiB at 21 GB/s is ~400us minimum.
        assert!(
            r.complete.as_nanos() > 300_000,
            "migration suspiciously fast: {}",
            r.complete
        );
    }

    #[test]
    fn stale_translations_fault_and_recover() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, 0);
        // Server 1 caches the translation.
        p.access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(2)).unwrap();
        // Next access faults once, then succeeds against the new holder.
        let a = p
            .access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        assert_eq!(a.faults, 1);
        let b = p
            .access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        assert_eq!(b.faults, 0);
        assert_eq!(p.tlb(NodeId(1)).unwrap().stale_count(), 1);
    }

    #[test]
    fn round_trip_migration_still_faults_stale_entries() {
        // Regression: the TLB fast path used to verify only that the cached
        // server still *holds* the segment. After an A→B→A round trip that
        // is true again, so an entry cached before the trip (epoch 0)
        // validated silently even though the segment is now at epoch 2 —
        // the fault went uncounted and the balancer's cost model undercounted
        // migration churn. The fast path now compares epochs too.
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, 0);
        // Server 1 caches (server 0, epoch 0).
        p.access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(2)).unwrap();
        migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(0)).unwrap();
        assert_eq!(p.holder_of(seg), Some(NodeId(0)), "back home at epoch 2");
        let a = p
            .access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        assert_eq!(a.faults, 1, "epoch mismatch must fault, not validate");
        assert_eq!(p.tlb(NodeId(1)).unwrap().stale_count(), 1);
        // The refill healed the entry: the next access is fault-free.
        let b = p
            .access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        assert_eq!(b.faults, 0);
    }

    #[test]
    fn migration_making_access_local() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, 0);
        let before = p
            .access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        assert!(before.remote_bytes > 0);
        migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(1)).unwrap();
        let after = p
            .access(&mut f, SimTime::ZERO, NodeId(1), addr, 64, MemOp::Read)
            .unwrap();
        assert_eq!(after.remote_bytes, 0);
        assert_eq!(after.local_bytes, 64);
    }

    #[test]
    fn migration_fails_without_destination_room() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(8 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        p.alloc(8 * FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let r = migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(1));
        assert!(matches!(r, Err(PoolError::Capacity { .. })));
        // Source untouched.
        assert_eq!(p.holder_of(seg), Some(NodeId(0)));
    }

    #[test]
    fn migration_from_crashed_source_fails() {
        let (mut p, mut f) = setup();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        p.crash_server(NodeId(0));
        let r = migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(1));
        assert_eq!(r, Err(PoolError::SegmentLost(seg)));
    }
}
