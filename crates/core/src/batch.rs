//! Batched scatter-gather access.
//!
//! A [`BatchOp`] list describes many logical reads/writes issued together;
//! [`crate::pool::LogicalPool::access_batch`] resolves them with one
//! translation per distinct segment, coalesces adjacent frame chunks on
//! the same holder into single DRAM runs and fabric transfers, and
//! pipelines each holder's stream — so a batch completes at the *max* over
//! holders of their pipelined streams instead of the sum of serialized
//! single ops. The single-op path is a batch of one: both share one
//! frame-walk, one validation order, and one commit discipline.

use crate::addr::LogicalAddr;
use crate::pool::PoolAccess;
use lmp_fabric::{MemOp, NodeId};
use lmp_sim::engine::Engine;
use lmp_sim::prelude::*;

/// One operation in a scatter-gather batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOp {
    /// Where the operation starts.
    pub addr: LogicalAddr,
    /// Bytes to read or write.
    pub len: u64,
    /// Direction.
    pub op: MemOp,
}

impl BatchOp {
    /// A batched read of `len` bytes at `addr`.
    pub fn read(addr: LogicalAddr, len: u64) -> Self {
        BatchOp {
            addr,
            len,
            op: MemOp::Read,
        }
    }

    /// A batched write of `len` bytes at `addr`.
    pub fn write(addr: LogicalAddr, len: u64) -> Self {
        BatchOp {
            addr,
            len,
            op: MemOp::Write,
        }
    }
}

/// Outcome of one batched access.
///
/// The batch is atomic with respect to accounting: on any error (bounds,
/// crashed node, down port) **no** counters, DRAM occupancy, or fabric
/// traffic have been charged — validation runs to completion before the
/// first commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// When the last op completes at the requester.
    pub complete: SimTime,
    /// Per-op outcomes, in submission order.
    pub ops: Vec<PoolAccess>,
    /// Total bytes served from the requester's own memory.
    pub local_bytes: u64,
    /// Total bytes that crossed the fabric.
    pub remote_bytes: u64,
    /// Translation faults taken across the batch (stale cache entries;
    /// one per distinct stale segment, exactly as a one-by-one issue
    /// order would take them).
    pub faults: u32,
    /// When each holder's pipelined stream(s) finish, ordered by node id,
    /// one entry per distinct holder touched by the batch. This is the
    /// hand-off to the event kernel: a driver schedules **one** completion
    /// event per holder (see [`schedule_holder_completions`]) instead of
    /// one per chunk.
    pub holder_done: Vec<(NodeId, SimTime)>,
}

/// Schedule one completion event per holder of a finished
/// [`BatchResult`], in a single atomic [`Engine::schedule_batch`] pass.
///
/// `mk_event` turns each `(holder, done)` pair into the caller's event
/// payload. Returns the scheduled ids in `holder_done` order (ascending
/// node id). This is the canonical bridge between the scatter-gather
/// access engine (which reports *when* each holder's stream drains) and
/// the calendar-queue kernel (which wants the whole wave inserted at
/// once): a batch touching H holders costs H queue insertions, not one
/// per chunk or per op.
///
/// # Errors
/// Propagates [`SchedulePastError`] if any completion time precedes the
/// engine clock (possible only if the batch was issued at a time earlier
/// than `eng.now()`); nothing is scheduled in that case.
pub fn schedule_holder_completions<E>(
    eng: &mut Engine<E>,
    result: &BatchResult,
    mut mk_event: impl FnMut(NodeId, SimTime) -> E,
) -> Result<Vec<EventId>, SchedulePastError> {
    eng.schedule_batch(
        result
            .holder_done
            .iter()
            .map(|&(holder, done)| (done, mk_event(holder, done)))
            .collect::<Vec<_>>(),
    )
}
