//! Lease-based failure detection and epoch-versioned membership.
//!
//! Nothing in `failure.rs` *notices* a crash — recovery only runs when a
//! caller hands [`crate::failure::ProtectionManager::recover`] a segment
//! list. This module supplies the missing sensor: a heartbeat detector
//! that sweeps the rack through [`Fabric::probe`] and walks each node
//! through **Healthy → Suspected → Down** on evidence, never on a single
//! missed beat.
//!
//! The two thresholds separate a NIC flap from a crash:
//!
//! * `suspect_after` consecutive missed beats ⇒ *Suspected* (cheap, fast,
//!   reversible — any successful beat clears it);
//! * *Down* is confirmed only once no beat has succeeded for a full
//!   `lease` window. A port that flaps shorter than the lease can never
//!   be confirmed, so flaps never trigger spurious recovery.
//!
//! Confirmed transitions (Down, and later Rejoined) bump the cluster
//! [`Membership`] epoch. Recovery is tagged with the epoch it ran under,
//! and a restarted server announcing a pre-crash epoch is refused
//! resurrection of segments the pool already rebuilt (see
//! [`Membership::may_resurrect`]).

use lmp_fabric::{Fabric, FabricError, NodeId};
use lmp_sim::prelude::*;

/// Tuning knobs for the failure detector and recovery orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Interval between rack-wide probe sweeps.
    pub probe_interval: SimDuration,
    /// Consecutive missed beats before a node becomes Suspected.
    pub suspect_after: u32,
    /// A node is confirmed Down only when no beat has succeeded for this
    /// long. Must exceed the longest port flap the deployment tolerates.
    pub lease: SimDuration,
    /// Maximum segments recovered per orchestrator step (throttling, so
    /// reconstruction traffic never monopolizes the fabric).
    pub recovery_batch: usize,
    /// Interval between orchestrator steps while work is pending.
    pub recovery_tick: SimDuration,
}

impl HealthConfig {
    /// Defaults matched to the chaos scenarios: sweep every 500 ns,
    /// suspect after 2 misses (1 µs of silence), confirm after a 3 µs
    /// lease — longer than any injected flap, far shorter than a crash
    /// outage — and rebuild one segment per 500 ns tick.
    pub fn default_chaos() -> Self {
        HealthConfig {
            probe_interval: SimDuration::from_nanos(500),
            suspect_after: 2,
            lease: SimDuration::from_micros(3),
            recovery_batch: 1,
            recovery_tick: SimDuration::from_nanos(500),
        }
    }
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self::default_chaos()
    }
}

/// Detector-side view of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    /// Beating normally.
    Healthy,
    /// Missed `suspect_after` consecutive beats; lease still running.
    Suspected,
    /// Lease expired with no successful beat: confirmed failed.
    Down,
}

/// A confirmed or provisional health transition, in sweep order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// Consecutive misses crossed the suspicion threshold.
    Suspected {
        /// The node under suspicion.
        node: NodeId,
        /// When the threshold was crossed.
        at: SimTime,
    },
    /// A beat succeeded before the lease expired; suspicion withdrawn.
    Cleared {
        /// The node cleared.
        node: NodeId,
        /// When the clearing beat arrived.
        at: SimTime,
    },
    /// The lease expired: the node is Down and the epoch has advanced.
    /// Recovery should start now.
    ConfirmedDown {
        /// The confirmed-failed node.
        node: NodeId,
        /// Confirmation time.
        at: SimTime,
        /// The membership epoch this confirmation created.
        epoch: u64,
    },
    /// A confirmed-Down node is beating again; it rejoins under a fresh
    /// epoch (its pre-crash state stays dead — see
    /// [`Membership::may_resurrect`]).
    Rejoined {
        /// The returning node.
        node: NodeId,
        /// When its beat reappeared.
        at: SimTime,
        /// The membership epoch its rejoin created.
        epoch: u64,
    },
}

/// One probe attempt's evidence, for auditing detector decisions.
/// `ok` records whether the target echoed; attempts where the *prober*
/// could not transmit are inconclusive and never logged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The probed node.
    pub node: NodeId,
    /// When the probe ran.
    pub at: SimTime,
    /// Whether the target echoed.
    pub ok: bool,
}

/// Epoch-versioned cluster membership. Every confirmed transition —
/// a node leaving (ConfirmedDown) or returning (Rejoined) — bumps the
/// epoch, giving recovery actions a total order to be tagged with.
#[derive(Debug, Clone)]
pub struct Membership {
    epoch: u64,
    /// Epoch at which each node last joined (0 = founding member).
    incarnation: Vec<u64>,
    /// Epoch at which each node was last confirmed Down, if ever.
    down_at: Vec<Option<u64>>,
}

impl Membership {
    /// A founding membership of `nodes` servers at epoch 0.
    pub fn new(nodes: u32) -> Self {
        Membership {
            epoch: 0,
            incarnation: vec![0; nodes as usize],
            down_at: vec![None; nodes as usize],
        }
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch under which `node` last joined the cluster.
    pub fn incarnation(&self, node: NodeId) -> u64 {
        self.incarnation[node.0 as usize]
    }

    /// Whether `node` is currently confirmed out of the membership.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down_at[node.0 as usize]
            .is_some_and(|d| d >= self.incarnation[node.0 as usize])
    }

    /// Record `node` as confirmed Down; returns the new epoch.
    pub fn confirm_down(&mut self, node: NodeId) -> u64 {
        self.epoch += 1;
        self.down_at[node.0 as usize] = Some(self.epoch);
        self.epoch
    }

    /// Record `node` as rejoined under a fresh incarnation; returns the
    /// new epoch.
    pub fn rejoin(&mut self, node: NodeId) -> u64 {
        self.epoch += 1;
        self.incarnation[node.0 as usize] = self.epoch;
        self.epoch
    }

    /// Whether a returning `node` that last observed `claimed_epoch` may
    /// re-register the segments it claims to still hold. Only allowed when
    /// no confirmation happened after its claim — i.e. the node was never
    /// declared Down since (a suspicion that cleared does not count).
    /// After a confirmed Down, the pool has rebuilt (or written off) its
    /// segments, so a stale claim must not resurrect them.
    pub fn may_resurrect(&self, node: NodeId, claimed_epoch: u64) -> bool {
        match self.down_at[node.0 as usize] {
            Some(d) => d <= claimed_epoch,
            None => true,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    health: NodeHealth,
    /// Last time a probe of this node succeeded (or detector start).
    last_beat: SimTime,
    /// Consecutive missed beats since the last success.
    misses: u32,
}

/// The lease/heartbeat failure detector. Call
/// [`FailureDetector::probe_tick`] on a fixed cadence; it sweeps every
/// node and returns the health transitions the sweep produced.
#[derive(Debug)]
pub struct FailureDetector {
    cfg: HealthConfig,
    nodes: Vec<NodeState>,
    membership: Membership,
    audit: Vec<ProbeOutcome>,
    suspicions: u64,
    confirmations: u64,
}

impl FailureDetector {
    /// A detector over `nodes` servers, all Healthy, leases starting at
    /// `start`.
    pub fn new(cfg: HealthConfig, nodes: u32, start: SimTime) -> Self {
        // lmp-lint: allow(no-panic) — documented ctor precondition on
        // HealthConfig; an inverted config is a setup bug.
        assert!(cfg.suspect_after >= 1, "suspicion needs at least one miss");
        // lmp-lint: allow(no-panic) — documented ctor precondition: a lease
        // shorter than the probe interval can never be renewed.
        assert!(
            cfg.lease > cfg.probe_interval,
            "lease shorter than one probe interval confirms on any hiccup"
        );
        FailureDetector {
            cfg,
            nodes: vec![
                NodeState {
                    health: NodeHealth::Healthy,
                    last_beat: start,
                    misses: 0,
                };
                nodes as usize
            ],
            membership: Membership::new(nodes),
            audit: Vec::new(),
            suspicions: 0,
            confirmations: 0,
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Current health of `node`.
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.nodes[node.0 as usize].health
    }

    /// The epoch-versioned membership view.
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.membership.epoch()
    }

    /// Total suspicions raised (including ones later cleared).
    pub fn suspicion_count(&self) -> u64 {
        self.suspicions
    }

    /// Total Down confirmations.
    pub fn confirmation_count(&self) -> u64 {
        self.confirmations
    }

    /// Every conclusive probe attempt so far, in sweep order. The
    /// lease property is auditable from this log: no node is ever
    /// confirmed Down at `t` if any `ok` probe of it landed in
    /// `(t − lease, t]`.
    pub fn probe_log(&self) -> &[ProbeOutcome] {
        &self.audit
    }

    /// One rack-wide sweep at `now`: probe every node from the lowest-id
    /// healthy peer (skipping probers whose own port cannot transmit —
    /// that is evidence about the prober, not the target) and apply the
    /// state machine. Returns the transitions in node order.
    pub fn probe_tick(&mut self, fabric: &mut Fabric, now: SimTime) -> Vec<HealthEvent> {
        let n = self.nodes.len() as u32;
        let mut events = Vec::new();
        for t in 0..n {
            let target = NodeId(t);
            // Deterministic prober choice: lowest-id node the detector
            // currently believes Healthy, falling through to the next
            // candidate when a prober's own port is down.
            let mut outcome = None;
            for p in 0..n {
                let prober = NodeId(p);
                if prober == target || self.nodes[p as usize].health != NodeHealth::Healthy {
                    continue;
                }
                match fabric.probe(now, prober, target) {
                    Ok(_) => {
                        outcome = Some(true);
                        break;
                    }
                    Err(FabricError::HolderDown(_)) => {
                        outcome = Some(false);
                        break;
                    }
                    // The prober itself could not transmit (or the probe
                    // was malformed): inconclusive for the target; try the
                    // next prober.
                    Err(FabricError::RequesterDown(_) | FabricError::Contract(_)) => continue,
                }
            }
            let Some(ok) = outcome else { continue };
            self.audit.push(ProbeOutcome {
                node: target,
                at: now,
                ok,
            });
            if ok {
                self.beat(target, now, &mut events);
            } else {
                self.miss(target, now, &mut events);
            }
        }
        events
    }

    fn beat(&mut self, node: NodeId, now: SimTime, events: &mut Vec<HealthEvent>) {
        let s = &mut self.nodes[node.0 as usize];
        s.last_beat = now;
        s.misses = 0;
        match s.health {
            NodeHealth::Healthy => {}
            NodeHealth::Suspected => {
                s.health = NodeHealth::Healthy;
                events.push(HealthEvent::Cleared { node, at: now });
            }
            NodeHealth::Down => {
                s.health = NodeHealth::Healthy;
                let epoch = self.membership.rejoin(node);
                events.push(HealthEvent::Rejoined {
                    node,
                    at: now,
                    epoch,
                });
            }
        }
    }

    fn miss(&mut self, node: NodeId, now: SimTime, events: &mut Vec<HealthEvent>) {
        let lease = self.cfg.lease;
        let suspect_after = self.cfg.suspect_after;
        let s = &mut self.nodes[node.0 as usize];
        s.misses += 1;
        match s.health {
            NodeHealth::Healthy if s.misses >= suspect_after => {
                s.health = NodeHealth::Suspected;
                self.suspicions += 1;
                events.push(HealthEvent::Suspected { node, at: now });
            }
            NodeHealth::Suspected if now.duration_since(s.last_beat) >= lease => {
                s.health = NodeHealth::Down;
                self.confirmations += 1;
                let epoch = self.membership.confirm_down(node);
                events.push(HealthEvent::ConfirmedDown {
                    node,
                    at: now,
                    epoch,
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;

    fn us(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000)
    }

    fn sweep_until(
        det: &mut FailureDetector,
        fabric: &mut Fabric,
        from_ns: u64,
        to_ns: u64,
    ) -> Vec<HealthEvent> {
        let step = det.config().probe_interval.as_nanos();
        let mut all = Vec::new();
        let mut t = from_ns;
        while t <= to_ns {
            all.extend(det.probe_tick(fabric, SimTime::from_nanos(t)));
            t += step;
        }
        all
    }

    #[test]
    fn crash_walks_healthy_suspected_down() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        let mut d = FailureDetector::new(HealthConfig::default_chaos(), 3, SimTime::ZERO);
        f.set_port_down(NodeId(1), true);
        let events = sweep_until(&mut d, &mut f, 500, 5_000);
        assert_eq!(d.health(NodeId(1)), NodeHealth::Down);
        // Suspected after 2 misses (1 µs), confirmed once the 3 µs lease
        // from last_beat (t=0) expired.
        assert!(matches!(
            events[0],
            HealthEvent::Suspected { node: NodeId(1), at } if at == SimTime::from_nanos(1_000)
        ));
        assert!(matches!(
            events[1],
            HealthEvent::ConfirmedDown { node: NodeId(1), at, epoch: 1 } if at == us(3)
        ));
        assert_eq!(d.epoch(), 1);
        assert!(d.membership().is_down(NodeId(1)));
    }

    #[test]
    fn short_flap_suspects_then_clears_without_confirming() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        let mut d = FailureDetector::new(HealthConfig::default_chaos(), 3, SimTime::ZERO);
        sweep_until(&mut d, &mut f, 500, 2_000);
        f.set_port_down(NodeId(2), true);
        let ev = sweep_until(&mut d, &mut f, 2_500, 4_000);
        assert_eq!(
            ev,
            vec![HealthEvent::Suspected {
                node: NodeId(2),
                at: SimTime::from_nanos(3_000)
            }]
        );
        f.set_port_down(NodeId(2), false);
        let ev = sweep_until(&mut d, &mut f, 4_500, 5_000);
        assert_eq!(
            ev,
            vec![HealthEvent::Cleared {
                node: NodeId(2),
                at: SimTime::from_nanos(4_500)
            }]
        );
        assert_eq!(d.epoch(), 0, "no confirmation, no epoch change");
        assert_eq!(d.confirmation_count(), 0);
        assert_eq!(d.suspicion_count(), 1);
    }

    #[test]
    fn rejoin_bumps_epoch_and_blocks_resurrection() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        let mut d = FailureDetector::new(HealthConfig::default_chaos(), 3, SimTime::ZERO);
        f.set_port_down(NodeId(0), true);
        sweep_until(&mut d, &mut f, 500, 4_000);
        assert_eq!(d.health(NodeId(0)), NodeHealth::Down);
        let pre_crash_epoch = 0;
        f.set_port_down(NodeId(0), false);
        let ev = sweep_until(&mut d, &mut f, 4_500, 4_500);
        assert!(matches!(
            ev[..],
            [HealthEvent::Rejoined { node: NodeId(0), epoch: 2, .. }]
        ));
        assert_eq!(d.health(NodeId(0)), NodeHealth::Healthy);
        assert!(!d.membership().is_down(NodeId(0)));
        // The node's pre-crash claim is stale: a Down confirmation
        // happened after it, so resurrection is refused.
        assert!(!d.membership().may_resurrect(NodeId(0), pre_crash_epoch));
        // Its fresh incarnation may of course register segments.
        assert!(d
            .membership()
            .may_resurrect(NodeId(0), d.membership().incarnation(NodeId(0))));
    }

    #[test]
    fn prober_fallthrough_detects_node_zero_crash() {
        // Node 0 is the default prober; its own crash must still be
        // detected (other nodes probe it) and must not poison the
        // evidence about its peers.
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        let mut d = FailureDetector::new(HealthConfig::default_chaos(), 3, SimTime::ZERO);
        f.set_port_down(NodeId(0), true);
        sweep_until(&mut d, &mut f, 500, 4_000);
        assert_eq!(d.health(NodeId(0)), NodeHealth::Down);
        assert_eq!(d.health(NodeId(1)), NodeHealth::Healthy);
        assert_eq!(d.health(NodeId(2)), NodeHealth::Healthy);
        assert_eq!(d.confirmation_count(), 1);
    }

    #[test]
    fn probe_log_supports_lease_audit() {
        let mut f = Fabric::new(LinkProfile::link0(), 2);
        let mut d = FailureDetector::new(HealthConfig::default_chaos(), 2, SimTime::ZERO);
        f.set_port_down(NodeId(1), true);
        sweep_until(&mut d, &mut f, 500, 4_000);
        let confirmed_at = us(3);
        let lease = d.config().lease;
        assert!(d
            .probe_log()
            .iter()
            .filter(|p| p.node == NodeId(1) && p.ok)
            .all(|p| p.at + lease <= confirmed_at || p.at > confirmed_at));
    }
}
