// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Integration test: degraded reads are byte-identical for mirrored and
//! parity-protected segments *while reconstruction is still in flight*.
//!
//! A crash queues two repairs (one mirrored segment, one parity member)
//! behind a batch-1 recovery orchestrator. At every intermediate state —
//! nothing repaired, one repaired, both repaired — every protected
//! segment must read back exactly its pre-crash bytes, whether the bytes
//! come from the primary, the mirror twin, or an on-the-fly XOR of the
//! parity survivors. Seeds are fixed; every run replays identically.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;

fn setup(servers: u32) -> (LogicalPool, Fabric, ProtectionManager) {
    let cfg = PoolConfig {
        servers,
        capacity_per_server: 16 * FRAME_BYTES,
        shared_per_server: 12 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 16,
    };
    (
        LogicalPool::new(cfg),
        Fabric::new(LinkProfile::link1(), servers),
        ProtectionManager::new(),
    )
}

fn fill(rng: &mut DetRng, len: u64) -> Vec<u8> {
    (0..len).map(|_| rng.below(256) as u8).collect()
}

#[test]
fn degraded_reads_bridge_reconstruction_for_both_schemes() {
    for seed in [3u64, 42, 911] {
        let (mut p, mut f, mut pm) = setup(6);
        let mut rng = DetRng::new(seed).fork("degraded-reads");
        let now = SimTime::ZERO;

        // Node 0 hosts a mirrored segment and a parity-group member, so
        // its crash queues both repair flavors at once.
        let m = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let expect_m = fill(&mut rng, FRAME_BYTES);
        let expect_a = fill(&mut rng, FRAME_BYTES);
        let expect_b = fill(&mut rng, FRAME_BYTES);
        p.write_bytes(LogicalAddr::new(m, 0), &expect_m).unwrap();
        p.write_bytes(LogicalAddr::new(a, 0), &expect_a).unwrap();
        p.write_bytes(LogicalAddr::new(b, 0), &expect_b).unwrap();
        pm.mirror(&mut p, &mut f, now, m).unwrap();
        pm.protect_parity(&mut p, &mut f, now, &[a, b]).unwrap();

        let mut orch = RecoveryOrchestrator::new();
        let affected = p.crash_server(NodeId(0));
        f.set_port_down(NodeId(0), true);
        assert_eq!(affected.len(), 2, "seed {seed}: both app segments hit");
        orch.on_confirmed_down(&p, NodeId(0), 1);
        assert_eq!(orch.pending_segments(), 2);

        // Helper: read a random range of `seg` degraded and compare.
        let check_range = |p: &LogicalPool,
                               f: &mut Fabric,
                               pm: &ProtectionManager,
                               rng: &mut DetRng,
                               seg: SegmentId,
                               expect: &[u8],
                               label: &str| {
            let len = 1 + rng.below(256);
            let off = rng.below(FRAME_BYTES - len);
            let r = pm
                .read_degraded(p, f, now, NodeId(5), LogicalAddr::new(seg, off), len)
                .unwrap_or_else(|e| panic!("seed {seed} {label}: {e}"));
            assert_eq!(
                r.bytes,
                &expect[off as usize..(off + len) as usize],
                "seed {seed} {label}: bytes diverge"
            );
            r.source
        };

        // Mid-flight, nothing repaired: the mirror serves from its twin,
        // the parity member from an XOR of the survivors.
        let src_m = check_range(&p, &mut f, &pm, &mut rng, m, &expect_m, "pre mirror");
        assert_eq!(src_m, DegradedSource::MirrorReplica, "seed {seed}");
        let src_a = check_range(&p, &mut f, &pm, &mut rng, a, &expect_a, "pre parity");
        assert_eq!(
            src_a,
            DegradedSource::ParityRebuild { survivors: 2 },
            "seed {seed}"
        );
        // The untouched member still reads from its live primary.
        let src_b = check_range(&p, &mut f, &pm, &mut rng, b, &expect_b, "pre untouched");
        assert_eq!(src_b, DegradedSource::Primary, "seed {seed}");

        // One batch-1 step: exactly one of the two is repaired, the other
        // is still degraded — and both must stay byte-identical.
        let t1 = orch.step(&mut p, &mut f, &mut pm, now, 1);
        assert_eq!(t1.len(), 1, "seed {seed}: batch of one");
        assert!(orch.has_pending(), "seed {seed}: one repair still queued");
        check_range(&p, &mut f, &pm, &mut rng, m, &expect_m, "mid mirror");
        check_range(&p, &mut f, &pm, &mut rng, a, &expect_a, "mid parity");

        // Drain the queue: everything reads normally from live primaries.
        let t2 = orch.step(&mut p, &mut f, &mut pm, now, 1);
        assert_eq!(t2.len(), 1, "seed {seed}");
        assert!(!orch.has_pending(), "seed {seed}");
        for (seg, expect, label) in [
            (m, &expect_m, "post mirror"),
            (a, &expect_a, "post parity"),
            (b, &expect_b, "post untouched"),
        ] {
            let src = check_range(&p, &mut f, &pm, &mut rng, seg, expect, label);
            assert_eq!(src, DegradedSource::Primary, "seed {seed} {label}");
            let got = p.read_bytes(LogicalAddr::new(seg, 0), FRAME_BYTES).unwrap();
            assert_eq!(&got, expect, "seed {seed} {label}: full segment");
        }
    }
}

#[test]
fn degraded_read_replays_identically_from_its_seed() {
    let run = |seed: u64| {
        let (mut p, mut f, mut pm) = setup(4);
        let mut rng = DetRng::new(seed).fork("replay");
        let now = SimTime::ZERO;
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let data = fill(&mut rng, FRAME_BYTES);
        p.write_bytes(LogicalAddr::new(seg, 0), &data).unwrap();
        pm.mirror(&mut p, &mut f, now, seg).unwrap();
        p.crash_server(NodeId(0));
        f.set_port_down(NodeId(0), true);
        let r = pm
            .read_degraded(&p, &mut f, now, NodeId(2), LogicalAddr::new(seg, 7), 96)
            .unwrap();
        (r.bytes, r.complete, r.source)
    };
    assert_eq!(run(17), run(17), "same seed must replay bit-identically");
}
