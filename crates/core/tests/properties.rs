// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests for the logical pool: translation stability under
//! migration, data integrity under crashes, and capacity conservation.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use proptest::prelude::*;

fn pool(servers: u32, shared_frames: u64) -> (LogicalPool, Fabric) {
    let cfg = PoolConfig {
        servers,
        capacity_per_server: (shared_frames + 4) * FRAME_BYTES,
        shared_per_server: shared_frames * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 16,
    };
    (
        LogicalPool::new(cfg),
        Fabric::new(LinkProfile::link1(), servers),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Data written at a logical address reads back identically after any
    /// sequence of migrations — the pointer-stability property of §5.
    #[test]
    fn migrations_never_corrupt_data(
        moves in proptest::collection::vec(0u32..4, 1..20),
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        offset in 0u64..(2 * FRAME_BYTES - 300),
    ) {
        let (mut p, mut f) = pool(4, 8);
        let seg = p.alloc(2 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let addr = LogicalAddr::new(seg, offset);
        p.write_bytes(addr, &payload).unwrap();
        for dst in moves {
            migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(dst)).unwrap();
            prop_assert_eq!(p.holder_of(seg), Some(NodeId(dst)));
            let got = p.read_bytes(addr, payload.len() as u64).unwrap();
            prop_assert_eq!(&got, &payload);
        }
    }

    /// Shared-frame accounting is conserved across alloc/free/migrate:
    /// used + free == budget on every server, and every live segment's
    /// frames equal its size.
    #[test]
    fn capacity_conserved(
        ops in proptest::collection::vec((0u8..3, 0u32..3, 1u64..4), 1..60),
    ) {
        let (mut p, mut f) = pool(3, 10);
        let mut live: Vec<SegmentId> = Vec::new();
        for (op, server, frames) in ops {
            match op {
                0 => {
                    if let Ok(seg) = p.alloc(frames * FRAME_BYTES, Placement::On(NodeId(server))) {
                        live.push(seg);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let seg = live.remove(server as usize % live.len());
                        p.free(seg).unwrap();
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let seg = live[server as usize % live.len()];
                        let _ = migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(server));
                    }
                }
            }
            let mut total_used = 0;
            for s in 0..3 {
                let split = p.node(NodeId(s)).split();
                prop_assert!(split.shared_used() <= split.shared_budget());
                total_used += split.shared_used();
            }
            let expect: u64 = live
                .iter()
                .map(|s| p.segment_len(*s).unwrap().div_ceil(FRAME_BYTES))
                .sum();
            prop_assert_eq!(total_used, expect, "leaked or lost frames");
        }
    }

    /// Mirrored segments survive the crash of any single server with their
    /// exact contents, whatever was written before the crash.
    #[test]
    fn mirror_survives_any_single_crash(
        writes in proptest::collection::vec(
            (0u64..(FRAME_BYTES - 64), proptest::collection::vec(any::<u8>(), 1..64)),
            1..16,
        ),
        crash in 0u32..4,
    ) {
        let (mut p, mut fb) = pool(4, 8);
        let mut pm = ProtectionManager::new();
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        pm.mirror(&mut p, &mut fb, SimTime::ZERO, seg).unwrap();
        let mut model = vec![0u8; FRAME_BYTES as usize];
        for (off, data) in &writes {
            pm.write(&mut p, LogicalAddr::new(seg, *off), data).unwrap();
            model[*off as usize..*off as usize + data.len()].copy_from_slice(data);
        }
        let affected = p.crash_server(NodeId(crash));
        let report = pm.recover(&mut p, &mut fb, SimTime::ZERO, NodeId(crash), &affected);
        prop_assert!(report.lost.is_empty(), "mirrored data lost: {:?}", report.lost);
        let got = p.read_bytes(LogicalAddr::new(seg, 0), FRAME_BYTES).unwrap();
        prop_assert_eq!(got, model);
    }

    /// XOR parity round-trips: after arbitrary protected writes to the
    /// members and loss of any single member's server, reconstruction
    /// restores exact contents.
    #[test]
    fn parity_survives_member_crash(
        writes in proptest::collection::vec(
            (0usize..3, 0u64..(FRAME_BYTES - 64), proptest::collection::vec(any::<u8>(), 1..64)),
            1..16,
        ),
        crash_member in 0usize..3,
    ) {
        let (mut p, mut fb) = pool(5, 8);
        let mut pm = ProtectionManager::new();
        let segs: Vec<SegmentId> = (0..3)
            .map(|s| p.alloc(FRAME_BYTES, Placement::On(NodeId(s))).unwrap())
            .collect();
        pm.protect_parity(&mut p, &mut fb, SimTime::ZERO, &segs).unwrap();
        let mut models = vec![vec![0u8; FRAME_BYTES as usize]; 3];
        for (m, off, data) in &writes {
            pm.write(&mut p, LogicalAddr::new(segs[*m], *off), data).unwrap();
            models[*m][*off as usize..*off as usize + data.len()].copy_from_slice(data);
        }
        let victim_server = p.holder_of(segs[crash_member]).unwrap();
        let affected = p.crash_server(victim_server);
        let report = pm.recover(&mut p, &mut fb, SimTime::ZERO, victim_server, &affected);
        prop_assert!(report.lost.is_empty(), "parity-protected data lost");
        for (seg, model) in segs.iter().zip(&models) {
            let got = p.read_bytes(LogicalAddr::new(*seg, 0), FRAME_BYTES).unwrap();
            prop_assert_eq!(&got, model);
        }
    }

    /// Timed accesses classify bytes exactly: local + remote == requested,
    /// and the split matches holder placement.
    #[test]
    fn access_byte_accounting(
        offset in 0u64..FRAME_BYTES,
        len in 1u64..(2 * FRAME_BYTES),
        requester in 0u32..3,
        holder in 0u32..3,
    ) {
        let (mut p, mut f) = pool(3, 8);
        let seg = p.alloc(4 * FRAME_BYTES, Placement::On(NodeId(holder))).unwrap();
        let a = p
            .access(
                &mut f,
                SimTime::ZERO,
                NodeId(requester),
                LogicalAddr::new(seg, offset),
                len,
                lmp_fabric::MemOp::Read,
            )
            .unwrap();
        prop_assert_eq!(a.local_bytes + a.remote_bytes, len);
        if requester == holder {
            prop_assert_eq!(a.remote_bytes, 0);
        } else {
            prop_assert_eq!(a.local_bytes, 0);
        }
    }
}
