// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Two-level translation under churn (`translate.rs` + `migrate.rs`).
//!
//! A deliberately tiny TLB (2 entries) is thrashed by a randomized
//! sequence of reads, writes, migrations, and frame-recycling allocs.
//! The invariant: no access ever observes a stale physical frame — every
//! read returns the model's bytes, and after any access the requester's
//! cached translation agrees with the authoritative holder.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, MemOp, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use proptest::prelude::*;

const SERVERS: u32 = 4;
const SEGS: usize = 6;

fn setup() -> (LogicalPool, Fabric) {
    let cfg = PoolConfig {
        servers: SERVERS,
        capacity_per_server: 32 * FRAME_BYTES,
        shared_per_server: 24 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        // Two entries for six segments: every round trip evicts.
        tlb_capacity: 2,
    };
    (
        LogicalPool::new(cfg),
        Fabric::new(LinkProfile::link1(), SERVERS),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    fn tlb_never_serves_a_stale_frame_across_migrations(seed in any::<u64>()) {
        let (mut pool, mut fabric) = setup();
        let mut rng = DetRng::new(seed).fork("tlb-churn");

        let mut segs = Vec::new();
        let mut model: Vec<Vec<u8>> = Vec::new();
        for i in 0..SEGS {
            let seg = pool.alloc(FRAME_BYTES, Placement::RoundRobin).unwrap();
            let data: Vec<u8> = (0..FRAME_BYTES)
                .map(|b| (b as u8) ^ (i as u8).wrapping_mul(37))
                .collect();
            pool.write_bytes(LogicalAddr::new(seg, 0), &data).unwrap();
            segs.push(seg);
            model.push(data);
        }

        let mut migrations = 0u64;
        for _ in 0..300 {
            let i = rng.below(SEGS as u64) as usize;
            match rng.below(5) {
                0 | 1 => {
                    // Read through the translation path from a random
                    // requester, then verify the bytes against the model.
                    let req = NodeId(rng.below(SERVERS as u64) as u32);
                    let len = 1 + rng.below(128);
                    let off = rng.below(FRAME_BYTES - len);
                    let addr = LogicalAddr::new(segs[i], off);
                    pool.access(&mut fabric, SimTime::ZERO, req, addr, len, MemOp::Read)
                        .unwrap();
                    let got = pool.read_bytes(addr, len).unwrap();
                    prop_assert_eq!(&got[..], &model[i][off as usize..(off + len) as usize]);
                    // The just-refreshed cached translation must agree
                    // with the authoritative coarse map.
                    let holder = pool.holder_of(segs[i]).unwrap();
                    let (loc, _) = pool.translate(req, segs[i]).unwrap();
                    prop_assert_eq!(loc.server, holder);
                }
                2 => {
                    // Write new bytes, mirrored into the model.
                    let len = 1 + rng.below(64);
                    let off = rng.below(FRAME_BYTES - len);
                    let data: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                    pool.write_bytes(LogicalAddr::new(segs[i], off), &data).unwrap();
                    model[i][off as usize..(off + len) as usize].copy_from_slice(&data);
                }
                3 => {
                    // Migrate, then immediately recycle the freed source
                    // frame with a poison segment: any translation still
                    // pointing at the old frame now reads poison, which
                    // the next read check would catch.
                    let src = pool.holder_of(segs[i]).unwrap();
                    let dst = NodeId(rng.below(SERVERS as u64) as u32);
                    if dst != src && pool.free_shared_frames(dst) >= 1 {
                        migrate_segment(&mut pool, &mut fabric, SimTime::ZERO, segs[i], dst)
                            .unwrap();
                        migrations += 1;
                        if pool.free_shared_frames(src) >= 1 {
                            let poison = pool.alloc(FRAME_BYTES, Placement::On(src)).unwrap();
                            pool.write_bytes(LogicalAddr::new(poison, 0), &[0xAA; 256])
                                .unwrap();
                        }
                    }
                }
                _ => {
                    // A→B→A round trip. Afterwards the coarse map names the
                    // pre-trip holder again, so a `holds`-only fast path
                    // would happily validate a translation cached before
                    // the trip — the fault would go uncounted. The epoch
                    // comparison must fault it exactly once.
                    let req = NodeId(rng.below(SERVERS as u64) as u32);
                    let addr = LogicalAddr::new(segs[i], 0);
                    pool.access(&mut fabric, SimTime::ZERO, req, addr, 64, MemOp::Read)
                        .unwrap();
                    let home = pool.holder_of(segs[i]).unwrap();
                    let via = NodeId(rng.below(SERVERS as u64) as u32);
                    if via != home && pool.free_shared_frames(via) >= 1 {
                        migrate_segment(&mut pool, &mut fabric, SimTime::ZERO, segs[i], via)
                            .unwrap();
                        migrate_segment(&mut pool, &mut fabric, SimTime::ZERO, segs[i], home)
                            .unwrap();
                        migrations += 2;
                        let a = pool
                            .access(&mut fabric, SimTime::ZERO, req, addr, 64, MemOp::Read)
                            .unwrap();
                        prop_assert_eq!(
                            a.faults, 1,
                            "round trip left the entry stale at the old epoch"
                        );
                    }
                }
            }
        }

        // The sequence must actually have exercised the churn paths.
        prop_assert!(migrations > 0, "randomized run produced no migrations");
        let evictions: u64 = (0..SERVERS)
            .filter_map(|n| pool.tlb(NodeId(n)))
            .map(|t| t.miss_count())
            .sum();
        prop_assert!(evictions > 0, "TLB was never refilled");

        // Final sweep: every segment byte-identical from every server.
        for (i, seg) in segs.iter().enumerate() {
            let got = pool.read_bytes(LogicalAddr::new(*seg, 0), FRAME_BYTES).unwrap();
            prop_assert_eq!(&got, &model[i]);
            let holder = pool.holder_of(*seg).unwrap();
            for n in 0..SERVERS {
                let (loc, _) = pool.translate(NodeId(n), *seg).unwrap();
                prop_assert_eq!(loc.server, holder);
            }
        }
    }
}
