// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property test for failure-domain-aware placement (`placement.rs`).
//!
//! Under randomized topologies (2–4 racks, 1–3 hosts per rack) and
//! randomized partial-capacity racks, the domain-aware
//! [`PlacementPolicy`] must never co-locate a mirror twin or a parity
//! block with a group member's rack **while an out-of-rack candidate
//! with capacity exists**. When capacity genuinely forces co-location,
//! the degradation must be loud: the
//! `placement.independence_lost{domain=rack}` counter bumps — never a
//! silent same-rack placement.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use proptest::prelude::*;

const SHARED_FRAMES: u64 = 12;

fn setup(servers: u32, domains: &DomainMap) -> (LogicalPool, Fabric, ProtectionManager) {
    let cfg = PoolConfig {
        servers,
        capacity_per_server: 16 * FRAME_BYTES,
        shared_per_server: SHARED_FRAMES * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 16,
    };
    let mut pool = LogicalPool::new(cfg);
    pool.attach_telemetry();
    (
        pool,
        Fabric::new(LinkProfile::link1(), servers),
        ProtectionManager::with_policy(PlacementPolicy::DomainAware(domains.clone())),
    )
}

/// Live hosts outside every excluded rack with room for `frames`.
fn out_of_rack_candidates(
    pool: &LogicalPool,
    domains: &DomainMap,
    exclude: &[NodeId],
    frames: u64,
) -> Vec<NodeId> {
    (0..domains.hosts())
        .map(NodeId)
        .filter(|n| {
            !pool.node(*n).is_failed()
                && exclude.iter().all(|e| !domains.same_rack(*e, *n))
                && pool.free_shared_frames(*n) >= frames
        })
        .collect()
}

fn independence_lost_rack(pool: &LogicalPool) -> u64 {
    pool.telemetry()
        .map(|t| t.snapshot().counter("placement.independence_lost", &[("domain", "rack")]))
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    fn mirror_twins_never_silently_share_a_rack(
        racks in 2u32..5,
        hosts_per_rack in 1u32..4,
        seed in any::<u64>(),
        fill_density in 0u64..100,
    ) {
        let servers = racks * hosts_per_rack;
        let domains = DomainMap::uniform(racks, hosts_per_rack);
        let (mut p, mut f, mut pm) = setup(servers, &domains);
        let mut rng = DetRng::new(seed).fork("mirror-prop");

        // Partial-capacity racks: random filler load per host.
        for h in 0..servers {
            if rng.below(100) < fill_density {
                let frames = 1 + rng.below(SHARED_FRAMES - 2);
                let _ = p.alloc(frames * FRAME_BYTES, Placement::On(NodeId(h)));
            }
        }

        let home = NodeId(rng.below(servers as u64) as u32);
        let Ok(seg) = p.alloc(FRAME_BYTES, Placement::On(home)) else {
            // The home itself is full — nothing to place.
            return;
        };
        let candidates = out_of_rack_candidates(&p, &domains, &[home], 1);
        let lost_before = independence_lost_rack(&p);
        match pm.mirror(&mut p, &mut f, SimTime::ZERO, seg) {
            Ok(_) => {
                let replica = pm.replica(seg).unwrap();
                let rh = p.holder_of(replica).unwrap();
                prop_assert_ne!(rh, home, "replica on the home host");
                let colocated = domains.same_rack(home, rh);
                if !candidates.is_empty() {
                    prop_assert!(
                        !colocated,
                        "replica of {} landed in home rack {} despite candidates {:?}",
                        seg, domains.rack_of(home), candidates
                    );
                }
                let lost_after = independence_lost_rack(&p);
                prop_assert_eq!(
                    colocated,
                    lost_after == lost_before + 1,
                    "co-location and the independence_lost counter must agree \
                     (colocated={}, counter {} -> {})",
                    colocated, lost_before, lost_after
                );
            }
            Err(_) => {
                // Refusal is only legitimate when not even the host-level
                // fallback had room anywhere.
                let anywhere: Vec<NodeId> = (0..servers)
                    .map(NodeId)
                    .filter(|n| *n != home && p.free_shared_frames(*n) >= 1)
                    .collect();
                prop_assert!(
                    anywhere.is_empty(),
                    "mirror refused although {:?} had capacity", anywhere
                );
            }
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn parity_blocks_never_silently_share_a_member_rack(
        racks in 2u32..5,
        hosts_per_rack in 1u32..4,
        k in 2u32..4,
        seed in any::<u64>(),
        fill_density in 0u64..100,
    ) {
        let servers = racks * hosts_per_rack;
        let domains = DomainMap::uniform(racks, hosts_per_rack);
        let (mut p, mut f, mut pm) = setup(servers, &domains);
        let mut rng = DetRng::new(seed).fork("parity-prop");

        for h in 0..servers {
            if rng.below(100) < fill_density {
                let frames = 1 + rng.below(SHARED_FRAMES - 2);
                let _ = p.alloc(frames * FRAME_BYTES, Placement::On(NodeId(h)));
            }
        }

        // k members on distinct random homes (skip homes that are full).
        let mut homes: Vec<NodeId> = Vec::new();
        let mut members = Vec::new();
        for _ in 0..k {
            let h = NodeId(rng.below(servers as u64) as u32);
            if homes.contains(&h) {
                continue;
            }
            if let Ok(seg) = p.alloc(FRAME_BYTES, Placement::On(h)) {
                homes.push(h);
                members.push(seg);
            }
        }
        if members.len() < 2 {
            return;
        }
        let candidates = out_of_rack_candidates(&p, &domains, &homes, 1);
        let lost_before = independence_lost_rack(&p);
        match pm.protect_parity(&mut p, &mut f, SimTime::ZERO, &members) {
            Ok(gid) => {
                let parity = pm.parity_segment(gid).unwrap();
                let ph = p.holder_of(parity).unwrap();
                prop_assert!(!homes.contains(&ph), "parity on a member host");
                let colocated = homes.iter().any(|h| domains.same_rack(*h, ph));
                if !candidates.is_empty() {
                    prop_assert!(
                        !colocated,
                        "parity block landed in a member rack despite candidates {:?}",
                        candidates
                    );
                }
                let lost_after = independence_lost_rack(&p);
                prop_assert_eq!(
                    colocated,
                    lost_after == lost_before + 1,
                    "co-location and the independence_lost counter must agree \
                     (colocated={}, counter {} -> {})",
                    colocated, lost_before, lost_after
                );
            }
            Err(_) => {
                let anywhere: Vec<NodeId> = (0..servers)
                    .map(NodeId)
                    .filter(|n| !homes.contains(n) && p.free_shared_frames(*n) >= 1)
                    .collect();
                prop_assert!(
                    anywhere.is_empty(),
                    "parity refused although {:?} had capacity", anywhere
                );
            }
        }
    }
}
