// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property test for XOR parity recovery (`failure.rs`).
//!
//! For random segment contents, random protected overwrites, and any
//! single crashed server in the group — member or parity holder —
//! recovery must restore every surviving byte exactly and the
//! [`RecoveryReport`] must name exactly the affected segments.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use proptest::prelude::*;

fn setup(servers: u32) -> (LogicalPool, Fabric, ProtectionManager) {
    let cfg = PoolConfig {
        servers,
        capacity_per_server: 16 * FRAME_BYTES,
        shared_per_server: 12 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 16,
    };
    (
        LogicalPool::new(cfg),
        Fabric::new(LinkProfile::link1(), servers),
        ProtectionManager::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    fn parity_recovery_is_byte_identical(
        k in 2u32..5,
        victim_sel in any::<u64>(),
        crash_parity in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // k members on servers 0..k, parity elsewhere, 2 spare servers.
        let (mut p, mut f, mut pm) = setup(k + 2);
        let mut rng = DetRng::new(seed).fork("parity-prop");
        let mut members = Vec::new();
        let mut expect: Vec<Vec<u8>> = Vec::new();
        for i in 0..k {
            let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(i))).unwrap();
            let data: Vec<u8> = (0..FRAME_BYTES).map(|_| rng.below(256) as u8).collect();
            p.write_bytes(LogicalAddr::new(seg, 0), &data).unwrap();
            members.push(seg);
            expect.push(data);
        }
        let gid = pm
            .protect_parity(&mut p, &mut f, SimTime::ZERO, &members)
            .unwrap();
        // Random protected overwrites keep the parity deltas honest.
        for _ in 0..8 {
            let i = rng.below(k as u64) as usize;
            let len = 1 + rng.below(256);
            let off = rng.below(FRAME_BYTES - len);
            let data: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            pm.write(&mut p, LogicalAddr::new(members[i], off), &data).unwrap();
            expect[i][off as usize..(off + len) as usize].copy_from_slice(&data);
        }

        let (victim_seg, home) = if crash_parity {
            let parity = pm.parity_segment(gid).unwrap();
            (parity, p.holder_of(parity).unwrap())
        } else {
            let vi = (victim_sel % k as u64) as usize;
            (members[vi], p.holder_of(members[vi]).unwrap())
        };
        let mut affected = p.crash_server(home);
        affected.sort_unstable();
        prop_assert_eq!(&affected, &vec![victim_seg], "one segment per server");
        let report = pm.recover(&mut p, &mut f, SimTime::ZERO, home, &affected);

        // The report names exactly the affected segment, in the right bucket.
        if crash_parity {
            prop_assert_eq!(&report.reprotected, &vec![victim_seg]);
            prop_assert!(report.reconstructed.is_empty());
        } else {
            prop_assert_eq!(&report.reconstructed, &vec![victim_seg]);
            prop_assert!(report.reprotected.is_empty());
        }
        prop_assert!(report.promoted.is_empty());
        prop_assert!(report.lost.is_empty());

        // Every member reads back byte-identical at its old logical address.
        for (i, m) in members.iter().enumerate() {
            let got = p.read_bytes(LogicalAddr::new(*m, 0), FRAME_BYTES).unwrap();
            prop_assert_eq!(&got, &expect[i], "member {} corrupted", i);
            prop_assert_ne!(p.holder_of(*m), Some(home));
        }

        // The group still protects: crash another member and recover again.
        let vi2 = ((victim_sel / 7) % k as u64) as usize;
        let home2 = p.holder_of(members[vi2]).unwrap();
        let mut affected2 = p.crash_server(home2);
        affected2.sort_unstable();
        let report2 = pm.recover(&mut p, &mut f, SimTime::ZERO, home2, &affected2);
        prop_assert!(report2.lost.is_empty());
        let got = p
            .read_bytes(LogicalAddr::new(members[vi2], 0), FRAME_BYTES)
            .unwrap();
        prop_assert_eq!(&got, &expect[vi2]);
    }
}
