// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! RandomState-sensitivity regression (`translate.rs` / `balance.rs`).
//!
//! Every map a digest or migration plan iterates must be ordered
//! (`BTreeMap`), because `HashMap`'s per-instance `RandomState` makes
//! iteration order differ between two otherwise identical constructions
//! *within the same process*. This test runs the same seeded workload —
//! allocation, mixed local/remote access, balancer rounds that consult the
//! translation and hotness maps — twice, as two fully independent pool
//! instances, and requires byte-identical `rack_snapshot()` JSON and equal
//! digests. If anyone reintroduces unordered iteration on these paths, the
//! two runs disagree in plan order or label order and this test fails.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, MemOp, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use lmp_telemetry::TelemetrySnapshot;

const SERVERS: u32 = 4;
const SEGMENTS: usize = 12;
const ACCESSES: usize = 400;
const ROUNDS: usize = 5;

/// One complete seeded run: build a rack, hammer it with a deterministic
/// access pattern skewed enough to trigger balancing migrations, run the
/// balancer, and freeze the rack-wide snapshot.
fn seeded_run(seed: u64) -> (TelemetrySnapshot, Vec<Vec<MigrationPlan>>) {
    let cfg = PoolConfig {
        servers: SERVERS,
        capacity_per_server: 64 * FRAME_BYTES,
        shared_per_server: 32 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 32,
    };
    let mut pool = LogicalPool::new(cfg);
    pool.attach_telemetry();
    let mut fabric = Fabric::new(LinkProfile::link1(), SERVERS);
    let mut rng = DetRng::new(seed);

    let mut segs = Vec::new();
    for i in 0..SEGMENTS {
        let home = NodeId((i as u32) % SERVERS);
        segs.push(pool.alloc(2 * FRAME_BYTES, Placement::On(home)).unwrap());
    }

    let mut balancer = LocalityBalancer::new(BalancerConfig {
        min_remote_accesses: 8,
        hysteresis: 1.5,
        max_migrations_per_round: 3,
    });

    let mut plans = Vec::new();
    let mut now = SimTime::ZERO;
    for round in 0..ROUNDS {
        for _ in 0..ACCESSES {
            let seg = segs[rng.below(segs.len() as u64) as usize];
            // Skew: most traffic comes from one remote server so the
            // balancer has dominant accessors to chase.
            let requester = if rng.chance(0.8) {
                NodeId((round as u32) % SERVERS)
            } else {
                NodeId(rng.below(u64::from(SERVERS)) as u32)
            };
            let offset = rng.below(2 * FRAME_BYTES - 64);
            let op = if rng.chance(0.3) { MemOp::Write } else { MemOp::Read };
            let addr = LogicalAddr::new(seg, offset);
            pool.access(&mut fabric, now, requester, addr, 64, op).unwrap();
            now += SimDuration::from_nanos(200);
        }
        let round = balancer.run_round(&mut pool, &mut fabric, now);
        plans.push(round.planned);
    }

    (rack_snapshot(&mut pool, &mut fabric, now), plans)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (snap_a, plans_a) = seeded_run(0xC0FFEE);
    let (snap_b, plans_b) = seeded_run(0xC0FFEE);
    // Plan order is part of the determinism contract: the balancer caps
    // migrations per round, so an unordered candidate scan would execute a
    // *different subset*, not just a reordering.
    assert_eq!(plans_a, plans_b, "balancer plans diverged between runs");
    assert_eq!(
        snap_a.to_json(),
        snap_b.to_json(),
        "rack snapshots diverged between same-seed runs"
    );
    assert_eq!(snap_a.digest(), snap_b.digest());
}

#[test]
fn the_workload_actually_migrates() {
    // Guard against this regression test going vacuous: the skewed access
    // pattern must produce at least one planned migration, otherwise the
    // balancer's map-iteration order was never exercised.
    let (_, plans) = seeded_run(0xC0FFEE);
    let total: usize = plans.iter().map(Vec::len).sum();
    assert!(total > 0, "seeded workload planned no migrations");
}

#[test]
fn different_seeds_differ() {
    // The digest is content-sensitive, not a constant.
    let (snap_a, _) = seeded_run(1);
    let (snap_b, _) = seeded_run(2);
    assert_ne!(
        snap_a.to_json(),
        snap_b.to_json(),
        "different seeds produced identical telemetry — workload is seed-blind"
    );
}

#[test]
fn chaos_scenario_digests_survive_the_calendar_kernel() {
    // Calendar-kernel regression: a full seeded chaos scenario — faults,
    // recoveries, retries, batch waves, telemetry — run twice with the
    // same seed must produce byte-identical FNV trace and telemetry
    // digests. The scenario schedules through `Engine` (now backed by the
    // calendar queue), so any ordering drift in bucket scans, far-band
    // drains, resizes, or lazy cancellation shows up here as a digest
    // mismatch, with the trace diff pinpointing the first divergent event.
    use lmp_harness::prelude::{run_scenario, Scenario};

    let a = run_scenario(Scenario::Combined, 0xD15C_0B01);
    let b = run_scenario(Scenario::Combined, 0xD15C_0B01);
    assert!(
        a.checks.iter().all(|c| c.passed),
        "chaos invariants failed: {:?}",
        a.checks.iter().filter(|c| !c.passed).collect::<Vec<_>>()
    );
    assert_eq!(
        a.digest, b.digest,
        "trace digests diverged; first differing event: {:?}",
        a.trace.diff(&b.trace)
    );
    assert_eq!(
        a.telemetry_digest, b.telemetry_digest,
        "telemetry digests diverged between same-seed runs"
    );
    assert_eq!(a.events, b.events);
    assert!(a.events > 0, "scenario delivered no events — vacuous run");
}
