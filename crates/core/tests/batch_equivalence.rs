// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Batch/single-op equivalence (`batch.rs` + `pool.rs`).
//!
//! The batched scatter-gather path reuses the single-op frame walk, so —
//! timing aside — a batch must be indistinguishable from issuing its ops
//! one by one: byte-identical data, identical per-op local/remote byte
//! splits and fault counts, and identical pool accounting, including the
//! telemetry registry. The generated op mixes include frame-spanning
//! lengths, mixed local/remote holders, duplicate segments, and stale
//! translations from both a plain migration and an A→B→A round trip.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, MemOp, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use proptest::prelude::*;

const SERVERS: u32 = 4;
const SEGS: usize = 4;
const SEG_BYTES: u64 = 2 * FRAME_BYTES;

/// A pool with one two-frame segment per server, the requester's (node 0)
/// TLB warmed on all of them, and two kinds of staleness injected: segment
/// 1 migrated away, segment 2 round-tripped back to its original holder.
fn setup() -> (LogicalPool, Fabric, Vec<SegmentId>) {
    let cfg = PoolConfig {
        servers: SERVERS,
        capacity_per_server: 16 * FRAME_BYTES,
        shared_per_server: 12 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        // No eviction pressure: the batch path translates each distinct
        // segment once, so under a tiny TLB the two issue orders would
        // legitimately diverge in eviction victims.
        tlb_capacity: 16,
    };
    let mut pool = LogicalPool::new(cfg);
    pool.attach_telemetry();
    let mut fabric = Fabric::new(LinkProfile::link1(), SERVERS);
    let mut segs = Vec::new();
    for s in 0..SEGS as u32 {
        let seg = pool.alloc(SEG_BYTES, Placement::On(NodeId(s))).unwrap();
        let data: Vec<u8> = (0..SEG_BYTES).map(|b| (b as u8) ^ (s as u8)).collect();
        pool.write_bytes(LogicalAddr::new(seg, 0), &data).unwrap();
        segs.push(seg);
    }
    for &seg in &segs {
        pool.access(
            &mut fabric,
            SimTime::ZERO,
            NodeId(0),
            LogicalAddr::new(seg, 0),
            8,
            MemOp::Read,
        )
        .unwrap();
    }
    migrate_segment(&mut pool, &mut fabric, SimTime::ZERO, segs[1], NodeId(3)).unwrap();
    migrate_segment(&mut pool, &mut fabric, SimTime::ZERO, segs[2], NodeId(1)).unwrap();
    migrate_segment(&mut pool, &mut fabric, SimTime::ZERO, segs[2], NodeId(2)).unwrap();
    (pool, fabric, segs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    fn batch_is_equivalent_to_one_by_one_issue(
        spec in proptest::collection::vec(
            (0..SEGS, 0..SEG_BYTES, 1..=SEG_BYTES, any::<bool>()),
            1..12,
        )
    ) {
        let (mut pa, mut fa, segs) = setup();
        let (mut pb, mut fb, segs_b) = setup();
        prop_assert_eq!(&segs, &segs_b, "identical setup, identical ids");

        let ops: Vec<BatchOp> = spec
            .iter()
            .map(|&(si, off, len, write)| {
                let len = len.min(SEG_BYTES - off);
                let addr = LogicalAddr::new(segs[si], off);
                if write {
                    BatchOp::write(addr, len)
                } else {
                    BatchOp::read(addr, len)
                }
            })
            .collect();

        let batch = pa
            .access_batch(&mut fa, SimTime::ZERO, NodeId(0), &ops)
            .unwrap();
        let singles: Vec<PoolAccess> = ops
            .iter()
            .map(|o| {
                pb.access(&mut fb, SimTime::ZERO, NodeId(0), o.addr, o.len, o.op)
                    .unwrap()
            })
            .collect();

        // Per-op accounting matches, op for op (timing aside).
        prop_assert_eq!(batch.ops.len(), singles.len());
        for (i, (b, s)) in batch.ops.iter().zip(&singles).enumerate() {
            prop_assert_eq!(b.local_bytes, s.local_bytes, "op {} local bytes", i);
            prop_assert_eq!(b.remote_bytes, s.remote_bytes, "op {} remote bytes", i);
            prop_assert_eq!(b.faults, s.faults, "op {} faults", i);
        }
        prop_assert_eq!(
            batch.faults,
            singles.iter().map(|s| s.faults).sum::<u32>()
        );

        // Pool chunk counters and telemetry books match exactly.
        prop_assert_eq!(pa.access_counts(), pb.access_counts());
        let sa = pa.telemetry().unwrap().snapshot();
        let sb = pb.telemetry().unwrap().snapshot();
        for name in [
            "pool.ops.read",
            "pool.ops.write",
            "pool.accesses.local",
            "pool.accesses.remote",
            "pool.bytes.local",
            "pool.bytes.remote",
            "pool.faults",
        ] {
            prop_assert_eq!(
                sa.counter(name, &[]),
                sb.counter(name, &[]),
                "telemetry counter {} diverged",
                name
            );
        }
        prop_assert_eq!(
            sa.counter_total("pool.accesses.local.by_server"),
            sb.counter_total("pool.accesses.local.by_server")
        );
        prop_assert_eq!(
            sa.counter_total("pool.accesses.remote.by_server"),
            sb.counter_total("pool.accesses.remote.by_server")
        );

        // Byte-identical data through both pools' translation paths.
        for &seg in &segs {
            let a = pa.read_bytes(LogicalAddr::new(seg, 0), SEG_BYTES).unwrap();
            let b = pb.read_bytes(LogicalAddr::new(seg, 0), SEG_BYTES).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

/// `holder_done` carries exactly one entry per distinct holder, ordered by
/// node id, and its max is the batch completion time.
#[test]
fn holder_done_is_one_entry_per_holder() {
    let (mut pool, mut fabric, segs) = setup();
    // After setup's migrations the holders are: segs[0] → node 0 (local to
    // the requester), segs[1] → node 3, segs[2] → node 2, segs[3] → node 3.
    let ops = vec![
        BatchOp::read(LogicalAddr::new(segs[0], 0), 256),
        BatchOp::read(LogicalAddr::new(segs[1], 0), 256),
        BatchOp::write(LogicalAddr::new(segs[2], 64), 128),
        BatchOp::read(LogicalAddr::new(segs[3], 8), 512),
    ];
    let r = pool
        .access_batch(&mut fabric, SimTime::ZERO, NodeId(0), &ops)
        .unwrap();
    let holders: Vec<u32> = r.holder_done.iter().map(|&(h, _)| h.0).collect();
    assert_eq!(holders, [0, 2, 3], "one entry per holder, ordered by id");
    let max_done = r.holder_done.iter().map(|&(_, t)| t).max().unwrap();
    assert_eq!(max_done, r.complete, "last holder defines batch completion");
    for &(h, t) in &r.holder_done {
        assert!(t >= SimTime::ZERO && t <= r.complete, "holder {h:?} at {t}");
    }

    // An empty batch touches nobody.
    let empty = pool
        .access_batch(&mut fabric, SimTime::ZERO, NodeId(0), &[])
        .unwrap();
    assert!(empty.holder_done.is_empty());
}

/// The `schedule_holder_completions` bridge turns one batch into one queue
/// insertion pass: one event per holder, delivered at that holder's stream
/// completion time in timestamp order.
#[test]
fn holder_completions_schedule_one_event_per_holder() {
    let (mut pool, mut fabric, segs) = setup();
    let ops = vec![
        BatchOp::read(LogicalAddr::new(segs[1], 0), 4_096),
        BatchOp::read(LogicalAddr::new(segs[2], 0), 128),
        BatchOp::write(LogicalAddr::new(segs[3], 0), 1_024),
    ];
    let r = pool
        .access_batch(&mut fabric, SimTime::ZERO, NodeId(0), &ops)
        .unwrap();
    assert!(!r.holder_done.is_empty());

    let mut eng: Engine<(NodeId, SimTime)> = Engine::new();
    let ids = schedule_holder_completions(&mut eng, &r, |h, t| (h, t)).unwrap();
    assert_eq!(ids.len(), r.holder_done.len());
    assert_eq!(eng.pending(), r.holder_done.len());

    let mut fired: Vec<(NodeId, SimTime)> = Vec::new();
    eng.run(|eng, (h, t)| {
        assert_eq!(eng.now(), t, "completion event fires at the holder time");
        fired.push((h, t));
    });
    let mut expect = r.holder_done.clone();
    expect.sort_by_key(|&(h, t)| (t, h.0));
    assert_eq!(fired, expect, "events deliver in completion-time order");
    assert_eq!(eng.now(), r.complete);
}
