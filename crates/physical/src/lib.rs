// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-physical — the physical-pool baseline
//!
//! Everything the paper's comparison target needs: the fabric-attached pool
//! appliance ([`pool::PhysicalPool`]), the server-local page cache that
//! defines the "Physical cache" configuration ([`cache::PoolCache`]), and
//! the §4.2 deployment cost model ([`cost`]).
//!
//! The pool is a [`lmp_mem::MemoryNode`] in all-shared configuration behind
//! the same fabric model servers use, so logical-vs-physical differences in
//! the benches come only from architecture, never from modelling asymmetry.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cost;
pub mod pool;

pub use cache::{AdmissionPolicy, CachedAccess, PoolCache};
pub use cost::{compare, lmp_bill, physical_bill, Bill, Comparison, ComponentPrices, CostItem, Scenario};
pub use pool::{PhysicalPool, PoolCompletion};
