//! Server-local page cache over the physical pool.
//!
//! The "Physical cache" configuration of §4.1: each server's small local
//! memory acts as a cache of pooled frames. A miss pays an upfront
//! `memcpy()` of the whole frame from the pool across the fabric; hits are
//! then served at local DRAM speed. Capacity misses evict LRU frames — for
//! a scanned vector larger than the cache this degenerates to re-fetching
//! every frame every pass, which is exactly why the paper's Figure 3/4 show
//! the cache configuration losing to the logical pool.

use crate::pool::PhysicalPool;
use lmp_fabric::{Fabric, NodeId};
use lmp_mem::{DramChannel, DramProfile, FrameId, FRAME_BYTES};
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Result of one cached access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedAccess {
    /// When the access completes at the server.
    pub complete: SimTime,
    /// Whether the frame was already cached.
    pub hit: bool,
    /// Frame evicted to make room, if any.
    pub evicted: Option<FrameId>,
}

/// What the cache does with a miss once it is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Keep what is already cached; further misses bypass the cache and
    /// read only the requested bytes remotely. This matches the paper's
    /// "upfront memcpy, faster subsequent reads" behaviour and its measured
    /// numbers: scanning a vector larger than the cache serves the cached
    /// prefix locally every pass instead of thrashing.
    PinUntilFull,
    /// Classic LRU: evict the least-recently-used frame and admit the new
    /// one. Under a cyclic scan larger than the cache this degrades to a
    /// 0% hit rate (the ablation worth showing).
    Lru,
}

/// A server's local-memory cache of pooled frames (frame granularity).
#[derive(Debug)]
pub struct PoolCache {
    server: NodeId,
    capacity_frames: u64,
    policy: AdmissionPolicy,
    /// pooled frame → LRU stamp.
    resident: BTreeMap<FrameId, u64>,
    clock: u64,
    local_dram: DramChannel,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    upfront_bytes: Counter,
}

impl PoolCache {
    /// A cache of `capacity_bytes` of local memory on `server`, with the
    /// paper-matching [`AdmissionPolicy::PinUntilFull`] policy.
    ///
    /// # Panics
    /// Panics when the capacity is smaller than one frame.
    pub fn new(server: NodeId, capacity_bytes: u64, profile: DramProfile) -> Self {
        Self::with_policy(server, capacity_bytes, profile, AdmissionPolicy::PinUntilFull)
    }

    /// A cache with an explicit admission policy.
    ///
    /// # Panics
    /// Panics when the capacity is smaller than one frame.
    pub fn with_policy(
        server: NodeId,
        capacity_bytes: u64,
        profile: DramProfile,
        policy: AdmissionPolicy,
    ) -> Self {
        let capacity_frames = capacity_bytes / FRAME_BYTES;
        // lmp-lint: allow(no-panic) — ctor precondition: a cache smaller than
        // one frame can hold nothing; a sizing bug.
        assert!(capacity_frames > 0, "cache smaller than one frame");
        PoolCache {
            server,
            capacity_frames,
            policy,
            resident: BTreeMap::new(),
            clock: 0,
            local_dram: DramChannel::new(profile),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            upfront_bytes: Counter::new(),
        }
    }

    /// Capacity in frames.
    pub fn capacity_frames(&self) -> u64 {
        self.capacity_frames
    }

    /// Frames currently resident.
    pub fn resident_frames(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Access `bytes` within pooled `frame`. On a miss the whole frame is
    /// copied from the pool first (the upfront memcpy), then the access is
    /// served from local memory.
    // Eviction only runs when the cache is full, so `resident` is
    // non-empty and min_by_key always yields a victim.
    #[allow(clippy::expect_used)]
    pub fn access(
        &mut self,
        fabric: &mut Fabric,
        pool: &mut PhysicalPool,
        now: SimTime,
        frame: FrameId,
        bytes: u64,
    ) -> CachedAccess {
        self.clock += 1;
        if let Some(stamp) = self.resident.get_mut(&frame) {
            *stamp = self.clock;
            self.hits.inc();
            let d = self.local_dram.access(now, bytes);
            return CachedAccess {
                complete: d.complete,
                hit: true,
                evicted: None,
            };
        }
        self.misses.inc();
        let evicted = if self.resident.len() as u64 >= self.capacity_frames {
            match self.policy {
                AdmissionPolicy::PinUntilFull => {
                    // Bypass: serve only the requested bytes remotely and
                    // leave the cache contents intact.
                    let fetch = pool.read(fabric, now, self.server, bytes, Some(frame));
                    return CachedAccess {
                        complete: fetch.complete,
                        hit: false,
                        evicted: None,
                    };
                }
                AdmissionPolicy::Lru => {
                    // Evict the least-recently-used frame (deterministic
                    // tie-break by frame id).
                    let victim = *self
                        .resident
                        .iter()
                        .min_by_key(|(f, stamp)| (**stamp, f.0))
                        .map(|(f, _)| f)
                        // lmp-lint: allow(no-panic) — the eviction branch only
                        // runs when the cache is full, so the resident map is
                        // structurally non-empty.
                        .expect("cache full implies non-empty");
                    self.resident.remove(&victim);
                    self.evictions.inc();
                    Some(victim)
                }
            }
        } else {
            None
        };
        // Upfront memcpy of the whole frame from the pool.
        self.upfront_bytes.add(FRAME_BYTES);
        let fetch = pool.read(fabric, now, self.server, FRAME_BYTES, Some(frame));
        // Writing the fetched frame into local memory, then serving the
        // requested bytes from it.
        let fill = self.local_dram.access(fetch.complete, FRAME_BYTES);
        let serve = self.local_dram.access(fill.complete, bytes);
        self.resident.insert(frame, self.clock);
        CachedAccess {
            complete: serve.complete,
            hit: false,
            evicted,
        }
    }

    /// Cache hits so far.
    pub fn hit_count(&self) -> u64 {
        self.hits.get()
    }
    /// Cache misses so far.
    pub fn miss_count(&self) -> u64 {
        self.misses.get()
    }
    /// Evictions so far.
    pub fn eviction_count(&self) -> u64 {
        self.evictions.get()
    }
    /// Bytes copied upfront from the pool.
    pub fn upfront_copy_bytes(&self) -> u64 {
        self.upfront_bytes.get()
    }

    /// Drop everything (e.g. workload change).
    pub fn clear(&mut self) {
        self.resident.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::DramProfile;
    use lmp_sim::units::GIB;

    fn setup(cache_frames: u64) -> (Fabric, PhysicalPool, PoolCache) {
        let fabric = Fabric::new(LinkProfile::link1(), 5);
        let pool = PhysicalPool::new(NodeId(4), GIB, DramProfile::xeon_gold_5120());
        let cache = PoolCache::new(
            NodeId(0),
            cache_frames * FRAME_BYTES,
            DramProfile::xeon_gold_5120(),
        );
        (fabric, pool, cache)
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let (mut fabric, mut pool, mut cache) = setup(4);
        let f = pool.alloc_frames(1).unwrap()[0];
        let a = cache.access(&mut fabric, &mut pool, SimTime::ZERO, f, 64);
        assert!(!a.hit);
        let b = cache.access(&mut fabric, &mut pool, a.complete, f, 64);
        assert!(b.hit);
        assert_eq!(cache.hit_count(), 1);
        assert_eq!(cache.miss_count(), 1);
    }

    #[test]
    fn hits_are_much_faster_than_misses() {
        let (mut fabric, mut pool, mut cache) = setup(4);
        let f = pool.alloc_frames(1).unwrap()[0];
        let miss = cache.access(&mut fabric, &mut pool, SimTime::ZERO, f, 64);
        let miss_time = miss.complete.as_nanos();
        let hit = cache.access(&mut fabric, &mut pool, miss.complete, f, 64);
        let hit_time = hit.complete.as_nanos() - miss.complete.as_nanos();
        // Miss pays a 2 MiB transfer at 21 GB/s (~100us); hit is ~100ns.
        assert!(miss_time > 50 * hit_time, "miss {miss_time} vs hit {hit_time}");
    }

    #[test]
    fn lru_scan_larger_than_cache_thrashes() {
        let (mut fabric, mut pool, _) = setup(2);
        let mut cache = PoolCache::with_policy(
            NodeId(0),
            2 * FRAME_BYTES,
            DramProfile::xeon_gold_5120(),
            AdmissionPolicy::Lru,
        );
        let frames = pool.alloc_frames(4).unwrap();
        let mut now = SimTime::ZERO;
        // Two full passes over 4 frames with a 2-frame cache: every access
        // misses (classic LRU scan pathology).
        for _pass in 0..2 {
            for &f in &frames {
                let a = cache.access(&mut fabric, &mut pool, now, f, 64);
                assert!(!a.hit);
                now = a.complete;
            }
        }
        assert_eq!(cache.miss_count(), 8);
        assert_eq!(cache.hit_count(), 0);
        assert_eq!(cache.eviction_count(), 6);
    }

    #[test]
    fn pinned_scan_keeps_prefix_resident() {
        let (mut fabric, mut pool, mut cache) = setup(2);
        let frames = pool.alloc_frames(4).unwrap();
        let mut now = SimTime::ZERO;
        // First pass: 2 frames admitted, 2 bypass. Later passes: the
        // admitted prefix hits every time — the paper's cache behaviour.
        for pass in 0..3 {
            for (i, &f) in frames.iter().enumerate() {
                let a = cache.access(&mut fabric, &mut pool, now, f, 64);
                assert_eq!(a.hit, pass > 0 && i < 2, "pass {pass} frame {i}");
                now = a.complete;
            }
        }
        assert_eq!(cache.hit_count(), 4);
        assert_eq!(cache.eviction_count(), 0);
        assert_eq!(cache.resident_frames(), 2);
        // Only the two admitted frames were memcpy'd.
        assert_eq!(cache.upfront_copy_bytes(), 2 * FRAME_BYTES);
    }

    #[test]
    fn working_set_fitting_in_cache_stays_resident() {
        let (mut fabric, mut pool, mut cache) = setup(4);
        let frames = pool.alloc_frames(3).unwrap();
        let mut now = SimTime::ZERO;
        for pass in 0..5 {
            for &f in &frames {
                let a = cache.access(&mut fabric, &mut pool, now, f, 64);
                assert_eq!(a.hit, pass > 0);
                now = a.complete;
            }
        }
        assert_eq!(cache.miss_count(), 3);
        assert_eq!(cache.hit_count(), 12);
        assert_eq!(cache.eviction_count(), 0);
    }

    #[test]
    fn upfront_bytes_accounts_full_frames() {
        let (mut fabric, mut pool, mut cache) = setup(4);
        let f = pool.alloc_frames(1).unwrap()[0];
        cache.access(&mut fabric, &mut pool, SimTime::ZERO, f, 1);
        assert_eq!(cache.upfront_copy_bytes(), FRAME_BYTES);
    }
}
