//! The physical memory pool appliance.
//!
//! The baseline the paper argues against (Figure 1a): a separate box of
//! memory on the fabric, with no private region and no processors of its
//! own. Built from the same [`MemoryNode`] substrate as servers so the two
//! architectures differ only in configuration.

use lmp_fabric::{Fabric, NodeId};
use lmp_mem::{DramProfile, FrameId, MemoryNode, RegionError, RegionKind, FRAME_BYTES};
use lmp_sim::prelude::*;

/// A fabric-attached physical memory pool.
#[derive(Debug)]
pub struct PhysicalPool {
    node: MemoryNode,
    fabric_id: NodeId,
}

/// Completion of a pool access from a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolCompletion {
    /// When the access is complete at the requesting server.
    pub complete: SimTime,
}

impl PhysicalPool {
    /// A pool of `capacity_bytes`, attached to the fabric as `fabric_id`.
    ///
    /// The pool's internal memory uses the same DRAM profile as servers —
    /// the *fabric* is what makes pool accesses slow, matching the paper's
    /// model where pooled DIMMs are ordinary DIMMs behind CXL.
    pub fn new(fabric_id: NodeId, capacity_bytes: u64, profile: DramProfile) -> Self {
        PhysicalPool {
            node: MemoryNode::fam_device(format!("pool@{fabric_id}"), capacity_bytes, profile),
            fabric_id,
        }
    }

    /// The pool's fabric attachment point.
    pub fn fabric_id(&self) -> NodeId {
        self.fabric_id
    }

    /// Pool capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.node.capacity_bytes()
    }

    /// Bytes still allocatable.
    pub fn available_bytes(&self) -> u64 {
        self.node.split().available(RegionKind::Shared) * FRAME_BYTES
    }

    /// Allocate `n` pooled frames (all-or-nothing).
    pub fn alloc_frames(&mut self, n: u64) -> Result<Vec<FrameId>, RegionError> {
        self.node.alloc_many(RegionKind::Shared, n)
    }

    /// Free a pooled frame.
    pub fn free_frame(&mut self, frame: FrameId) -> Result<(), RegionError> {
        self.node.free(frame)
    }

    /// A server (`requester`) reads `bytes` from pooled memory.
    ///
    /// Timing composes the fabric read with the pool's internal DRAM
    /// service; the slower resource dominates under load.
    pub fn read(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        requester: NodeId,
        bytes: u64,
        frame: Option<FrameId>,
    ) -> PoolCompletion {
        // DRAM inside the box serves the data...
        let dram = self.node.access(now, bytes, requester.0, false, frame);
        // ...and the fabric carries it to the requester.
        let fc = fabric.read(now, requester, self.fabric_id, bytes);
        PoolCompletion {
            complete: dram.complete.max(fc.complete),
        }
    }

    /// A server writes `bytes` to pooled memory.
    pub fn write(
        &mut self,
        fabric: &mut Fabric,
        now: SimTime,
        requester: NodeId,
        bytes: u64,
        frame: Option<FrameId>,
    ) -> PoolCompletion {
        let dram = self.node.access(now, bytes, requester.0, false, frame);
        let fc = fabric.write(now, requester, self.fabric_id, bytes);
        PoolCompletion {
            complete: dram.complete.max(fc.complete),
        }
    }

    /// Materialized-byte access to pooled frames (for correctness tests).
    pub fn memory(&self) -> &MemoryNode {
        &self.node
    }

    /// Mutable access to the pool's memory node.
    pub fn memory_mut(&mut self) -> &mut MemoryNode {
        &mut self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_sim::units::GIB;

    fn setup() -> (Fabric, PhysicalPool) {
        // Nodes 0..3 are servers, node 4 is the pool.
        let fabric = Fabric::new(LinkProfile::link1(), 5);
        let pool = PhysicalPool::new(NodeId(4), GIB, DramProfile::xeon_gold_5120());
        (fabric, pool)
    }

    #[test]
    fn capacity_is_all_poolable() {
        let (_, pool) = setup();
        assert_eq!(pool.capacity_bytes(), GIB);
        assert_eq!(pool.available_bytes(), GIB);
    }

    #[test]
    fn alloc_and_exhaustion() {
        let (_, mut pool) = setup();
        let frames = pool.alloc_frames(GIB / FRAME_BYTES).unwrap();
        assert_eq!(frames.len() as u64, GIB / FRAME_BYTES);
        assert!(pool.alloc_frames(1).is_err());
        pool.free_frame(frames[0]).unwrap();
        assert!(pool.alloc_frames(1).is_ok());
    }

    #[test]
    fn read_latency_at_least_fabric_latency() {
        let (mut fabric, mut pool) = setup();
        let c = pool.read(&mut fabric, SimTime::ZERO, NodeId(0), 64, None);
        // Link1 unloaded end-to-end latency is 261ns.
        assert!(c.complete.as_nanos() >= 261);
    }

    #[test]
    fn pool_bandwidth_capped_by_its_uplink() {
        let (mut fabric, mut pool) = setup();
        // All four servers stream from the pool; aggregate is capped by the
        // pool's single 21 GB/s link, not by its 97 GB/s DRAM.
        let chunk = 1_000_000u64;
        let mut done = SimTime::ZERO;
        let total = 84_000_000u64;
        for i in 0..(total / chunk / 4) {
            for s in 0..4 {
                let c = pool.read(
                    &mut fabric,
                    SimTime::from_nanos(i),
                    NodeId(s),
                    chunk,
                    None,
                );
                done = done.max(c.complete);
            }
        }
        let bw = Bandwidth::measured(total, done.duration_since(SimTime::ZERO));
        assert!(bw.as_gbps() < 22.0, "aggregate {bw} exceeds pool uplink");
        assert!(bw.as_gbps() > 15.0, "aggregate {bw} implausibly low");
    }

    #[test]
    fn remote_access_counter_attributes_to_requesters() {
        let (mut fabric, mut pool) = setup();
        pool.read(&mut fabric, SimTime::ZERO, NodeId(1), 64, None);
        pool.write(&mut fabric, SimTime::ZERO, NodeId(2), 64, None);
        assert_eq!(pool.memory().remote_access_count(), 2);
        assert_eq!(pool.memory().local_access_count(), 0);
    }
}
