//! Deployment cost model (§4.2 "Lower Entry Barrier").
//!
//! The paper compares required resources rather than quoting dollar values;
//! this model does the same with explicit, documented unit prices so the
//! `cost` bench can print the two scenarios of §4.2:
//!
//! 1. **Equal disaggregated memory** — both deployments offer the same pool
//!    capacity. The physical deployment additionally needs local memory in
//!    every server (pooled DIMMs cannot serve as local memory), a pool
//!    chassis, rack space, and switch ports — so it costs strictly more.
//! 2. **Equal total memory** — same total DIMM count. Costs differ only by
//!    the pool hardware, but physical servers end up with *less local
//!    memory*, which is the operational deficiency Figure 5 demonstrates.
//!
//! All prices are in abstract "cost units"; defaults are roughly
//! proportional to 2023 street prices (1 unit ≈ $1).

use serde::{Deserialize, Serialize};

/// Unit prices for deployment components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentPrices {
    /// Per GB of DDR5 DIMM.
    pub memory_per_gb: f64,
    /// Pool appliance chassis: power supply, motherboard, CPU or
    /// ASIC/FPGA controller.
    pub pool_chassis: f64,
    /// One fabric switch port.
    pub switch_port: f64,
    /// One rack unit of space (amortized).
    pub rack_unit: f64,
    /// One CXL fabric adapter (present in every server in both designs;
    /// the pool needs one per uplink too).
    pub fabric_adapter: f64,
}

impl Default for ComponentPrices {
    fn default() -> Self {
        ComponentPrices {
            memory_per_gb: 4.0,
            pool_chassis: 1500.0,
            switch_port: 200.0,
            rack_unit: 100.0,
            fabric_adapter: 150.0,
        }
    }
}

/// One line of a bill of materials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostItem {
    /// Component name.
    pub name: String,
    /// Quantity.
    pub qty: f64,
    /// Price per unit.
    pub unit: f64,
}

impl CostItem {
    /// Line subtotal.
    pub fn subtotal(&self) -> f64 {
        self.qty * self.unit
    }
}

/// A deployment's bill of materials.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Bill {
    /// Deployment label.
    pub label: String,
    /// Line items.
    pub items: Vec<CostItem>,
    /// Local memory available per server, GB (operational metric).
    pub local_gb_per_server: f64,
    /// Disaggregated (pool) capacity, GB.
    pub disaggregated_gb: f64,
}

impl Bill {
    /// Total cost in units.
    pub fn total(&self) -> f64 {
        self.items.iter().map(CostItem::subtotal).sum()
    }

    fn push(&mut self, name: &str, qty: f64, unit: f64) {
        self.items.push(CostItem {
            name: name.to_string(),
            qty,
            unit,
        });
    }
}

/// Bill for a logical-pool deployment: `servers` machines with
/// `memory_gb_per_server` each, of which `shared_gb_per_server` is lent to
/// the pool. No extra hardware beyond the servers' own adapters and ports.
pub fn lmp_bill(
    prices: &ComponentPrices,
    servers: u32,
    memory_gb_per_server: f64,
    shared_gb_per_server: f64,
) -> Bill {
    assert!(shared_gb_per_server <= memory_gb_per_server);
    let mut b = Bill {
        label: "Logical pool".into(),
        // In an LMP, un-shared memory is fully usable locally; even shared
        // memory is local-speed for the host. Report the private portion.
        local_gb_per_server: memory_gb_per_server - shared_gb_per_server,
        disaggregated_gb: shared_gb_per_server * servers as f64,
        ..Bill::default()
    };
    b.push(
        "server DIMMs (GB)",
        servers as f64 * memory_gb_per_server,
        prices.memory_per_gb,
    );
    b.push("fabric adapters", servers as f64, prices.fabric_adapter);
    b.push("switch ports", servers as f64, prices.switch_port);
    b
}

/// Bill for a physical-pool deployment: `servers` machines with
/// `local_gb_per_server` each plus a pool appliance of `pool_gb`,
/// attached with `pool_uplinks` switch ports/adapters and occupying
/// `pool_rack_units` of rack space.
pub fn physical_bill(
    prices: &ComponentPrices,
    servers: u32,
    local_gb_per_server: f64,
    pool_gb: f64,
    pool_uplinks: u32,
    pool_rack_units: u32,
) -> Bill {
    let mut b = Bill {
        label: "Physical pool".into(),
        local_gb_per_server,
        disaggregated_gb: pool_gb,
        ..Bill::default()
    };
    b.push(
        "server DIMMs (GB)",
        servers as f64 * local_gb_per_server,
        prices.memory_per_gb,
    );
    b.push("pool DIMMs (GB)", pool_gb, prices.memory_per_gb);
    b.push("pool chassis (PSU+MB+ASIC)", 1.0, prices.pool_chassis);
    b.push("pool rack units", pool_rack_units as f64, prices.rack_unit);
    b.push(
        "fabric adapters",
        servers as f64 + pool_uplinks as f64,
        prices.fabric_adapter,
    );
    b.push(
        "switch ports",
        servers as f64 + pool_uplinks as f64,
        prices.switch_port,
    );
    b
}

/// The two comparisons of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Both deployments provide the same disaggregated capacity.
    EqualDisaggregated,
    /// Both deployments buy the same total DIMM capacity.
    EqualTotal,
}

/// Outcome of a scenario comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Which scenario was evaluated.
    pub scenario: Scenario,
    /// The LMP bill.
    pub lmp: Bill,
    /// The physical-pool bill.
    pub physical: Bill,
}

impl Comparison {
    /// physical / lmp cost ratio.
    pub fn cost_ratio(&self) -> f64 {
        self.physical.total() / self.lmp.total()
    }
}

/// Evaluate a §4.2 scenario for `servers` servers needing
/// `local_need_gb` of private memory each and `pool_gb` of disaggregated
/// capacity.
pub fn compare(
    prices: &ComponentPrices,
    scenario: Scenario,
    servers: u32,
    local_need_gb: f64,
    pool_gb: f64,
) -> Comparison {
    let per_server_share = pool_gb / servers as f64;
    match scenario {
        Scenario::EqualDisaggregated => {
            // Both offer `pool_gb` of disaggregated memory; the physical
            // deployment must buy local DIMMs *in addition*.
            let lmp = lmp_bill(
                prices,
                servers,
                local_need_gb + per_server_share,
                per_server_share,
            );
            let physical = physical_bill(prices, servers, local_need_gb, pool_gb, 2, 2);
            Comparison {
                scenario,
                lmp,
                physical,
            }
        }
        Scenario::EqualTotal => {
            // Same DIMM total: N·local + pool. The physical deployment
            // delegates `pool_gb` to the appliance, shrinking server-local
            // memory.
            let total = servers as f64 * local_need_gb + pool_gb;
            let phys_local = (total - pool_gb) / servers as f64;
            let lmp_per_server = total / servers as f64;
            let lmp = lmp_bill(prices, servers, lmp_per_server, per_server_share);
            let physical = physical_bill(prices, servers, phys_local, pool_gb, 2, 2);
            Comparison {
                scenario,
                lmp,
                physical,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_disaggregated_physical_costs_more() {
        let p = ComponentPrices::default();
        let c = compare(&p, Scenario::EqualDisaggregated, 4, 8.0, 64.0);
        assert!(
            c.cost_ratio() > 1.0,
            "physical should cost more: ratio {}",
            c.cost_ratio()
        );
        assert_eq!(c.lmp.disaggregated_gb, c.physical.disaggregated_gb);
    }

    #[test]
    fn equal_total_physical_has_less_local_memory() {
        let p = ComponentPrices::default();
        let c = compare(&p, Scenario::EqualTotal, 4, 8.0, 64.0);
        // Same DIMM bill on both sides.
        let dimms = |b: &Bill| -> f64 {
            b.items
                .iter()
                .filter(|i| i.name.contains("DIMM"))
                .map(CostItem::subtotal)
                .sum()
        };
        assert!((dimms(&c.lmp) - dimms(&c.physical)).abs() < 1e-9);
        // But physical still pays for chassis/ports/rack…
        assert!(c.cost_ratio() > 1.0);
        // …and its servers have less local memory (the §4.5 operational gap:
        // an LMP server can use its full DIMM capacity locally).
        let lmp_max_local = c.lmp.local_gb_per_server + c.lmp.disaggregated_gb / 4.0;
        assert!(lmp_max_local > c.physical.local_gb_per_server);
    }

    #[test]
    fn bills_enumerate_pool_hardware() {
        let p = ComponentPrices::default();
        let b = physical_bill(&p, 4, 8.0, 64.0, 2, 2);
        let names: Vec<&str> = b.items.iter().map(|i| i.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("chassis")));
        assert!(names.iter().any(|n| n.contains("rack")));
        let lb = lmp_bill(&p, 4, 24.0, 16.0);
        assert!(lb.items.iter().all(|i| !i.name.contains("chassis")));
    }

    #[test]
    fn lmp_switch_ports_scale_only_with_servers() {
        let p = ComponentPrices::default();
        let lmp = lmp_bill(&p, 4, 24.0, 16.0);
        let phys = physical_bill(&p, 4, 8.0, 64.0, 2, 2);
        let ports = |b: &Bill| {
            b.items
                .iter()
                .find(|i| i.name == "switch ports")
                .map(|i| i.qty)
                .unwrap()
        };
        assert_eq!(ports(&lmp), 4.0);
        assert_eq!(ports(&phys), 6.0);
    }

    #[test]
    #[should_panic]
    fn lmp_share_cannot_exceed_capacity() {
        let p = ComponentPrices::default();
        let _ = lmp_bill(&p, 4, 8.0, 9.0);
    }
}
