// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Ablations: coherence granularity and snoop-filter capacity (§3.2, §5
//! "Cache coherence").
//!
//! * `granularity/*` — adjacent-word write sharing at 64 B (cache line) vs
//!   16 B (sub-line) tracking: the false-sharing ping-pong disappears at
//!   finer granularity.
//! * `filter/*` — a working set swept against a bounded inclusive snoop
//!   filter: within capacity there are no back-invalidations; past it,
//!   every touch evicts.

use criterion::{criterion_group, criterion_main, Criterion};
use lmp_coherence::{CoherenceConfig, CoherentRegion};
use lmp_sim::units::MIB;
use std::hint::black_box;

fn bench_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("granularity");
    for (name, cfg) in [
        ("line-64B", CoherenceConfig::cache_line()),
        ("subline-16B", CoherenceConfig::default_lmp()),
    ] {
        group.bench_function(name, |b| {
            let mut region = CoherentRegion::new(cfg.clone(), MIB);
            b.iter(|| {
                // Two nodes write adjacent (but distinct) 8-byte words.
                black_box(region.store(0, 0, 1).expect("in region"));
                black_box(region.store(1, 16, 1).expect("in region"));
            });
        });
    }
    group.finish();
    // Report the message counts the timing hides.
    for (name, cfg) in [
        ("line-64B", CoherenceConfig::cache_line()),
        ("subline-16B", CoherenceConfig::default_lmp()),
    ] {
        let mut region = CoherentRegion::new(cfg, MIB);
        for _ in 0..1_000 {
            region.store(0, 0, 1).expect("in region");
            region.store(1, 16, 1).expect("in region");
        }
        eprintln!(
            "granularity/{name}: {} protocol messages for 2000 adjacent writes",
            region.total_cost().messages
        );
    }
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    for (name, blocks) in [("within-capacity", 512u64), ("thrash-4x", 4096u64)] {
        group.bench_function(name, |b| {
            let mut cfg = CoherenceConfig::default_lmp();
            cfg.filter_capacity = 1024;
            let mut region = CoherentRegion::new(cfg, 64 * MIB);
            let mut i = 0u64;
            b.iter(|| {
                let addr = (i % blocks) * 16;
                i += 1;
                black_box(region.load(0, addr).expect("in region"));
            });
        });
    }
    group.finish();
    for (name, blocks) in [("within-capacity", 512u64), ("thrash-4x", 4096u64)] {
        let mut cfg = CoherenceConfig::default_lmp();
        cfg.filter_capacity = 1024;
        let mut region = CoherentRegion::new(cfg, 64 * MIB);
        for i in 0..20_000u64 {
            region.load(0, (i % blocks) * 16).expect("in region");
        }
        eprintln!(
            "filter/{name}: {} back-invalidations over 20000 loads",
            region.total_cost().back_invalidations
        );
    }
}

criterion_group!(benches, bench_granularity, bench_filter);
criterion_main!(benches);
