// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Ablation: two-level translation with and without the per-server
//! translation cache (§5 "Address translation").
//!
//! Measures host-side cost of resolving logical addresses — the operation
//! that sits on every pool access — with the TLB enabled vs disabled, and
//! under post-migration staleness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use std::hint::black_box;

fn pool_with_tlb(tlb_capacity: usize, segments: u32) -> (LogicalPool, Vec<SegmentId>) {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: (segments as u64 + 8) * FRAME_BYTES,
        shared_per_server: (segments as u64 + 4) * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity,
    });
    let segs = (0..segments)
        .map(|i| {
            pool.alloc(FRAME_BYTES, Placement::On(NodeId(i % 4)))
                .expect("fits")
        })
        .collect();
    (pool, segs)
}

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate");
    for (name, tlb) in [("tlb-on", 256usize), ("tlb-off", 0)] {
        group.bench_function(name, |b| {
            let (mut pool, segs) = pool_with_tlb(tlb, 64);
            let mut i = 0usize;
            b.iter(|| {
                let seg = segs[i % segs.len()];
                i += 1;
                black_box(pool.translate(NodeId(0), seg).expect("resolves"))
            });
        });
    }
    // Staleness path: every lookup hits a translation invalidated by a
    // migration.
    group.bench_function("stale-after-migration", |b| {
        b.iter_batched(
            || {
                let (mut pool, segs) = pool_with_tlb(256, 16);
                let mut fabric = Fabric::new(LinkProfile::link1(), 4);
                for &s in &segs {
                    pool.translate(NodeId(0), s).expect("warm the cache");
                }
                for &s in &segs {
                    let to = NodeId((pool.holder_of(s).unwrap().0 + 1) % 4);
                    migrate_segment(&mut pool, &mut fabric, SimTime::ZERO, s, to)
                        .expect("migrates");
                }
                (pool, segs)
            },
            |(mut pool, segs)| {
                for &s in &segs {
                    black_box(pool.translate(NodeId(0), s).expect("resolves"));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_translate);
criterion_main!(benches);
