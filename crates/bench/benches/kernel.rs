// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Substrate micro-benchmarks: event-engine throughput, frame allocation,
//! coherent-region ops, and the fabric hot path. These guard against
//! regressions in the simulator itself — the evaluation's run time is
//! dominated by these operations.

use criterion::{criterion_group, criterion_main, Criterion};
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{FrameAllocator, MemoryNode, RegionKind};
use lmp_sim::prelude::*;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/schedule-and-drain-1k", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new();
            for i in 0..1_000u32 {
                eng.schedule_at(SimTime::from_nanos((i as u64 * 37) % 5_000), i)
                    .expect("fresh engine: every time is in the future");
            }
            let mut sum = 0u64;
            eng.run(|_, i| sum += i as u64);
            black_box(sum)
        });
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("allocator/alloc-free-cycle", |b| {
        let mut a = FrameAllocator::new(50_000);
        b.iter(|| {
            let f = a.alloc().expect("room");
            black_box(f);
            a.free(f).expect("allocated");
        });
    });
}

fn bench_dram_access(c: &mut Criterion) {
    c.bench_function("mem/timed-access", |b| {
        let mut node = MemoryNode::new(
            "bench",
            GIB,
            GIB / 2,
            lmp_mem::DramProfile::xeon_gold_5120(),
        );
        let frame = node.alloc(RegionKind::Shared).expect("room");
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let cpl = node.access(now, 64, 0, true, Some(frame));
            now = cpl.complete;
            black_box(cpl)
        });
    });
}

fn bench_fabric_read(c: &mut Criterion) {
    c.bench_function("fabric/remote-read", |b| {
        let mut fabric = Fabric::new(LinkProfile::link1(), 4);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let cpl = fabric.read(now, NodeId(0), NodeId(1), 4096);
            now = cpl.complete;
            black_box(cpl)
        });
    });
}

criterion_group!(
    benches,
    bench_engine,
    bench_allocator,
    bench_dram_access,
    bench_fabric_read
);
criterion_main!(benches);
