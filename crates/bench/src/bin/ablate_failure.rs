// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Ablation: replication vs erasure coding** (§5 "Failure domains").
//!
//! Protects a working set with (a) nothing, (b) mirroring, (c) XOR parity
//! groups of increasing width, then crashes one server and compares:
//! storage overhead, write amplification, recovery traffic, and data loss.

use lmp_bench::{emit_header, emit_row};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    storage_overhead_pct: f64,
    write_amplification: f64,
    recovery_bytes: u64,
    recovery_ms: f64,
    segments_lost: usize,
}

const SERVERS: u32 = 6;
const SEGS_PER_SERVER: u32 = 2;
const SEG_BYTES: u64 = 4 * FRAME_BYTES;

fn build() -> (LogicalPool, Fabric, Vec<SegmentId>) {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: SERVERS,
        capacity_per_server: 64 * FRAME_BYTES,
        shared_per_server: 48 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    let fabric = Fabric::new(LinkProfile::link1(), SERVERS);
    let mut segs = Vec::new();
    for s in 0..SERVERS {
        for _ in 0..SEGS_PER_SERVER {
            segs.push(pool.alloc(SEG_BYTES, Placement::On(NodeId(s))).expect("fits"));
        }
    }
    (pool, fabric, segs)
}

fn used_frames(pool: &LogicalPool) -> u64 {
    (0..SERVERS)
        .map(|s| pool.node(NodeId(s)).split().shared_used())
        .sum()
}

fn run(scheme: &str) -> Row {
    let (mut pool, mut fabric, segs) = build();
    let mut pm = ProtectionManager::new();
    let base_frames = used_frames(&pool);

    match scheme {
        "none" => {}
        "mirror" => {
            for &s in &segs {
                pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, s)
                    .expect("mirror fits");
            }
        }
        parity => {
            let width: usize = parity
                .strip_prefix("parity-")
                .expect("parity-N")
                .parse()
                .expect("numeric width");
            // Order segments server-major round-robin; any `width ≤ SERVERS`
            // consecutive segments then sit on distinct servers.
            let mut by_server: Vec<Vec<SegmentId>> = vec![Vec::new(); SERVERS as usize];
            for &s in &segs {
                by_server[pool.holder_of(s).expect("live").0 as usize].push(s);
            }
            let mut ordered: Vec<SegmentId> = Vec::with_capacity(segs.len());
            for round in 0..SEGS_PER_SERVER as usize {
                for per in &by_server {
                    ordered.push(per[round]);
                }
            }
            let mut rest = ordered.as_slice();
            while rest.len() >= width {
                let (group, tail) = rest.split_at(width);
                pm.protect_parity(&mut pool, &mut fabric, SimTime::ZERO, group)
                    .expect("parity fits");
                rest = tail;
            }
            // Leftover members (fewer than width) get mirrors instead.
            for &s in rest {
                pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, s)
                    .expect("mirror fits");
            }
        }
    }
    let protected_frames = used_frames(&pool);
    let overhead =
        (protected_frames as f64 - base_frames as f64) / base_frames as f64 * 100.0;

    // Write amplification over a spread of protected writes.
    let mut primary = 0u64;
    let mut extra = 0u64;
    for (i, &s) in segs.iter().enumerate() {
        let amp = pm
            .write(
                &mut pool,
                LogicalAddr::new(s, (i as u64 * 640) % (SEG_BYTES - 64)),
                &[0xAB; 64],
            )
            .expect("protected write");
        primary += amp.primary_bytes;
        extra += amp.extra_bytes;
    }

    // Crash server 0 and recover.
    let affected = pool.crash_server(NodeId(0));
    let report = pm.recover(&mut pool, &mut fabric, SimTime::ZERO, NodeId(0), &affected);

    Row {
        scheme: scheme.to_string(),
        storage_overhead_pct: overhead,
        write_amplification: (primary + extra) as f64 / primary as f64,
        recovery_bytes: report.bytes_transferred,
        recovery_ms: report.complete.as_secs_f64() * 1e3,
        segments_lost: report.lost.len(),
    }
}

fn main() {
    emit_header(
        "Ablation: failure masking",
        "None vs mirroring vs XOR parity (one server crash)",
        "mirroring: 100% storage overhead, cheap recovery; parity: 1/k overhead, \
         k-fold recovery reads; none: data loss",
    );
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>12} {:>6}",
        "Scheme", "Storage+", "WriteAmp", "RecoveryBytes", "RecoveryMs", "Lost"
    );
    // Parity width is capped at SERVERS − 1: the parity segment itself
    // must live on a server hosting no member.
    for scheme in ["none", "mirror", "parity-3", "parity-4"] {
        let row = run(scheme);
        emit_row(
            &format!(
                "{:<10} {:>9.0}% {:>9.2}x {:>14} {:>12.3} {:>6}",
                row.scheme,
                row.storage_overhead_pct,
                row.write_amplification,
                row.recovery_bytes,
                row.recovery_ms,
                row.segments_lost
            ),
            &row,
        );
    }
}
