// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Table 2** — min/max latency under load and bandwidth for the two
//! emulated CXL links.
//!
//! Paper values: Link0 163–418 ns, 34.5 GB/s; Link1 261–527 ns, 21 GB/s.
//! The sweep drives each link with an increasing number of closed-loop
//! streams (the Intel MLC loaded-latency methodology): the latency of
//! small probe reads is recorded at each load level; the minimum comes
//! from the idle link, the maximum from saturation, and bandwidth is the
//! achieved rate at the deepest load level.

use lmp_bench::{emit_header, emit_row};
use lmp_fabric::{Link, LinkProfile};
use lmp_sim::prelude::*;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Serialize)]
struct Row {
    link: String,
    min_latency_ns: u64,
    max_latency_ns: u64,
    bandwidth_gbps: f64,
    paper_min_ns: u64,
    paper_max_ns: u64,
    paper_bw_gbps: f64,
    sweep: Vec<SweepPoint>,
}

#[derive(Serialize)]
struct SweepPoint {
    streams: u32,
    probe_latency_ns: u64,
    achieved_gbps: f64,
}

/// Run `streams` closed-loop 2 MiB streams for a while; return the latency
/// component a probe read sees at steady state and the achieved bandwidth.
fn load_level(profile: &LinkProfile, streams: u32) -> (u64, f64) {
    let mut link = Link::new(profile.clone());
    let chunk = 2 * MIB;
    let rounds = 200u64;
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u64)>> = BinaryHeap::new();
    for s in 0..streams {
        heap.push(Reverse((SimTime::ZERO, s, rounds)));
    }
    let mut bytes = 0u64;
    let mut done = SimTime::ZERO;
    let mut last_latency = profile.min_latency();
    while let Some(Reverse((now, s, left))) = heap.pop() {
        let tr = link.transfer(now, chunk);
        bytes += chunk;
        done = done.max(tr.delivered());
        last_latency = tr.latency;
        if left > 1 {
            heap.push(Reverse((tr.delivered(), s, left - 1)));
        }
    }
    let bw = Bandwidth::measured(bytes, done.duration_since(SimTime::ZERO));
    (last_latency.as_nanos(), bw.as_gbps())
}

fn main() {
    emit_header(
        "Table 2",
        "Min/max latency under load and bandwidth per emulated CXL link",
        "Link0 163/418ns 34.5GB/s; Link1 261/527ns 21.0GB/s",
    );
    println!(
        "{:<8} {:>10} {:>10} {:>12}   (sweep: streams -> latency)",
        "Link", "Min lat", "Max lat", "Bandwidth"
    );
    for (profile, pmin, pmax, pbw) in [
        (LinkProfile::link0(), 163, 418, 34.5),
        (LinkProfile::link1(), 261, 527, 21.0),
    ] {
        let mut sweep = Vec::new();
        let mut min_lat = u64::MAX;
        let mut max_lat = 0u64;
        let mut best_bw: f64 = 0.0;
        for streams in [1u32, 2, 4, 8, 16, 32, 64] {
            let (lat, bw) = load_level(&profile, streams);
            min_lat = min_lat.min(lat);
            max_lat = max_lat.max(lat);
            best_bw = best_bw.max(bw);
            sweep.push(SweepPoint {
                streams,
                probe_latency_ns: lat,
                achieved_gbps: bw,
            });
        }
        // The unloaded endpoint comes from a truly idle link.
        let mut idle = Link::new(profile.clone());
        let idle_lat = idle.transfer(SimTime::ZERO, 64).latency.as_nanos();
        min_lat = min_lat.min(idle_lat);

        let summary: Vec<String> = sweep
            .iter()
            .map(|p| format!("{}→{}ns", p.streams, p.probe_latency_ns))
            .collect();
        emit_row(
            &format!(
                "{:<8} {min_lat:>8}ns {max_lat:>8}ns {best_bw:>9.1}GB/s  {}",
                profile.name,
                summary.join(" ")
            ),
            &Row {
                link: profile.name.clone(),
                min_latency_ns: min_lat,
                max_latency_ns: max_lat,
                bandwidth_gbps: best_bw,
                paper_min_ns: pmin,
                paper_max_ns: pmax,
                paper_bw_gbps: pbw,
                sweep,
            },
        );
    }
}
