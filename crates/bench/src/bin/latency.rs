// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **§4.3 latency analysis** — loaded-latency ratios, remote vs local.
//!
//! The paper: "the maximum remote loaded latency is 2.8× and 3.6× higher
//! than maximum loaded local latency, when using Link0 and Link1". This
//! binary saturates local DRAM and each link with closed-loop streams and
//! reports the measured maxima and their ratios.

use lmp_bench::{emit_header, emit_row};
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramChannel, DramProfile};
use lmp_sim::prelude::*;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Serialize)]
struct Row {
    target: String,
    unloaded_ns: u64,
    max_loaded_ns: u64,
    ratio_vs_local_max: f64,
    paper_ratio: Option<f64>,
}

/// Saturate local DRAM; return (unloaded, max loaded) latency.
fn local_latency() -> (u64, u64) {
    let mut idle = DramChannel::new(DramProfile::xeon_gold_5120());
    let unloaded = idle.access(SimTime::ZERO, 64).latency.as_nanos();

    let mut dram = DramChannel::new(DramProfile::xeon_gold_5120());
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u64)>> = BinaryHeap::new();
    for s in 0..32 {
        heap.push(Reverse((SimTime::ZERO, s, 300)));
    }
    let mut max_lat = 0;
    while let Some(Reverse((now, s, left))) = heap.pop() {
        let a = dram.access(now, 2 * MIB);
        max_lat = max_lat.max(a.latency.as_nanos());
        if left > 1 {
            heap.push(Reverse((a.complete, s, left - 1)));
        }
    }
    (unloaded, max_lat)
}

/// Saturate a fabric link; return (unloaded, max loaded) end-to-end
/// latency component.
fn remote_latency(profile: LinkProfile) -> (u64, u64) {
    let mut idle = Fabric::new(profile.clone(), 2);
    let unloaded = idle
        .read(SimTime::ZERO, NodeId(0), NodeId(1), 64)
        .latency
        .as_nanos();

    let mut fabric = Fabric::new(profile, 2);
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u64)>> = BinaryHeap::new();
    for s in 0..32 {
        heap.push(Reverse((SimTime::ZERO, s, 300)));
    }
    let mut max_lat = 0;
    while let Some(Reverse((now, s, left))) = heap.pop() {
        let a = fabric.read(now, NodeId(0), NodeId(1), 2 * MIB);
        max_lat = max_lat.max(a.latency.as_nanos());
        if left > 1 {
            heap.push(Reverse((a.complete, s, left - 1)));
        }
    }
    (unloaded, max_lat)
}

fn main() {
    emit_header(
        "§4.3 latency",
        "Maximum loaded latency, remote vs local",
        "remote max = 2.8x (Link0) and 3.6x (Link1) the local max",
    );
    println!(
        "{:<8} {:>12} {:>14} {:>10}",
        "Target", "Unloaded", "Max loaded", "Ratio"
    );
    let (lu, lmax) = local_latency();
    emit_row(
        &format!("{:<8} {lu:>10}ns {lmax:>12}ns {:>10.2}", "Local", 1.0),
        &Row {
            target: "local".into(),
            unloaded_ns: lu,
            max_loaded_ns: lmax,
            ratio_vs_local_max: 1.0,
            paper_ratio: None,
        },
    );
    for (profile, paper) in [(LinkProfile::link0(), 2.8), (LinkProfile::link1(), 3.6)] {
        let name = profile.name.clone();
        let (ru, rmax) = remote_latency(profile);
        let ratio = rmax as f64 / lmax as f64;
        emit_row(
            &format!("{name:<8} {ru:>10}ns {rmax:>12}ns {ratio:>10.2}"),
            &Row {
                target: name.clone(),
                unloaded_ns: ru,
                max_loaded_ns: rmax,
                ratio_vs_local_max: ratio,
                paper_ratio: Some(paper),
            },
        );
    }
}
