// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Core sweep** — bandwidth saturation vs core count.
//!
//! Supports the paper's 14-core methodology: a single core cannot saturate
//! either local DRAM or a fabric link with one outstanding stream; the
//! measured per-core bandwidth climbs until the resource saturates. The
//! knee positions (cores needed to saturate local vs remote) also explain
//! why remote slowdowns hurt: the same cores extract far less bandwidth.

use lmp_bench::{emit_header, emit_row};
use lmp_compute::{scan_segment, ScanParams};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::DramProfile;
use lmp_sim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    placement: &'static str,
    cores: u32,
    bandwidth_gbps: f64,
}

fn scan(local: bool, cores: u32) -> f64 {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 2,
        capacity_per_server: 6 * GIB,
        shared_per_server: 6 * GIB,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 2);
    let len = 4 * GIB;
    let holder = if local { NodeId(0) } else { NodeId(1) };
    let seg = pool.alloc(len, Placement::On(holder)).expect("fits");
    let out = scan_segment(
        &mut pool, &mut fabric, SimTime::ZERO, NodeId(0), seg, 0, len, ScanParams::with_cores(cores),
    )
    .expect("scan runs");
    out.bandwidth(SimTime::ZERO).as_gbps()
}

fn main() {
    emit_header(
        "Sweep: cores",
        "Scan bandwidth vs core count, local vs remote (Link1)",
        "local saturates at ~97 GB/s, remote at ~21 GB/s; remote needs fewer cores to saturate",
    );
    println!("{:<8} {:>6} {:>12}", "Target", "Cores", "Bandwidth");
    for (placement, local) in [("local", true), ("remote", false)] {
        for cores in [1u32, 2, 4, 7, 14, 28] {
            let bw = scan(local, cores);
            emit_row(
                &format!("{placement:<8} {cores:>6} {bw:>9.1}GB/s"),
                &Row {
                    placement,
                    cores,
                    bandwidth_gbps: bw,
                },
            );
        }
    }
}
