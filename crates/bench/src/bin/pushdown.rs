// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Pushdown runs** — the deterministic ship-vs-fetch crossover curve
//! (ROADMAP item 4, the paper's §4.4 "Near-memory Computing").
//!
//! One requester runs a filter over a 128 MiB vector striped across four
//! servers (its own stripe plus three remote ones), swept across a
//! selectivity grid × {idle, loaded} fabric. Each grid point runs three
//! ways in identical fresh worlds:
//!
//! * **ship** — the plan forced to ship the operator to every remote
//!   holder: holders scan at local DRAM speed, only result rows return;
//! * **fetch** — the plan forced to batched-fetch every remote stripe
//!   through one shared [`scan_ranges`] core budget at the requester;
//! * **planner** — [`Planner`]'s own per-segment cost-based choice, fed
//!   the measured selectivity and the live fabric backlog.
//!
//! The *loaded* configurations first queue a 256 MiB bulk transfer on a
//! ring over the three holders, backlogging every holder's transmit wire
//! — the incast-adjacent regime where shipping pays even at high
//! selectivity, because only the (small) result queues behind the bulk.
//!
//! Verified here, exit non-zero on any failure:
//!
//! * all three modes produce byte-identical operator results;
//! * shipping wins at low selectivity (idle *and* loaded); fetch wins at
//!   ~98% under both loads; and at ~73% the winner *flips* with load —
//!   the holder scan hides under the backlog drain, so the loaded
//!   break-even selectivity is higher — the crossover behaviour the
//!   paper's Benefit 3 predicts;
//! * the planner's per-segment choice matches the measured-best forced
//!   strategy on **every** swept point, and its run is digest-identical
//!   to that winner;
//! * each configuration, run twice, produces byte-identical digests;
//! * full mode rewrites `BENCH_pushdown.json`; smoke mode (`--smoke`,
//!   CI) re-runs the sweep and fails on digest or winner drift from the
//!   committed baseline.
//!
//! ```text
//! cargo run --release -p lmp-bench --bin pushdown            # full, rewrites BENCH_pushdown.json
//! cargo run --release -p lmp-bench --bin pushdown -- --smoke # CI gate vs committed baseline
//! ```
//!
//! [`scan_ranges`]: lmp_compute::scan_ranges
//! [`Planner`]: lmp_compute::Planner

use lmp_bench::{emit_header, emit_row};
use lmp_compute::{Choice, DistVector, OpOutput, Operator, Planner, Predicate, ScanParams};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use serde::Serialize;

const SEED: u64 = 42;
const SERVERS: u32 = 4;
/// Stripe size per server: 16 frames = 32 MiB, 128 MiB vector total.
const STRIPE_FRAMES: u64 = 16;
/// Bulk bytes queued on each holder's transmit wire in loaded configs.
const LOAD_MIB: u64 = 256;
/// Filter thresholds over uniform elements in [0, 64): selectivity is
/// (63 - t)/64 ≈ {0%, 23%, 61%, 73%, 98%}. The grid brackets the idle
/// crossover (~71%) and the loaded one (~76%): t=16 sits between them,
/// so its winner flips with load — the scan-hiding effect — while every
/// other point is decisively on one side under both loads.
const THRESHOLDS: [u64; 5] = [63, 48, 24, 16, 0];
const MODES: [&str; 3] = ["ship", "fetch", "planner"];

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
}

#[derive(Serialize)]
struct ConfigRow {
    load: &'static str,
    threshold: u64,
    /// Measured selectivity in permille (bytes returned / bytes scanned).
    selectivity_pm: u64,
    mode: &'static str,
    complete_ns: u64,
    fabric_mib: u64,
    result_mib: u64,
    shipped_segments: u32,
    fetched_segments: u32,
    digest: String,
}

/// Build a fresh world: pool, fabric (optionally backlogged), the striped
/// vector with LCG contents, and the measured selectivity in permille.
fn build_world(loaded: bool, threshold: u64) -> (LogicalPool, Fabric, DistVector, u64) {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: SERVERS,
        capacity_per_server: (STRIPE_FRAMES + 2) * FRAME_BYTES,
        shared_per_server: STRIPE_FRAMES * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), SERVERS);
    let servers: Vec<NodeId> = (0..SERVERS).map(NodeId).collect();
    let v = DistVector::stripe_even(&mut pool, SERVERS as u64 * STRIPE_FRAMES * FRAME_BYTES, &servers)
        .expect("vector fits");
    // Deterministic contents: LCG elements uniform in [0, 64).
    let mut x = SEED;
    let mut matches = 0u64;
    let mut total = 0u64;
    for (_, seg, len) in &v.stripes {
        let mut bytes = Vec::with_capacity(*len as usize);
        for _ in 0..(len / 8) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = (x >> 33) % 64;
            if e > threshold {
                matches += 1;
            }
            total += 1;
            bytes.extend(e.to_le_bytes());
        }
        pool.write_bytes(LogicalAddr::new(*seg, 0), &bytes)
            .expect("fill stripe");
    }
    if loaded {
        // Ring bulk transfers among the three holders: every holder's
        // transmit (up) wire carries a LOAD_MIB backlog the sweep's reads
        // and shipped results must queue behind.
        for h in 1..SERVERS {
            let dst = NodeId(h % (SERVERS - 1) + 1);
            fabric.write(SimTime::ZERO, NodeId(h), dst, LOAD_MIB * MIB);
        }
    }
    let sel_pm = matches * 1000 / total;
    (pool, fabric, v, sel_pm)
}

/// One grid point in one mode, in a fresh world. Returns the row plus the
/// planner's remote-segment choice (uniform across remote segments —
/// verified — and only meaningful in planner mode).
fn run_config(loaded: bool, threshold: u64, mode: &'static str) -> (ConfigRow, OpOutput, Choice) {
    let (mut pool, mut fabric, v, sel_pm) = build_world(loaded, threshold);
    let op = Operator::Filter(Predicate::Greater(threshold));
    let planner = Planner::new(ScanParams::default(), sel_pm as f64 / 1000.0);
    let plan = planner
        .plan(&mut pool, &fabric, SimTime::ZERO, NodeId(0), &v, op)
        .expect("plan");
    let mut remote_choice = Choice::Ship;
    let mut uniform = true;
    for (i, sp) in plan.segments.iter().filter(|s| s.choice != Choice::Local).enumerate() {
        if i == 0 {
            remote_choice = sp.choice;
        } else if sp.choice != remote_choice {
            uniform = false;
        }
    }
    if !uniform {
        // Symmetric stripes must get symmetric choices; a split plan here
        // means the cost model lost determinism.
        eprintln!("pushdown: non-uniform plan on symmetric stripes: {plan:?}");
        std::process::exit(1);
    }
    let plan = match mode {
        "ship" => plan.forced(Choice::Ship),
        "fetch" => plan.forced(Choice::Fetch),
        _ => plan,
    };
    let (out, outcome) = planner
        .execute(&mut pool, &mut fabric, SimTime::ZERO, NodeId(0), op, &plan)
        .expect("execute");

    let mut digest = FNV_OFFSET;
    match &out {
        OpOutput::Scalar(s) => fnv_fold(&mut digest, *s),
        OpOutput::Rows(rows) | OpOutput::Top(rows) => {
            fnv_fold(&mut digest, rows.len() as u64);
            for r in rows {
                fnv_fold(&mut digest, *r);
            }
        }
    }
    fnv_fold(&mut digest, outcome.complete.as_nanos());
    fnv_fold(&mut digest, outcome.fabric_bytes);
    fnv_fold(&mut digest, outcome.local_bytes);
    fnv_fold(&mut digest, outcome.result_bytes);
    fnv_fold(&mut digest, outcome.shipped_segments as u64);
    fnv_fold(&mut digest, outcome.fetched_segments as u64);

    let row = ConfigRow {
        load: if loaded { "loaded" } else { "idle" },
        threshold,
        selectivity_pm: sel_pm,
        mode,
        complete_ns: outcome.complete.as_nanos(),
        fabric_mib: outcome.fabric_bytes / MIB,
        result_mib: outcome.result_bytes / MIB,
        shipped_segments: outcome.shipped_segments,
        fetched_segments: outcome.fetched_segments,
        digest: format!("{digest:#018x}"),
    };
    (row, out, remote_choice)
}

/// Pull `"key":<value>` out of flat JSON; values may be quoted strings.
fn json_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

struct Point {
    load: &'static str,
    threshold: u64,
    winner: &'static str,
    planner_choice: &'static str,
    rows: Vec<ConfigRow>,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    emit_header(
        "pushdown",
        "ship-vs-fetch crossover: cost-based operator pushdown per segment",
        "shipping wins at low selectivity; fetch wins at ~98%; at ~73% the winner flips to ship when the links carry a backlog; the planner picks the measured winner everywhere",
    );

    let mut points: Vec<Point> = Vec::new();
    for loaded in [false, true] {
        for threshold in THRESHOLDS {
            let mut rows = Vec::new();
            let mut outs = Vec::new();
            let mut planner_choice = Choice::Ship;
            for mode in MODES {
                let (row, out, choice) = run_config(loaded, threshold, mode);
                let (again, _, _) = run_config(loaded, threshold, mode);
                if row.digest != again.digest {
                    eprintln!(
                        "pushdown: {}/t{}/{} not deterministic: {} vs {}",
                        row.load, threshold, mode, row.digest, again.digest
                    );
                    std::process::exit(1);
                }
                if mode == "planner" {
                    planner_choice = choice;
                }
                emit_row(
                    &format!(
                        "{:6} t={:>2} sel {:>4}‰ {:7} complete {:>13} ns fabric {:>4} MiB ship/fetch {}/{}  {}",
                        row.load,
                        threshold,
                        row.selectivity_pm,
                        mode,
                        row.complete_ns,
                        row.fabric_mib,
                        row.shipped_segments,
                        row.fetched_segments,
                        row.digest,
                    ),
                    &row,
                );
                rows.push(row);
                outs.push(out);
            }
            if outs[0] != outs[1] || outs[1] != outs[2] {
                eprintln!(
                    "pushdown: results diverge across modes at {}/t{}",
                    rows[0].load, threshold
                );
                std::process::exit(1);
            }
            let winner = if rows[0].complete_ns <= rows[1].complete_ns {
                "ship"
            } else {
                "fetch"
            };
            let planner_choice = match planner_choice {
                Choice::Ship => "ship",
                _ => "fetch",
            };
            if planner_choice != winner {
                eprintln!(
                    "pushdown: planner chose {} but {} measured best at {}/t{} ({} vs {} ns)",
                    planner_choice, winner, rows[0].load, threshold,
                    rows[0].complete_ns, rows[1].complete_ns
                );
                std::process::exit(1);
            }
            // The planner run must be byte-identical to the winning
            // forced run: same choices, same world, same digest.
            let winner_row = if winner == "ship" { &rows[0] } else { &rows[1] };
            if rows[2].digest != winner_row.digest {
                eprintln!(
                    "pushdown: planner digest {} differs from measured-best {} digest {} at {}/t{}",
                    rows[2].digest, winner, winner_row.digest, rows[0].load, threshold
                );
                std::process::exit(1);
            }
            points.push(Point {
                load: if loaded { "loaded" } else { "idle" },
                threshold,
                winner,
                planner_choice,
                rows,
            });
        }
    }

    // Crossover direction: the headline claim of the curve.
    let winner_at = |load: &str, t: u64| {
        points
            .iter()
            .find(|p| p.load == load && p.threshold == t)
            .map(|p| p.winner)
            .unwrap_or("missing")
    };
    let direction_ok = winner_at("idle", 63) == "ship"
        && winner_at("idle", 0) == "fetch"
        && winner_at("loaded", 63) == "ship"
        && winner_at("loaded", 0) == "fetch"
        // The load-induced crossover shift: at ~73% selectivity the idle
        // fabric favors fetch, but once the holders' wires carry a backlog
        // the scan hides under the queue drain and shipping wins.
        && winner_at("idle", 16) == "fetch"
        && winner_at("loaded", 16) == "ship";
    if !direction_ok {
        eprintln!(
            "pushdown: crossover direction wrong: idle t63={} t16={} t0={}, loaded t63={} t16={} t0={}",
            winner_at("idle", 63),
            winner_at("idle", 16),
            winner_at("idle", 0),
            winner_at("loaded", 63),
            winner_at("loaded", 16),
            winner_at("loaded", 0)
        );
        std::process::exit(1);
    }

    if smoke {
        let baseline = match std::fs::read_to_string("BENCH_pushdown.json") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pushdown --smoke: no committed BENCH_pushdown.json baseline ({e})");
                std::process::exit(2);
            }
        };
        let mut ok = true;
        for p in &points {
            let wkey = format!("winner_{}_t{}", p.load, p.threshold);
            match json_field(&baseline, &wkey) {
                Some(b) if b == p.winner => {}
                other => {
                    eprintln!(
                        "pushdown: winner drift for {wkey}: baseline {other:?}, got {}",
                        p.winner
                    );
                    ok = false;
                }
            }
            for r in &p.rows {
                let key = format!("digest_{}_t{}_{}", p.load, p.threshold, r.mode);
                match json_field(&baseline, &key) {
                    Some(b) if b == r.digest => {}
                    Some(b) => {
                        eprintln!(
                            "pushdown: digest drift for {key}: baseline {b}, got {}",
                            r.digest
                        );
                        ok = false;
                    }
                    None => {
                        eprintln!("pushdown: baseline missing {key}");
                        ok = false;
                    }
                }
            }
        }
        println!(
            "smoke: {} grid points × {} modes — {}",
            points.len(),
            MODES.len(),
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    // Flat, string-searchable baseline (the vendored serde_json shim is
    // write-only, so the smoke gate reads fields back with json_field).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"stripe_mib\": {},\n", STRIPE_FRAMES * FRAME_BYTES / MIB));
    json.push_str(&format!("  \"load_mib\": {LOAD_MIB},\n"));
    for p in &points {
        json.push_str(&format!(
            "  \"winner_{}_t{}\": \"{}\",\n",
            p.load, p.threshold, p.winner
        ));
        json.push_str(&format!(
            "  \"planner_{}_t{}\": \"{}\",\n",
            p.load, p.threshold, p.planner_choice
        ));
        json.push_str(&format!(
            "  \"selectivity_pm_{}_t{}\": {},\n",
            p.load, p.threshold, p.rows[0].selectivity_pm
        ));
        for r in &p.rows {
            json.push_str(&format!(
                "  \"digest_{}_t{}_{}\": \"{}\",\n",
                p.load, p.threshold, r.mode, r.digest
            ));
            json.push_str(&format!(
                "  \"complete_ns_{}_t{}_{}\": {},\n",
                p.load, p.threshold, r.mode, r.complete_ns
            ));
        }
    }
    json.push_str(&format!("  \"points\": {}\n}}\n", points.len()));
    std::fs::write("BENCH_pushdown.json", json).expect("write BENCH_pushdown.json");
    println!(
        "full: {} grid points — crossover verified, planner matched measured-best everywhere — baseline written",
        points.len()
    );
}
