// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Ablation: locality balancing on/off** (§5 "Locality balancing").
//!
//! A client server repeatedly scans buffers that were all placed on
//! another server (placement drift after workload hand-off). Without the
//! balancer every pass is remote (link bandwidth); with the balancer the
//! hot segments migrate to the client and later passes run at local DRAM
//! speed. Prints per-pass bandwidth for both configurations.

use lmp_bench::{emit_header, emit_row};
use lmp_compute::{scan_segment, ScanParams};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::DramProfile;
use lmp_sim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    balancer: bool,
    pass: u32,
    bandwidth_gbps: f64,
    migrations_so_far: u64,
}

fn build() -> (LogicalPool, Fabric, Vec<SegmentId>) {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 4 * GIB,
        shared_per_server: 4 * GIB,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 1024,
    });
    let fabric = Fabric::new(LinkProfile::link1(), 4);
    // 8 × 256 MiB buffers, all stranded on server 0.
    let segs = (0..8)
        .map(|_| pool.alloc(256 * MIB, Placement::On(NodeId(0))).expect("fits"))
        .collect();
    (pool, fabric, segs)
}

fn run(balance: bool) -> Vec<Row> {
    let (mut pool, mut fabric, segs) = build();
    let client = NodeId(2);
    let mut balancer = LocalityBalancer::new(BalancerConfig {
        min_remote_accesses: 8,
        hysteresis: 2.0,
        max_migrations_per_round: 8,
    });
    let mut rows = Vec::new();
    let mut now = SimTime::ZERO;
    for pass in 0..6 {
        let start = now;
        let mut bytes = 0;
        for &seg in &segs {
            let len = pool.segment_len(seg).expect("live");
            let out = scan_segment(
                &mut pool, &mut fabric, now, client, seg, 0, len, ScanParams::default(),
            )
            .expect("scan runs");
            now = out.complete;
            bytes += len;
        }
        let bw = Bandwidth::measured(bytes, now.duration_since(start));
        if balance {
            let round = balancer.run_round(&mut pool, &mut fabric, now);
            for r in &round.executed {
                now = now.max(r.complete);
            }
        }
        rows.push(Row {
            balancer: balance,
            pass,
            bandwidth_gbps: bw.as_gbps(),
            migrations_so_far: balancer.migration_count(),
        });
    }
    rows
}

fn main() {
    emit_header(
        "Ablation: migration",
        "Scan bandwidth with the locality balancer off vs on",
        "balancer recovers local bandwidth (~97 GB/s) after placement drift; \
         off stays at Link1 speed (~21 GB/s)",
    );
    println!(
        "{:<10} {:>5} {:>12} {:>12}",
        "Balancer", "Pass", "Bandwidth", "Migrations"
    );
    for balance in [false, true] {
        for row in run(balance) {
            emit_row(
                &format!(
                    "{:<10} {:>5} {:>9.1}GB/s {:>12}",
                    if row.balancer { "on" } else { "off" },
                    row.pass,
                    row.bandwidth_gbps,
                    row.migrations_so_far
                ),
                &row,
            );
        }
    }
}
