// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Figures 2–5** — aggregation bandwidth on the three deployments.
//!
//! The paper's core evaluation: one server sums a vector of 8/24/64/96 GB
//! in disaggregated memory with 14 cores, 10 repetitions, on Logical,
//! Physical cache, and Physical no-cache deployments over Link0 and Link1.
//!
//! Usage: `cargo run --release -p lmp-bench --bin figures [-- --size-gb N] [--reps R]`
//! (defaults: all four paper sizes, 10 reps).
//!
//! Shape expectations from the paper: Logical ≈ local bandwidth when the
//! vector fits its share (up to 4.7× over no-cache, 3.4× over cache at
//! 24 GB); 42% over cache at 64 GB on Link1; both physical deployments
//! infeasible at 96 GB.

use lmp_bench::{emit_header, emit_row, fmt_gbps};
use lmp_sim::units::GIB;
use lmp_workloads::vector::{paper_sizes, run_figure, FigureRow, PAPER_REPS};
use serde::Serialize;

#[derive(Serialize)]
struct Row<'a> {
    figure: &'a str,
    link: &'a str,
    size_gb: u64,
    arch: &'a str,
    avg_gbps: Option<f64>,
    per_rep_gbps: &'a [f64],
}

fn figure_id(size: u64) -> &'static str {
    match size / GIB {
        8 => "Figure 2",
        24 => "Figure 3",
        64 => "Figure 4",
        96 => "Figure 5",
        _ => "Figure (custom)",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut sizes: Vec<u64> = paper_sizes().to_vec();
    let mut reps = PAPER_REPS;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--size-gb" => {
                i += 1;
                let gb: u64 = args[i].parse().expect("numeric --size-gb");
                sizes = vec![gb * GIB];
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("numeric --reps");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    for size in sizes {
        let fig = figure_id(size);
        emit_header(
            fig,
            &format!("{} GB vector aggregation bandwidth", size / GIB),
            "Logical ≥ Physical cache ≥ Physical no-cache; gaps grow on Link1",
        );
        let rows: Vec<FigureRow> = run_figure(size, reps);
        for r in &rows {
            emit_row(
                &format!(
                    "{:<6} {:>3} GB  {:<18} {}",
                    r.link,
                    r.size / GIB,
                    r.arch,
                    fmt_gbps(r.avg_gbps)
                ),
                &Row {
                    figure: fig,
                    link: &r.link,
                    size_gb: r.size / GIB,
                    arch: r.arch,
                    avg_gbps: r.avg_gbps,
                    per_rep_gbps: &r.per_rep_gbps,
                },
            );
        }
        // Ratio analysis per link, mirroring the claims in §4.3/§4.5.
        for link in ["Link0", "Link1"] {
            let get = |arch: &str| {
                rows.iter()
                    .find(|r| r.link == link && r.arch == arch)
                    .and_then(|r| r.avg_gbps)
            };
            let log = get("Logical");
            let cache = get("Physical cache");
            let nocache = get("Physical no-cache");
            match (log, cache, nocache) {
                (Some(l), Some(c), Some(n)) => println!(
                    "   {link}: Logical/{{cache,no-cache}} = {:.2}x / {:.2}x",
                    l / c,
                    l / n
                ),
                (Some(_), None, None) => println!(
                    "   {link}: only Logical is feasible (the Figure 5 flexibility result)"
                ),
                _ => {}
            }
        }
    }
}
