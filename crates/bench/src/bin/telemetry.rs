// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Telemetry runs** — rack-wide observability plus the adaptive sizing
//! control loop, end to end.
//!
//! A skewed mixed workload (zipfian KV from two clients, BFS pointer
//! chasing from a third) hammers segments all homed on server 0. Two
//! configurations run under the same seed:
//!
//! * **static** — no controller; segments stay where they were placed;
//! * **adaptive** — a [`SizingController`] ticks between rounds, reading
//!   rack telemetry snapshots, re-deriving demands from observed hotness,
//!   re-solving the sizing plan, and migrating hot segments toward their
//!   clients.
//!
//! Verified here, exit non-zero on any failure:
//!
//! * each configuration's final telemetry snapshot JSON is byte-identical
//!   across two same-seed runs (the determinism contract);
//! * the adaptive run's local-access ratio is *strictly* higher than the
//!   static run's, with at least one migration issued;
//! * the span-attributed latency breakdown (dram + fabric self-time) sums
//!   exactly to the end-to-end access latency total.
//!
//! Results land in `BENCH_telemetry.json` beside the human table.
//!
//! ```text
//! cargo run --release -p lmp-bench --bin telemetry -- --seed 42
//! ```

use lmp_bench::{emit_header, emit_row};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use lmp_workloads::graph::{bfs, PoolGraph};
use lmp_workloads::kv::{KvConfig, KvStore, KvWorkload};
use serde::Serialize;

const SERVERS: u32 = 4;
const ROUNDS: u32 = 6;
const KV_OPS_HEAVY: u64 = 300;
const KV_OPS_LIGHT: u64 = 150;

#[derive(Serialize)]
struct Row {
    config: String,
    seed: u64,
    local_access_ratio: f64,
    p99_access_ns: u64,
    migrations: u64,
    controller_ticks: u64,
    span_total_ns: u64,
    span_dram_ns: u64,
    span_fabric_ns: u64,
    snapshot_digest: String,
    deterministic: bool,
    spans_balance: bool,
}

struct Outcome {
    local_ratio: f64,
    p99_ns: u64,
    migrations: u64,
    ticks: u64,
    span_total_ns: u64,
    span_dram_ns: u64,
    span_fabric_ns: u64,
    span_sum_ns: u64,
    snapshot_json: String,
    digest: u64,
}

/// One full run of the mixed workload under one seed. Pure: same inputs
/// produce the identical final snapshot, byte for byte.
fn run(seed: u64, adaptive: bool) -> Outcome {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: SERVERS,
        capacity_per_server: 32 * FRAME_BYTES,
        shared_per_server: 24 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    pool.attach_telemetry();
    let mut fabric = Fabric::new(LinkProfile::link1(), SERVERS);

    // Everything is born on server 0; the clients live elsewhere. The
    // static run pays a fabric hop for nearly every access.
    let kv_cfg = KvConfig {
        slots: 2048,
        slots_per_segment: 256,
        zipf_exponent: 1.2,
        write_fraction: 0.1,
        placement: Placement::On(NodeId(0)),
    };
    let mut kv = KvStore::create(&mut pool, kv_cfg.clone()).expect("kv capacity");
    let graph = PoolGraph::ring_with_chords(&mut pool, 600, Placement::On(NodeId(0)))
        .expect("graph capacity");

    let rng = DetRng::new(seed);
    let mut heavy = KvWorkload::new(&kv_cfg, rng.fork("kv-heavy"));
    let mut light = KvWorkload::new(&kv_cfg, rng.fork("kv-light"));
    let mut ctl = SizingController::new(ControllerConfig::default());

    let mut now = SimTime::ZERO;
    let mut ticks = 0u64;
    for _ in 0..ROUNDS {
        let (e1, _) = heavy
            .run(&mut kv, &mut pool, &mut fabric, now, NodeId(1), KV_OPS_HEAVY)
            .expect("kv heavy round");
        let (e2, _) = light
            .run(&mut kv, &mut pool, &mut fabric, e1, NodeId(2), KV_OPS_LIGHT)
            .expect("kv light round");
        let b = bfs(&graph, &mut pool, &mut fabric, e2, NodeId(3), 0).expect("bfs round");
        now = b.complete;
        if adaptive {
            let snap = rack_snapshot(&mut pool, &mut fabric, now);
            let report = ctl.tick(&mut pool, &mut fabric, now, &snap);
            if report.acted {
                ticks += 1;
            }
        }
    }

    let snap = rack_snapshot(&mut pool, &mut fabric, now);
    let t = pool.telemetry().expect("telemetry attached");
    let breakdown = t.latency_breakdown();
    let dram = breakdown.get("dram").copied().unwrap_or(0);
    let fab = breakdown.get("fabric").copied().unwrap_or(0);
    Outcome {
        local_ratio: t.local_access_ratio(),
        p99_ns: snap
            .histogram("pool.access_latency", &[])
            .map_or(0, |h| h.p99()),
        migrations: ctl.migration_count(),
        ticks,
        span_total_ns: t.latency_total_ns(),
        span_dram_ns: dram,
        span_fabric_ns: fab,
        span_sum_ns: breakdown.values().sum(),
        snapshot_json: snap.to_json(),
        digest: snap.digest(),
    }
}

fn main() {
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("usage: telemetry [--seed N] (--seed takes an integer)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("usage: telemetry [--seed N] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }

    emit_header(
        "telemetry",
        "rack observability + adaptive sizing on a skewed KV/graph mix",
        "identical seeds reproduce byte-identical snapshots; the controller \
         strictly raises the local-access ratio; spans sum to end-to-end latency",
    );

    let mut rows = Vec::new();
    let mut all_ok = true;
    let mut outcomes = Vec::new();
    for adaptive in [false, true] {
        let config = if adaptive { "adaptive" } else { "static" };
        let a = run(seed, adaptive);
        let b = run(seed, adaptive);
        let deterministic = a.snapshot_json == b.snapshot_json && a.digest == b.digest;
        let spans_balance = a.span_sum_ns == a.span_total_ns;
        let ok = deterministic && spans_balance;
        all_ok &= ok;
        let row = Row {
            config: config.to_string(),
            seed,
            local_access_ratio: a.local_ratio,
            p99_access_ns: a.p99_ns,
            migrations: a.migrations,
            controller_ticks: a.ticks,
            span_total_ns: a.span_total_ns,
            span_dram_ns: a.span_dram_ns,
            span_fabric_ns: a.span_fabric_ns,
            snapshot_digest: format!("{:016x}", a.digest),
            deterministic,
            spans_balance,
        };
        emit_row(
            &format!(
                "{config:9} local {:5.1}%  p99 {:6} ns  migrations {:3}  \
                 spans {}  {}",
                row.local_access_ratio * 100.0,
                row.p99_access_ns,
                row.migrations,
                if spans_balance { "balance" } else { "IMBALANCED" },
                if deterministic { "deterministic" } else { "DIVERGED" },
            ),
            &row,
        );
        if !spans_balance {
            println!(
                "   span self-times sum to {} ns but pool.latency_ns is {} ns",
                a.span_sum_ns, a.span_total_ns
            );
        }
        rows.push(row);
        outcomes.push(a);
    }

    let gain = outcomes[1].local_ratio - outcomes[0].local_ratio;
    if outcomes[1].local_ratio <= outcomes[0].local_ratio {
        println!(
            "FAIL: adaptive local ratio {:.3} not above static {:.3}",
            outcomes[1].local_ratio, outcomes[0].local_ratio
        );
        all_ok = false;
    }
    if outcomes[1].migrations == 0 {
        println!("FAIL: controller issued no migrations on a skewed mix");
        all_ok = false;
    }
    println!(
        "   controller gain: +{:.1} percentage points local access",
        gain * 100.0
    );

    let json = serde_json::to_string(&rows).expect("rows serialize");
    std::fs::write("BENCH_telemetry.json", json).expect("write BENCH_telemetry.json");
    if !all_ok {
        std::process::exit(1);
    }
}
