// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **§4.4 Benefit 3** — near-memory computing via compute shipping.
//!
//! The paper distributes the sum across LMP servers so every access is
//! local and reports "an even larger performance improvement than reported
//! above (not shown)". This binary shows it: a 64 GB vector striped over
//! four servers, reduced by (a) pulling all stripes to one server and (b)
//! shipping the partial sums to the data, on both links.

use lmp_bench::{emit_header, emit_row};
use lmp_compute::{reduce_timed, DistVector, ScanParams, Strategy};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::DramProfile;
use lmp_sim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    link: String,
    strategy: String,
    effective_gbps: f64,
    fabric_bytes: u64,
    completion_ms: f64,
}

fn build() -> LogicalPool {
    LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 24 * GIB,
        shared_per_server: 24 * GIB,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 1024,
    })
}

fn main() {
    let size = 64 * GIB;
    emit_header(
        "Benefit 3 (§4.4)",
        "Distributed sum: pull vs compute shipping (64 GB vector, 4 servers)",
        "shipping makes every access local; improvement exceeds the Figure 2-4 gains",
    );
    println!(
        "{:<6} {:<6} {:>14} {:>16} {:>12}",
        "Link", "Mode", "Effective BW", "Fabric bytes", "Completion"
    );
    for link in [LinkProfile::link0(), LinkProfile::link1()] {
        let mut speedup = Vec::new();
        for (name, strategy) in [("pull", Strategy::Pull), ("ship", Strategy::Ship)] {
            let mut pool = build();
            let mut fabric = Fabric::new(link.clone(), 4);
            let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
            let v = DistVector::stripe_even(&mut pool, size, &servers).expect("fits");
            let out = reduce_timed(
                &mut pool,
                &mut fabric,
                SimTime::ZERO,
                NodeId(0),
                &v,
                strategy,
                ScanParams::default(),
            )
            .expect("reduction runs");
            let bw = out.bandwidth(size, SimTime::ZERO);
            let ms = out.complete.as_secs_f64() * 1e3;
            speedup.push(ms);
            emit_row(
                &format!(
                    "{:<6} {:<6} {:>10.1}GB/s {:>16} {:>10.2}ms",
                    link.name, name, bw.as_gbps(), out.fabric_bytes, ms
                ),
                &Row {
                    link: link.name.clone(),
                    strategy: name.into(),
                    effective_gbps: bw.as_gbps(),
                    fabric_bytes: out.fabric_bytes,
                    completion_ms: ms,
                },
            );
        }
        println!(
            "   {}: compute shipping speedup = {:.2}x",
            link.name,
            speedup[0] / speedup[1]
        );
    }
}
