// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Chaos runs** — deterministic fault injection over the whole stack.
//!
//! Runs every [`Scenario`] under one seed, twice each, and verifies:
//! every cross-layer invariant holds (translation consistency, recovery
//! completeness, write-amplification accounting, coherence mutual
//! exclusion, lease-confirmation audit, epoch monotonicity, degraded-read
//! identity), and the second run's event trace is bit-identical to the
//! first — the determinism contract that makes any failure reproducible
//! from its seed alone.
//!
//! The self-healing pair closes the loop autonomously: `crash-auto-heal`
//! must lose nothing protected with no manual `recover()` call, and
//! `flap-no-heal` must perform zero recoveries under sub-lease port flaps.
//!
//! ```text
//! cargo run --release -p lmp-bench --bin chaos -- --seed 42
//! ```
//!
//! Exits non-zero when any invariant fails or any rerun diverges;
//! `--trace` prints the full event trace of every run.

use lmp_bench::{emit_header, emit_row};
use lmp_harness::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    seed: u64,
    digest: String,
    telemetry_digest: String,
    events: u64,
    ops_ok: u64,
    ops_failed: u64,
    retries: u64,
    gave_up: u64,
    promoted: u64,
    reconstructed: u64,
    reprotected: u64,
    lost: u64,
    suspicions: u64,
    confirmations: u64,
    auto_recoveries: u64,
    degraded_served: u64,
    checks_passed: usize,
    checks_total: usize,
    deterministic: bool,
}

fn main() {
    let mut seed = 42u64;
    let mut show_trace = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("usage: chaos [--seed N] [--trace] (--seed takes an integer)");
                        std::process::exit(2);
                    }
                };
            }
            "--trace" => show_trace = true,
            other => {
                eprintln!("usage: chaos [--seed N] [--trace] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }

    emit_header(
        "chaos",
        "deterministic fault-injection scenarios",
        "all invariants hold; same seed reproduces the identical event trace",
    );
    let mut all_ok = true;
    for scenario in Scenario::all() {
        let a = run_scenario(scenario, seed);
        let b = run_scenario(scenario, seed);
        let deterministic = a.digest == b.digest && a.telemetry_digest == b.telemetry_digest;
        let checks_passed = a.checks.iter().filter(|c| c.passed).count();
        let ok = a.passed() && deterministic;
        all_ok &= ok;
        let row = Row {
            scenario: a.scenario.to_string(),
            seed,
            digest: format!("{:016x}", a.digest),
            telemetry_digest: format!("{:016x}", a.telemetry_digest),
            events: a.events,
            ops_ok: a.ops_ok,
            ops_failed: a.ops_failed,
            retries: a.retries,
            gave_up: a.gave_up,
            promoted: a.promoted,
            reconstructed: a.reconstructed,
            reprotected: a.reprotected,
            lost: a.lost,
            suspicions: a.suspicions,
            confirmations: a.confirmations,
            auto_recoveries: a.auto_recoveries,
            degraded_served: a.degraded_served,
            checks_passed,
            checks_total: a.checks.len(),
            deterministic,
        };
        emit_row(
            &format!(
                "{:18} seed={seed} digest={} checks {}/{} {} {}",
                row.scenario,
                row.digest,
                checks_passed,
                a.checks.len(),
                if deterministic { "deterministic" } else { "DIVERGED" },
                if ok { "PASS" } else { "FAIL" },
            ),
            &row,
        );
        for c in a.checks.iter().filter(|c| !c.passed) {
            println!("   {c}");
        }
        if !deterministic {
            if let Some((i, x, y)) = a.trace.diff(&b.trace) {
                println!("   first divergence at entry {i}: {x:?} vs {y:?}");
            }
        }
        if show_trace || !ok {
            print!("{}", a.trace);
        }
    }
    if !all_ok {
        std::process::exit(1);
    }
}
