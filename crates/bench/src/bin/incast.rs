// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Incast** — §4.2's provisioning concern, measured.
//!
//! When every server streams from disaggregated memory at once, a physical
//! pool funnels all traffic through its single switch↔pool link; the paper
//! notes this "can create incast problems, demanding either a
//! higher-capacity link or multiple links", while LMPs avoid it by
//! construction (data placement spreads traffic across server links).
//!
//! Four configurations, 4 servers × 8 GB each, Link1:
//! 1. physical pool, 1× uplink (the incast victim),
//! 2. physical pool, 4× provisioned uplink (the paper's thick orange line),
//! 3. logical pool with local placement (every stream local),
//! 4. logical pool with adversarial placement (all data on one server —
//!    LMP's own incast case, fixed by migration/shipping).

use lmp_bench::{emit_header, emit_row};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, MemOp, NodeId};
use lmp_mem::{DramProfile, FrameId, FRAME_BYTES};
use lmp_physical::PhysicalPool;
use lmp_sim::prelude::*;
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const SERVERS: u32 = 4;
const PER_SERVER: u64 = 8 * GIB;
const CHUNK: u64 = 2 * MIB;
const CORES: u32 = 14;

#[derive(Serialize)]
struct Row {
    config: String,
    aggregate_gbps: f64,
    per_server_gbps: f64,
}

/// All four servers scan their own vector concurrently. Issues from every
/// (server, core) stream merge through one global heap so shared resources
/// see admissions in timestamp order.
fn run_physical(uplink_multiplier: f64) -> f64 {
    let pool_node = NodeId(SERVERS);
    let mut fabric = Fabric::new(LinkProfile::link1(), SERVERS + 1);
    if uplink_multiplier > 1.0 {
        fabric.provision_uplink(pool_node, uplink_multiplier);
    }
    let mut pool = PhysicalPool::new(pool_node, 64 * GIB, DramProfile::xeon_gold_5120());
    let per_server_frames = PER_SERVER / FRAME_BYTES;
    let vectors: Vec<Vec<FrameId>> = (0..SERVERS)
        .map(|_| pool.alloc_frames(per_server_frames).expect("pool fits"))
        .collect();

    // (next time, server, core, bytes left)
    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u32, u64)>> = BinaryHeap::new();
    for s in 0..SERVERS {
        for c in 0..CORES {
            heap.push(Reverse((SimTime::ZERO, s, c, PER_SERVER / CORES as u64)));
        }
    }
    let mut done = SimTime::ZERO;
    while let Some(Reverse((now, s, c, left))) = heap.pop() {
        let this = left.min(CHUNK);
        let pos = PER_SERVER / CORES as u64 * c as u64 + (PER_SERVER / CORES as u64 - left);
        let frame = vectors[s as usize][(pos / FRAME_BYTES) as usize];
        let cpl = pool.read(&mut fabric, now, NodeId(s), this, Some(frame));
        done = done.max(cpl.complete);
        if left > this {
            heap.push(Reverse((cpl.complete, s, c, left - this)));
        }
    }
    Bandwidth::measured(SERVERS as u64 * PER_SERVER, done.duration_since(SimTime::ZERO)).as_gbps()
}

fn run_logical(adversarial: bool) -> f64 {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: SERVERS,
        capacity_per_server: 33 * GIB,
        shared_per_server: 33 * GIB,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 1024,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), SERVERS);
    let segs: Vec<SegmentId> = (0..SERVERS)
        .map(|s| {
            let home = if adversarial { NodeId(0) } else { NodeId(s) };
            pool.alloc(PER_SERVER, Placement::On(home)).expect("fits")
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<(SimTime, u32, u32, u64)>> = BinaryHeap::new();
    for s in 0..SERVERS {
        for c in 0..CORES {
            heap.push(Reverse((SimTime::ZERO, s, c, PER_SERVER / CORES as u64)));
        }
    }
    let mut done = SimTime::ZERO;
    while let Some(Reverse((now, s, c, left))) = heap.pop() {
        let this = left.min(CHUNK);
        let pos = PER_SERVER / CORES as u64 * c as u64 + (PER_SERVER / CORES as u64 - left);
        let a = pool
            .access(
                &mut fabric,
                now,
                NodeId(s),
                LogicalAddr::new(segs[s as usize], pos),
                this,
                MemOp::Read,
            )
            .expect("in bounds");
        done = done.max(a.complete);
        if left > this {
            heap.push(Reverse((a.complete, s, c, left - this)));
        }
    }
    Bandwidth::measured(SERVERS as u64 * PER_SERVER, done.duration_since(SimTime::ZERO)).as_gbps()
}

fn main() {
    emit_header(
        "Incast (§4.2)",
        "4 servers stream 8 GB each, concurrently, Link1",
        "physical pool bottlenecks on its uplink (~21 GB/s aggregate); provisioning \
         helps at extra cost; logical placement spreads to ~4x local bandwidth",
    );
    println!("{:<34} {:>12} {:>12}", "Configuration", "Aggregate", "Per server");
    for (name, agg) in [
        ("physical pool, 1x uplink", run_physical(1.0)),
        ("physical pool, 4x uplink", run_physical(4.0)),
        ("logical, local placement", run_logical(false)),
        ("logical, all-on-one-server", run_logical(true)),
    ] {
        emit_row(
            &format!(
                "{name:<34} {agg:>8.1}GB/s {:>8.1}GB/s",
                agg / SERVERS as f64
            ),
            &Row {
                config: name.into(),
                aggregate_gbps: agg,
                per_server_gbps: agg / SERVERS as f64,
            },
        );
    }
}
