// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **QoS runs** — noisy-neighbor tail-latency containment: admission
//! control plus priority-band link queueing vs. plain FIFO.
//!
//! Two tenants share one remote memory server: a victim issuing small
//! 4 KiB reads on a steady open-loop schedule, and an aggressor flooding
//! the same server's transmit wire with bulk 16 KiB accesses at ~32 GB/s
//! offered load — 1.5× the wire. Both working sets live wholly on the
//! shared server (their home shares are pre-filled), so every access
//! crosses the contended link. The workload is
//! [`lmp_workloads::multitenant::run_qos`]: open-loop arrivals through
//! the tenant-aware pool API, per-tenant integer-ns latency histograms.
//!
//! Two configurations, identical op schedules:
//!
//! * **fifo** — QoS off: no bands, no admission. The flood's backlog
//!   queues the victim's reads tens of microseconds deep.
//! * **qos** — QoS on: the victim rides [`Band::High`] (weight 8), the
//!   aggressor [`Band::Low`] (weight 1) and is rate-limited by a
//!   deterministic token bucket, shedding the load the wire cannot carry.
//!
//! Verified here, exit non-zero on any failure:
//!
//! * victim p99 stays within [`VICTIM_P99_BOUND_NS`] with QoS on and
//!   exceeds it with QoS off — the contrast that proves the mechanism;
//! * admission rejects aggressor ops only when QoS is on;
//! * each configuration, run twice from the same seed, produces
//!   byte-identical digests (pure simulation — no wall clock);
//! * full mode rewrites `BENCH_qos.json`; smoke mode (`--smoke`, CI)
//!   re-runs both configurations and fails on digest drift from the
//!   committed baseline.
//!
//! ```text
//! cargo run --release -p lmp-bench --bin qos            # full, rewrites BENCH_qos.json
//! cargo run --release -p lmp-bench --bin qos -- --smoke # CI gate vs committed baseline
//! ```

use lmp_bench::{emit_header, emit_row};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_qos::{Band, BandWeights};
use lmp_sim::prelude::*;
use lmp_workloads::multitenant::{run_qos, Tenant, TenantQos};
use lmp_workloads::trace::Pattern;
use serde::Serialize;

const SEED: u64 = 42;
const BATCHES: u32 = 3;
/// The victim's tail-latency SLO. An uncongested remote 4 KiB read is
/// ~1 µs end to end; under banded queueing the victim keeps an 8/9 wire
/// share through the flood, so 6 µs is generous headroom — while the
/// FIFO backlog pushes the unprotected p99 an order of magnitude past it.
const VICTIM_P99_BOUND_NS: u64 = 6_000;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
}

#[derive(Serialize)]
struct ConfigRow {
    mode: &'static str,
    victim_ops: u64,
    victim_p50_ns: u64,
    victim_p99_ns: u64,
    victim_p999_ns: u64,
    aggressor_admitted: u64,
    aggressor_rejected: u64,
    aggressor_p99_ns: u64,
    complete_ns: u64,
    digest: String,
}

/// One configuration end to end. Pure simulation — the row is a function
/// of `(qos_on, SEED)`.
fn run_config(qos_on: bool) -> ConfigRow {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 3,
        capacity_per_server: 32 * FRAME_BYTES,
        shared_per_server: 24 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    let mut fabric = Fabric::new(LinkProfile::link1(), 3);
    if qos_on {
        fabric.enable_bands(BandWeights::default());
    }
    // Pre-fill both tenants' home shares so their working sets land
    // wholly on server 2: every access then crosses its contended link.
    for home in [0u32, 1] {
        pool.alloc(24 * FRAME_BYTES, Placement::On(NodeId(home)))
            .expect("setup filler");
    }
    let mut rack = RackRuntime::new(
        &pool,
        RuntimeConfig {
            // Background daemons idle at this horizon: the bench measures
            // queueing, not migration.
            balance_period: SimDuration::from_millis(100),
            sizing_period: SimDuration::from_millis(100),
            ..RuntimeConfig::default()
        },
    );

    let tenants = vec![
        // Victim: steady small reads, 4 KiB every 500 ns (~8 GB/s).
        Tenant {
            server: NodeId(0),
            working_set: 4 * FRAME_BYTES,
            priority: 9,
            pattern: Pattern::Uniform,
            ops_per_batch: 200,
        },
        // Aggressor: bulk 16 KiB accesses every 500 ns — ~32 GB/s
        // offered against a 21 GB/s wire.
        Tenant {
            server: NodeId(1),
            working_set: 8 * FRAME_BYTES,
            priority: 1,
            pattern: Pattern::Sequential,
            ops_per_batch: 300,
        },
    ];
    let qos = if qos_on {
        vec![
            TenantQos {
                band: Band::High,
                rate: None,
                issue_period: SimDuration::from_nanos(500),
                access_bytes: 4096,
            },
            TenantQos {
                band: Band::Low,
                // ~600k ops/s × 16 KiB ≈ 9.8 GB/s sustained — under half
                // the wire; the rest of the flood is shed at admission.
                rate: Some(TenantRate {
                    ops_per_sec: 600_000,
                    burst: 16,
                }),
                issue_period: SimDuration::from_nanos(500),
                access_bytes: 16 * 1024,
            },
        ]
    } else {
        vec![
            TenantQos {
                band: Band::Normal,
                rate: None,
                issue_period: SimDuration::from_nanos(500),
                access_bytes: 4096,
            },
            TenantQos {
                band: Band::Normal,
                rate: None,
                issue_period: SimDuration::from_nanos(500),
                access_bytes: 16 * 1024,
            },
        ]
    };

    let report = run_qos(
        &mut pool,
        &mut fabric,
        &mut rack,
        &tenants,
        &qos,
        BATCHES,
        SEED,
    )
    .expect("qos run completes");

    let mut digest = FNV_OFFSET;
    for t in &report.tenants {
        fnv_fold(&mut digest, t.admitted);
        fnv_fold(&mut digest, t.rejected);
        fnv_fold(&mut digest, t.local_bytes);
        fnv_fold(&mut digest, t.remote_bytes);
        fnv_fold(&mut digest, t.latency.count());
        fnv_fold(&mut digest, t.latency.p50());
        fnv_fold(&mut digest, t.latency.p99());
        fnv_fold(&mut digest, t.latency.quantile(0.999));
    }
    fnv_fold(&mut digest, report.complete.as_nanos());

    let v = &report.tenants[0];
    let a = &report.tenants[1];
    ConfigRow {
        mode: if qos_on { "qos" } else { "fifo" },
        victim_ops: v.admitted,
        victim_p50_ns: v.latency.p50(),
        victim_p99_ns: v.latency.p99(),
        victim_p999_ns: v.latency.quantile(0.999),
        aggressor_admitted: a.admitted,
        aggressor_rejected: a.rejected,
        aggressor_p99_ns: a.latency.p99(),
        complete_ns: report.complete.as_nanos(),
        digest: format!("{digest:#018x}"),
    }
}

/// The committed baseline, flat and string-searchable: the smoke gate
/// extracts fields without a JSON parser (the vendored serde_json shim is
/// write-only).
#[derive(Serialize)]
struct Baseline {
    victim_p99_bound_ns: u64,
    digest_fifo: String,
    digest_qos: String,
    victim_p99_fifo_ns: u64,
    victim_p99_qos_ns: u64,
    aggressor_rejected_qos: u64,
}

/// Pull `"key":<value>` out of flat JSON; values may be quoted strings.
fn json_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// The QoS acceptance contrast; `None` means it holds.
fn contrast_failure(fifo: &ConfigRow, qos: &ConfigRow) -> Option<String> {
    if qos.victim_p99_ns > VICTIM_P99_BOUND_NS {
        return Some(format!(
            "victim p99 {} ns exceeds the {} ns bound with QoS on",
            qos.victim_p99_ns, VICTIM_P99_BOUND_NS
        ));
    }
    if fifo.victim_p99_ns <= VICTIM_P99_BOUND_NS {
        return Some(format!(
            "victim p99 {} ns within the {} ns bound with QoS off — the contrast is gone",
            fifo.victim_p99_ns, VICTIM_P99_BOUND_NS
        ));
    }
    if qos.aggressor_rejected == 0 {
        return Some("admission control rejected nothing with QoS on".into());
    }
    if fifo.aggressor_rejected != 0 {
        return Some(format!(
            "admission control rejected {} ops with QoS off",
            fifo.aggressor_rejected
        ));
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    emit_header(
        "qos",
        "noisy-neighbor tail latency: admission + priority bands vs FIFO",
        "victim p99 bounded with QoS on, blown through with QoS off",
    );

    let mut rows = Vec::new();
    for qos_on in [false, true] {
        let row = run_config(qos_on);
        let again = run_config(qos_on);
        if row.digest != again.digest {
            eprintln!(
                "qos: mode {} not deterministic: {} vs {}",
                row.mode, row.digest, again.digest
            );
            std::process::exit(1);
        }
        emit_row(
            &format!(
                "{:4} victim p50 {:>6} p99 {:>7} p999 {:>7} ns  aggressor admitted {:>4} rejected {:>4}  {}",
                row.mode,
                row.victim_p50_ns,
                row.victim_p99_ns,
                row.victim_p999_ns,
                row.aggressor_admitted,
                row.aggressor_rejected,
                row.digest,
            ),
            &row,
        );
        rows.push(row);
    }
    let (fifo, qos) = (&rows[0], &rows[1]);
    if let Some(why) = contrast_failure(fifo, qos) {
        eprintln!("qos: {why}");
        std::process::exit(1);
    }

    if smoke {
        let baseline = match std::fs::read_to_string("BENCH_qos.json") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("qos --smoke: no committed BENCH_qos.json baseline ({e})");
                std::process::exit(2);
            }
        };
        let mut ok = true;
        for r in &rows {
            let key = format!("digest_{}", r.mode);
            match json_field(&baseline, &key) {
                Some(b) if b == r.digest => {}
                Some(b) => {
                    eprintln!(
                        "qos: digest drift for {}: baseline {b}, got {}",
                        r.mode, r.digest
                    );
                    ok = false;
                }
                None => {
                    eprintln!("qos: baseline missing {key}");
                    ok = false;
                }
            }
        }
        println!(
            "smoke: {} configurations — {}",
            rows.len(),
            if ok { "PASS" } else { "FAIL" }
        );
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    let baseline = Baseline {
        victim_p99_bound_ns: VICTIM_P99_BOUND_NS,
        digest_fifo: fifo.digest.clone(),
        digest_qos: qos.digest.clone(),
        victim_p99_fifo_ns: fifo.victim_p99_ns,
        victim_p99_qos_ns: qos.victim_p99_ns,
        aggressor_rejected_qos: qos.aggressor_rejected,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write("BENCH_qos.json", json).expect("write BENCH_qos.json");
    println!(
        "full: victim p99 {} ns (QoS) vs {} ns (FIFO) against a {} ns bound — baseline written",
        qos.victim_p99_ns, fifo.victim_p99_ns, VICTIM_P99_BOUND_NS
    );
}
