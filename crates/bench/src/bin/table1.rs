// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Table 1** — latency and bandwidth for different memory types.
//!
//! Paper values: local memory 82 ns / 97 GB/s (their testbed); CXL remote
//! memory 280 or 303 ns / 31 or 20 GB/s (Pond / FPGA prototype). This
//! binary re-measures all three rows through the simulator's models: a
//! pointer-chase for unloaded latency and a 14-core streaming scan for
//! bandwidth.

use lmp_bench::{emit_header, emit_row};
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramChannel, DramProfile};
use lmp_sim::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    memory_type: String,
    latency_ns: u64,
    bandwidth_gbps: f64,
    paper_latency_ns: u64,
    paper_bandwidth_gbps: f64,
}

fn measure_local() -> (u64, f64) {
    // Unloaded latency: dependent 64B accesses on an idle channel.
    let mut dram = DramChannel::new(DramProfile::xeon_gold_5120());
    let mut now = SimTime::ZERO;
    let mut lat = Histogram::new();
    for _ in 0..100 {
        let c = dram.access(now, 64);
        lat.record(c.latency.as_nanos());
        now = c.complete + SimDuration::from_micros(10); // keep it unloaded
    }
    // Streaming bandwidth: 14 closed-loop core streams of 2 MiB chunks.
    let mut dram = DramChannel::new(DramProfile::xeon_gold_5120());
    let chunk = 2 * MIB;
    let total_per_core = 64u64; // chunks
    let mut heap = std::collections::BinaryHeap::new();
    for c in 0..14u64 {
        heap.push(std::cmp::Reverse((SimTime::ZERO, c, total_per_core)));
    }
    let mut done = SimTime::ZERO;
    let mut bytes = 0u64;
    while let Some(std::cmp::Reverse((now, c, left))) = heap.pop() {
        let a = dram.access(now, chunk);
        bytes += chunk;
        done = done.max(a.complete);
        if left > 1 {
            heap.push(std::cmp::Reverse((a.complete, c, left - 1)));
        }
    }
    let bw = Bandwidth::measured(bytes, done.duration_since(SimTime::ZERO));
    (lat.p50(), bw.as_gbps())
}

fn measure_remote(profile: LinkProfile) -> (u64, f64) {
    // Unloaded latency: isolated 64B reads across the fabric.
    let mut fabric = Fabric::new(profile.clone(), 2);
    let mut lat = Histogram::new();
    let mut now = SimTime::ZERO;
    for _ in 0..100 {
        let c = fabric.read(now, NodeId(0), NodeId(1), 64);
        lat.record(c.complete.duration_since(now).as_nanos());
        now = c.complete + SimDuration::from_micros(10);
    }
    // Bandwidth: 14 closed-loop streams across the link.
    let mut fabric = Fabric::new(profile, 2);
    let chunk = 2 * MIB;
    let mut heap = std::collections::BinaryHeap::new();
    for c in 0..14u64 {
        heap.push(std::cmp::Reverse((SimTime::ZERO, c, 64u64)));
    }
    let mut done = SimTime::ZERO;
    let mut bytes = 0u64;
    while let Some(std::cmp::Reverse((now, c, left))) = heap.pop() {
        let a = fabric.read(now, NodeId(0), NodeId(1), chunk);
        bytes += chunk;
        done = done.max(a.complete);
        if left > 1 {
            heap.push(std::cmp::Reverse((a.complete, c, left - 1)));
        }
    }
    let bw = Bandwidth::measured(bytes, done.duration_since(SimTime::ZERO));
    (lat.p50(), bw.as_gbps())
}

fn main() {
    emit_header(
        "Table 1",
        "Latency and bandwidth for different memory types",
        "local 82ns/97GB/s; CXL remote 280 or 303ns / 31 or 20GB/s",
    );
    println!("{:<24} {:>12} {:>16}", "", "Latency (ns)", "Bandwidth (GB/s)");

    let (lns, lbw) = measure_local();
    emit_row(
        &format!("{:<24} {lns:>12} {lbw:>16.1}", "Local memory"),
        &Row {
            memory_type: "local".into(),
            latency_ns: lns,
            bandwidth_gbps: lbw,
            paper_latency_ns: 82,
            paper_bandwidth_gbps: 97.0,
        },
    );
    for (profile, paper_lat, paper_bw) in [
        (LinkProfile::pond(), 280, 31.0),
        (LinkProfile::fpga(), 303, 20.0),
    ] {
        let name = format!("CXL remote ({})", profile.name);
        let (ns, bw) = measure_remote(profile);
        emit_row(
            &format!("{name:<24} {ns:>12} {bw:>16.1}"),
            &Row {
                memory_type: name.clone(),
                latency_ns: ns,
                bandwidth_gbps: bw,
                paper_latency_ns: paper_lat,
                paper_bandwidth_gbps: paper_bw,
            },
        );
    }
}
