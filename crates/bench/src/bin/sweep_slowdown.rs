// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Slowdown sweep** — the paper's fabric parameterization (§1/§4.1).
//!
//! "As CXL fabrics for disaggregated memory are not yet available, we
//! parameterize our experiments based on a slowdown of the disaggregated
//! memory relative to local memory." This sweep scales Link0 by 1×–8× and
//! runs the 24 GB aggregation on all three deployments: the logical pool's
//! advantage must grow monotonically with the slowdown (§4.3: "the slower
//! the remote link, the better the performance of LMPs relative to
//! physical pools").

use lmp_bench::{emit_header, emit_row, fmt_gbps};
use lmp_cluster::PoolArch;
use lmp_fabric::LinkProfile;
use lmp_sim::units::GIB;
use lmp_workloads::vector::run_point;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    slowdown: f64,
    arch: &'static str,
    avg_gbps: Option<f64>,
}

fn main() {
    emit_header(
        "Sweep: slowdown",
        "24 GB aggregation vs disaggregated-memory slowdown (Link0 × factor)",
        "logical advantage grows with slowdown; logical absolute bandwidth is unaffected \
         while the vector fits locally",
    );
    println!(
        "{:<9} {:<18} {:>12} {:>18}",
        "Slowdown", "Deployment", "Bandwidth", "Logical advantage"
    );
    let size = 24 * GIB;
    let mut last_ratio = 0.0;
    for slowdown in [1.0f64, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0] {
        let link = LinkProfile::link0().slowed(slowdown);
        let mut results = Vec::new();
        for arch in [
            PoolArch::Logical,
            PoolArch::PhysicalCache,
            PoolArch::PhysicalNoCache,
        ] {
            let row = run_point(arch, link.clone(), size, 3);
            results.push((arch.label(), row.avg_gbps));
        }
        let logical = results[0].1.expect("logical always feasible");
        let nocache = results[2].1.expect("24GB fits the physical pool");
        let ratio = logical / nocache;
        for (arch, bw) in &results {
            emit_row(
                &format!("{slowdown:<9.1} {arch:<18} {}", fmt_gbps(*bw)),
                &Row {
                    slowdown,
                    arch,
                    avg_gbps: *bw,
                },
            );
        }
        println!("   -> logical / no-cache = {ratio:.2}x");
        assert!(
            ratio >= last_ratio * 0.999,
            "advantage must not shrink with slowdown ({last_ratio:.2} -> {ratio:.2})"
        );
        last_ratio = ratio;
    }
}
