// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Ablation: shared-region sizing, static vs optimizer** (§5 "Sizing
//! the shared regions").
//!
//! Four servers with skewed application demands. A static 50/50
//! private/shared split strands capacity and rejects the big tenant; the
//! periodic optimizer re-sizes every server's shared region to fit all
//! demands while maximizing priority-weighted locality.

use lmp_bench::{emit_header, emit_row};
use lmp_core::prelude::*;
use lmp_fabric::NodeId;
use lmp_mem::FRAME_BYTES;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    feasible: bool,
    weighted_local_fraction: f64,
    shared_frames_per_server: Vec<u64>,
    unplaced_frames: u64,
}

fn main() {
    emit_header(
        "Ablation: sizing",
        "Static 50/50 split vs the global optimizer",
        "optimizer admits workloads the static split rejects and raises locality",
    );
    // 4 servers × 32 frames; 4 must stay private (OS floor).
    let capacity = [32u64; 4];
    let floors = [4u64; 4];
    // Skewed demands: one big high-priority tenant on server 0, small
    // tenants elsewhere.
    let demands = [
        AppDemand {
            server: NodeId(0),
            bytes: 48 * FRAME_BYTES,
            priority: 10,
        },
        AppDemand {
            server: NodeId(1),
            bytes: 10 * FRAME_BYTES,
            priority: 3,
        },
        AppDemand {
            server: NodeId(2),
            bytes: 10 * FRAME_BYTES,
            priority: 3,
        },
        AppDemand {
            server: NodeId(3),
            bytes: 6 * FRAME_BYTES,
            priority: 1,
        },
    ];

    println!(
        "{:<12} {:>9} {:>16} {:>24} {:>10}",
        "Policy", "Feasible", "Local fraction", "Shared frames/server", "Unplaced"
    );

    // Static: every server caps its shared region at half its capacity.
    // Evaluate the same greedy placement under those fixed caps by
    // shrinking each server's "capacity" to floor + static shared budget.
    let static_caps: Vec<u64> = capacity.iter().map(|c| c / 2).collect();
    let static_capacity: Vec<u64> = static_caps
        .iter()
        .zip(&floors)
        .map(|(s, f)| s + f)
        .collect();
    let static_plan = solve_sizing(&static_capacity, &floors, &demands);
    let unplaced: u64 = static_plan
        .placements
        .iter()
        .map(|p| p.unplaced_frames)
        .sum();
    emit_row(
        &format!(
            "{:<12} {:>9} {:>16.2} {:>24} {:>10}",
            "static-50/50",
            static_plan.feasible,
            static_plan.weighted_local_fraction,
            format!("{:?}", static_plan.shared_frames),
            unplaced
        ),
        &Row {
            policy: "static".into(),
            feasible: static_plan.feasible,
            weighted_local_fraction: static_plan.weighted_local_fraction,
            shared_frames_per_server: static_plan.shared_frames.clone(),
            unplaced_frames: unplaced,
        },
    );

    // Optimizer: shared budgets float up to capacity − floor.
    let opt_plan = solve_sizing(&capacity, &floors, &demands);
    let unplaced: u64 = opt_plan.placements.iter().map(|p| p.unplaced_frames).sum();
    emit_row(
        &format!(
            "{:<12} {:>9} {:>16.2} {:>24} {:>10}",
            "optimizer",
            opt_plan.feasible,
            opt_plan.weighted_local_fraction,
            format!("{:?}", opt_plan.shared_frames),
            unplaced
        ),
        &Row {
            policy: "optimizer".into(),
            feasible: opt_plan.feasible,
            weighted_local_fraction: opt_plan.weighted_local_fraction,
            shared_frames_per_server: opt_plan.shared_frames.clone(),
            unplaced_frames: unplaced,
        },
    );

    // Apply the optimizer plan to a live pool to prove it is actionable.
    let mut pool = LogicalPool::new(PoolConfig {
        servers: 4,
        capacity_per_server: 32 * FRAME_BYTES,
        shared_per_server: 16 * FRAME_BYTES,
        dram: lmp_mem::DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    apply_sizing(&mut pool, &opt_plan).expect("plan applies");
    println!(
        "   applied: shared budgets now {:?} frames",
        (0..4)
            .map(|s| pool.node(NodeId(s)).split().shared_budget())
            .collect::<Vec<_>>()
    );
}
