// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **§4.2 Benefit 1** — lower entry barrier: deployment cost comparison.
//!
//! Prints the bill of materials for the logical and physical deployments
//! under the paper's two scenarios: equal *disaggregated* memory (physical
//! must buy extra local DIMMs, a chassis, rack space, and ports) and equal
//! *total* memory (costs converge but physical servers end up with less
//! local memory — the operational gap behind Figure 5).

use lmp_bench::{emit_header, emit_row};
use lmp_physical::{compare, Bill, ComponentPrices, Scenario};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scenario: String,
    deployment: String,
    total_cost_units: f64,
    local_gb_per_server: f64,
    disaggregated_gb: f64,
    items: Vec<(String, f64, f64)>,
}

fn print_bill(scenario: &str, bill: &Bill) {
    for item in &bill.items {
        println!(
            "     {:<28} {:>8.0} x {:>7.0} = {:>9.0}",
            item.name,
            item.qty,
            item.unit,
            item.subtotal()
        );
    }
    emit_row(
        &format!(
            "   {:<16} total {:>9.0} units | local/server {:>5.1} GB | pool {:>5.1} GB",
            bill.label,
            bill.total(),
            bill.local_gb_per_server,
            bill.disaggregated_gb
        ),
        &Row {
            scenario: scenario.to_string(),
            deployment: bill.label.clone(),
            total_cost_units: bill.total(),
            local_gb_per_server: bill.local_gb_per_server,
            disaggregated_gb: bill.disaggregated_gb,
            items: bill
                .items
                .iter()
                .map(|i| (i.name.clone(), i.qty, i.unit))
                .collect(),
        },
    );
}

fn main() {
    let prices = ComponentPrices::default();
    // The paper's rack: 4 servers needing 8 GB private each, 64 GB pooled.
    let servers = 4;
    let local_need = 8.0;
    let pool_gb = 64.0;

    emit_header(
        "Benefit 1 (§4.2)",
        "Deployment cost, logical vs physical",
        "physical costs more for equal disaggregated memory; for equal total memory it \
         still pays for pool hardware and leaves servers with less local memory",
    );

    for (name, scenario) in [
        ("equal-disaggregated", Scenario::EqualDisaggregated),
        ("equal-total", Scenario::EqualTotal),
    ] {
        println!(" scenario: {name}");
        let c = compare(&prices, scenario, servers, local_need, pool_gb);
        print_bill(name, &c.lmp);
        print_bill(name, &c.physical);
        println!(
            "   -> physical / logical cost ratio: {:.2}x",
            c.cost_ratio()
        );
    }
}
