// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Ratio sweep** — the fixed local:pooled ratio drawback (§1, §4.5).
//!
//! "Physical pools impose a fixed ratio of local to pooled memory: once
//! the system is deployed, this ratio is hard to adjust." This sweep holds
//! the total budget at 96 GB and varies how a physical deployment splits
//! it between server-local memory and the pool, then runs every paper
//! vector size on each split. No single split handles all sizes: small
//! pools reject big vectors, small local memory wrecks cache locality.
//! The logical pool handles every size with one deployment.

use lmp_bench::{emit_header, emit_row, fmt_gbps};
use lmp_cluster::{Cluster, ClusterConfig, PoolArch};
use lmp_fabric::{LinkProfile, NodeId};
use lmp_sim::units::GIB;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    local_gb_per_server: u64,
    pool_gb: u64,
    size_gb: u64,
    avg_gbps: Option<f64>,
}

fn main() {
    emit_header(
        "Sweep: local:pooled ratio",
        "Physical-cache deployments under a fixed 96 GB budget, Link1",
        "every fixed split fails some size; the logical pool (last row) handles all",
    );
    println!(
        "{:<26} {:>8} {:>8} {:>8} {:>8}",
        "Deployment (local+pool)", "8 GB", "24 GB", "64 GB", "80 GB"
    );
    let sizes = [8u64, 24, 64, 80];
    for local_gb in [4u64, 8, 12, 16, 20] {
        let pool_gb = 96 - 4 * local_gb;
        let mut cells = Vec::new();
        for &size in &sizes {
            let mut cfg = ClusterConfig::paper(PoolArch::PhysicalCache, LinkProfile::link1());
            cfg.local_per_server = local_gb * GIB;
            cfg.pool_capacity = pool_gb * GIB;
            let mut cluster = Cluster::new(cfg);
            let bw = cluster
                .run_aggregation(size * GIB, NodeId(0), 3)
                .ok()
                .map(|r| r.avg_bandwidth_gbps);
            emit_row(
                &format!(
                    "  4x{local_gb}GB + {pool_gb}GB pool, {size}GB vector: {}",
                    fmt_gbps(bw)
                ),
                &Row {
                    local_gb_per_server: local_gb,
                    pool_gb,
                    size_gb: size,
                    avg_gbps: bw,
                },
            );
            cells.push(bw);
        }
        let rendered: Vec<String> = cells
            .iter()
            .map(|c| match c {
                Some(b) => format!("{b:7.1}"),
                None => "   INF.".into(),
            })
            .collect();
        println!(
            "{:<26} {}",
            format!("4x{local_gb}GB local +{pool_gb}GB pool"),
            rendered.join(" ")
        );
    }
    // The logical pool: one deployment, every size.
    let mut cells = Vec::new();
    for &size in &sizes {
        let mut cluster = Cluster::new(ClusterConfig::paper(
            PoolArch::Logical,
            LinkProfile::link1(),
        ));
        let bw = cluster
            .run_aggregation(size * GIB, NodeId(0), 3)
            .ok()
            .map(|r| r.avg_bandwidth_gbps);
        emit_row(
            &format!("  logical 4x24GB, {size}GB vector: {}", fmt_gbps(bw)),
            &Row {
                local_gb_per_server: 24,
                pool_gb: 0,
                size_gb: size,
                avg_gbps: bw,
            },
        );
        cells.push(bw);
    }
    let rendered: Vec<String> = cells
        .iter()
        .map(|c| match c {
            Some(b) => format!("{b:7.1}"),
            None => "   INF.".into(),
        })
        .collect();
    println!("{:<26} {}", "logical 4x24GB (flexible)", rendered.join(" "));
}
