// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Batch runs** — batched scatter-gather KV reads vs. the same keys
//! issued one by one.
//!
//! One client drives a KV store striped round-robin across four servers.
//! For each `(batch size, skew)` arm, the identical deterministic key
//! stream is served twice from identically-seeded fresh racks:
//!
//! * **looped** — closed-loop single GETs, each op waiting for the last;
//! * **batched** — the stream chopped into `B`-key scatter-gather
//!   [`multi_get`](lmp_workloads::kv::KvStore::multi_get) calls, each
//!   batch's ops translated once per segment, coalesced per holder, and
//!   pipelined per fabric stream.
//!
//! Verified here, exit non-zero on any failure:
//!
//! * batched throughput ≥ looped at **every** point (a batch of one is the
//!   single-op path by construction), and strictly better from `B = 8` up;
//! * both paths move byte-identical data and the same total byte count;
//! * each arm's final rack snapshot is byte-identical across two same-seed
//!   runs, and the telemetry conservation invariant holds.
//!
//! Results land in `BENCH_batch.json` beside the human table.
//!
//! ```text
//! cargo run --release -p lmp-bench --bin batch -- --seed 42
//! ```

use lmp_bench::{emit_header, emit_row};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_harness::prelude::check_telemetry_conservation;
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use lmp_workloads::kv::{KvConfig, KvStore, SLOT_BYTES};
use serde::Serialize;

const SERVERS: u32 = 4;
const SLOTS: u64 = 2048;
const OPS: u64 = 512;
const BATCH_SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

#[derive(Serialize)]
struct Row {
    skew: String,
    batch_size: usize,
    seed: u64,
    looped_gbps: f64,
    batched_gbps: f64,
    speedup: f64,
    batched_faster_or_equal: bool,
    deterministic: bool,
    conservation: bool,
}

struct Outcome {
    elapsed: SimDuration,
    bytes: u64,
    data_digest: u64,
    snapshot_json: String,
    snapshot_digest: u64,
    conservation_ok: bool,
}

fn fresh_rack() -> (LogicalPool, Fabric, KvStore) {
    let mut pool = LogicalPool::new(PoolConfig {
        servers: SERVERS,
        capacity_per_server: 32 * FRAME_BYTES,
        shared_per_server: 24 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    });
    pool.attach_telemetry();
    let mut fabric = Fabric::new(LinkProfile::link1(), SERVERS);
    let kv = KvStore::create(
        &mut pool,
        KvConfig {
            slots: SLOTS,
            slots_per_segment: 256,
            placement: Placement::RoundRobin,
            ..KvConfig::default()
        },
    )
    .expect("kv capacity");
    let _ = &mut fabric;
    (pool, fabric, kv)
}

/// The deterministic key stream for one `(seed, skew)` arm. Zipf keys are
/// drawn by inverse-CDF over the slot space so the stream depends only on
/// the seed, not on sampler implementation details.
fn key_stream(seed: u64, zipf_exponent: f64) -> Vec<u64> {
    let mut rng = DetRng::new(seed).fork("batch-keys");
    (0..OPS)
        .map(|_| {
            if zipf_exponent == 0.0 {
                rng.below(SLOTS)
            } else {
                // Inverse-CDF zipf over ranks 1..=SLOTS: u^( -1/(s-1) )
                // style approximation via rejection-free power sampling.
                let u = (rng.below(1 << 30) + 1) as f64 / (1u64 << 30) as f64;
                let rank = ((SLOTS as f64).powf(1.0 - zipf_exponent) * u
                    + (1.0 - u))
                    .powf(1.0 / (1.0 - zipf_exponent));
                (rank as u64).clamp(1, SLOTS) - 1
            }
        })
        .collect()
}

/// Serve `keys` from a fresh rack, batched `batch_size` keys at a time
/// (1 = the closed-loop single-op path). Pure: same inputs, same outcome.
fn run(seed: u64, zipf_exponent: f64, batch_size: usize) -> Outcome {
    let (mut pool, mut fabric, mut kv) = fresh_rack();
    let keys = key_stream(seed, zipf_exponent);
    // Seed every touched slot with bytes derived from its key so the data
    // digest below proves both paths read the same values.
    for &k in &keys {
        let v = k.to_le_bytes();
        kv.multi_put(&mut pool, &mut fabric, SimTime::ZERO, NodeId(0), &[(k, &v)])
            .expect("seed slot");
    }

    let mut now = SimTime::ZERO;
    let mut digest = 0xcbf29ce484222325u64; // FNV-1a over returned values
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x100000001b3);
        }
    };
    for group in keys.chunks(batch_size) {
        let (values, done) = kv
            .multi_get(&mut pool, &mut fabric, now, NodeId(0), group)
            .expect("get batch");
        for v in &values {
            fnv(v);
        }
        now = done;
    }

    let snap = rack_snapshot(&mut pool, &mut fabric, now);
    Outcome {
        elapsed: now.duration_since(SimTime::ZERO),
        bytes: OPS * SLOT_BYTES,
        data_digest: digest,
        snapshot_json: snap.to_json(),
        snapshot_digest: snap.digest(),
        conservation_ok: check_telemetry_conservation(&snap).passed,
    }
}

fn main() {
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => {
                        eprintln!("usage: batch [--seed N] (--seed takes an integer)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("usage: batch [--seed N] (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }

    emit_header(
        "batch",
        "scatter-gather KV multi-get vs. looped single GETs",
        "batched never loses to looped, wins outright from batch size 8, \
         moves identical bytes, and reproduces byte-identical snapshots",
    );

    let mut rows = Vec::new();
    let mut all_ok = true;
    for (skew_name, zipf) in [("uniform", 0.0), ("zipf-1.2", 1.2)] {
        // The looped baseline is the batch-size-1 arm, shared by every row.
        let looped = run(seed, zipf, 1);
        let looped_gbps =
            Bandwidth::measured(looped.bytes, looped.elapsed).as_gbps();
        for &b in &BATCH_SIZES {
            let a = run(seed, zipf, b);
            let again = run(seed, zipf, b);
            let deterministic = a.snapshot_json == again.snapshot_json
                && a.snapshot_digest == again.snapshot_digest;
            let batched_gbps = Bandwidth::measured(a.bytes, a.elapsed).as_gbps();
            let same_data = a.data_digest == looped.data_digest && a.bytes == looped.bytes;
            let fast_enough = if b >= 8 {
                batched_gbps > looped_gbps
            } else {
                batched_gbps >= looped_gbps
            };
            let ok = deterministic && same_data && fast_enough && a.conservation_ok;
            all_ok &= ok;
            let row = Row {
                skew: skew_name.to_string(),
                batch_size: b,
                seed,
                looped_gbps,
                batched_gbps,
                speedup: batched_gbps / looped_gbps,
                batched_faster_or_equal: fast_enough,
                deterministic,
                conservation: a.conservation_ok,
            };
            emit_row(
                &format!(
                    "{skew_name:8} B={b:2}  looped {looped_gbps:6.2} GB/s  \
                     batched {batched_gbps:6.2} GB/s  x{:.2}  {}{}{}{}",
                    row.speedup,
                    if fast_enough { "" } else { "SLOWER " },
                    if same_data { "" } else { "DATA-DIVERGED " },
                    if deterministic { "deterministic" } else { "DIVERGED" },
                    if a.conservation_ok { "" } else { " UNBALANCED" },
                ),
                &row,
            );
            rows.push(row);
        }
    }

    let json = serde_json::to_string(&rows).expect("rows serialize");
    std::fs::write("BENCH_batch.json", json).expect("write BENCH_batch.json");
    if !all_ok {
        std::process::exit(1);
    }
}
