// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! **Multirack runs** — failure-domain-aware placement vs. host-only
//! placement across a rack-count sweep, on the datacenter fabric.
//!
//! For each `(policy, racks)` configuration the bench builds a pool of
//! `racks × 3` hosts, homes four protected application segments in rack 0
//! (two mirrored, a parity pair whose second member lives in rack 1),
//! biases host-only placement into rack 0 with filler allocations, runs a
//! seeded 200-read workload over the [`DatacenterFabric`] (local-access
//! ratio, spine traffic), then blacks out rack 0 and recovers. Everything
//! is simulated time — no wall clock — so every number and the per-config
//! FNV digest are bit-stable across machines. Verified here, exit
//! non-zero on any failure:
//!
//! * domain-aware placement loses **zero** protected segments to the
//!   rack-0 blackout at every rack count ≥ 3 (a 2-rack pool cannot give a
//!   group that already spans both racks a third independent domain — the
//!   policy degrades loudly and the row reports the loss instead);
//! * host-only placement demonstrably **does** lose protected segments at
//!   every rack count — the contrast that proves the placement policy,
//!   not luck, is what survives the rack;
//! * every segment that survived recovery reads back byte-identical;
//! * full mode rewrites `BENCH_multirack.json`; smoke mode (`--smoke`,
//!   CI) re-runs the sweep and fails on any digest drift from the
//!   committed baseline.
//!
//! ```text
//! cargo run --release -p lmp-bench --bin multirack            # full, rewrites BENCH_multirack.json
//! cargo run --release -p lmp-bench --bin multirack -- --smoke # CI gate vs committed baseline
//! ```

use lmp_bench::{emit_header, emit_row};
use lmp_core::prelude::*;
use lmp_fabric::{DatacenterFabric, Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use serde::Serialize;

const HOSTS_PER_RACK: u32 = 3;
const RACK_COUNTS: [u32; 3] = [2, 3, 4];
const SEG_BYTES: u64 = 2 * FRAME_BYTES;
const READS: u64 = 200;
const SEED: u64 = 42;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
}

#[derive(Serialize)]
struct ConfigRow {
    policy: &'static str,
    racks: u32,
    servers: u32,
    local_ratio: f64,
    avg_read_ns: u64,
    cross_rack_reads: u64,
    workload_spine_bytes: u64,
    rebuilt: u64,
    lost_protected: u64,
    recovery_ns: u64,
    recovery_spine_bytes: u64,
    content_mismatches: u64,
    digest: String,
}

/// One configuration, end to end: build, workload, blackout, recovery.
/// Pure simulation — the row is a function of `(policy, racks, SEED)`.
fn run_config(domain_aware: bool, racks: u32) -> ConfigRow {
    let servers = racks * HOSTS_PER_RACK;
    let config = PoolConfig {
        servers,
        capacity_per_server: 64 * FRAME_BYTES,
        shared_per_server: 48 * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 16,
    };
    let mut pool = LogicalPool::new(config);
    let mut fabric = Fabric::new(LinkProfile::link1(), servers);
    let mut dc = DatacenterFabric::new(
        LinkProfile::link1(),
        racks,
        1,
        HOSTS_PER_RACK,
        4.0,
        2.0,
        SimDuration::from_nanos(40),
    );
    let domains = DomainMap::uniform(racks, HOSTS_PER_RACK);
    let mut pm = if domain_aware {
        ProtectionManager::with_policy(PlacementPolicy::DomainAware(domains.clone()))
    } else {
        ProtectionManager::new()
    };

    // Rack 0 homes both mirrored segments and the first parity member;
    // the second parity member lives in rack 1 so the group spans racks
    // before placement even runs (exactly the chaos rack-loss layout).
    let homes = [0u32, 1, 2, HOSTS_PER_RACK];
    let rng = DetRng::new(SEED).fork("multirack-setup");
    let mut segments = Vec::new();
    let mut contents: Vec<Vec<u8>> = Vec::new();
    for (i, &h) in homes.iter().enumerate() {
        let seg = pool
            .alloc(SEG_BYTES, Placement::On(NodeId(h)))
            .expect("setup alloc");
        let mut content_rng = rng.fork_indexed("content", i as u64);
        let data: Vec<u8> = (0..SEG_BYTES).map(|_| content_rng.below(256) as u8).collect();
        pool.write_bytes(LogicalAddr::new(seg, 0), &data)
            .expect("setup write");
        segments.push(seg);
        contents.push(data);
    }
    // Fillers leave rack 0 the freest domain, so host-only placement
    // packs the redundancy next to its primaries.
    for h in HOSTS_PER_RACK..servers {
        pool.alloc(8 * FRAME_BYTES, Placement::On(NodeId(h)))
            .expect("setup filler");
    }
    pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, segments[0])
        .expect("setup mirror 0");
    pm.mirror(&mut pool, &mut fabric, SimTime::ZERO, segments[1])
        .expect("setup mirror 1");
    pm.protect_parity(&mut pool, &mut fabric, SimTime::ZERO, &[segments[2], segments[3]])
        .expect("setup parity");

    // Seeded read workload over the datacenter fabric: requesters from
    // every rack hit the primaries, so the local-access ratio and spine
    // traffic reflect where placement put the data.
    let mut digest = FNV_OFFSET;
    let mut wl = DetRng::new(SEED).fork("multirack-workload");
    let mut local = 0u64;
    let mut total_latency = 0u64;
    for i in 0..READS {
        let at = SimTime::from_nanos(i * 500);
        let requester = NodeId(wl.below(servers as u64) as u32);
        let seg_idx = wl.below(segments.len() as u64) as usize;
        let len = 64 + wl.below(192);
        let holder = pool
            .holder_of(segments[seg_idx])
            .expect("primary resolvable before the blackout");
        let c = dc.read(at, requester, holder, len);
        if !c.cross_rack {
            local += 1;
        }
        total_latency += c.latency.as_nanos();
        fnv_fold(&mut digest, u64::from(requester.0));
        fnv_fold(&mut digest, u64::from(holder.0));
        fnv_fold(&mut digest, c.latency.as_nanos());
        fnv_fold(&mut digest, u64::from(c.cross_rack));
    }
    let workload_spine_bytes = dc.spine_payload_bytes();

    // Rack-0 blackout, then the same per-node recovery the orchestrator
    // runs, in ascending host order.
    let blackout = SimTime::from_nanos(READS * 500 + 10_000);
    let detect = blackout + SimDuration::from_micros(2);
    let mut crashed = Vec::new();
    for n in domains.hosts_in(0) {
        let mut affected = pool.crash_server(n);
        affected.sort_unstable();
        fabric.set_port_down(n, true);
        crashed.push((n, affected));
    }
    let mut lost_protected = 0u64;
    let mut rebuilt: Vec<SegmentId> = Vec::new();
    for (n, affected) in crashed {
        let report = pm.recover(&mut pool, &mut fabric, detect, n, &affected);
        for seg in &report.lost {
            if segments.contains(seg) {
                lost_protected += 1;
                fnv_fold(&mut digest, seg.0);
            }
        }
        rebuilt.extend(report.promoted.iter().copied());
        rebuilt.extend(report.reconstructed.iter().copied());
    }

    // Replay the rebuild traffic on the datacenter fabric: every rebuilt
    // segment pulled its bytes from a surviving holder, so the spine sees
    // the recovery and its completion time is the recovery time.
    let spine_before = dc.spine_payload_bytes();
    let mut recovery_done = detect;
    for &seg in &rebuilt {
        let Some(dst) = pool.holder_of(seg) else { continue };
        let mut sources: Vec<NodeId> = Vec::new();
        if let Some(rep) = pm.replica(seg) {
            sources.extend(pool.holder_of(rep));
        }
        if let Some(gid) = pm.group_of(seg) {
            for &m in pm.group_members(gid).unwrap_or(&[]) {
                if m != seg {
                    sources.extend(pool.holder_of(m));
                }
            }
            if let Some(p) = pm.parity_segment(gid) {
                sources.extend(pool.holder_of(p));
            }
        }
        for src in sources {
            if src == dst {
                continue;
            }
            let c = dc.read(detect, dst, src, SEG_BYTES);
            if c.complete > recovery_done {
                recovery_done = c.complete;
            }
        }
    }
    let recovery_ns = recovery_done.duration_since(detect).as_nanos();
    let recovery_spine_bytes = dc.spine_payload_bytes() - spine_before;

    // Every surviving segment must read back byte-identical.
    let mut content_mismatches = 0u64;
    for (i, &seg) in segments.iter().enumerate() {
        match pool.read_bytes(LogicalAddr::new(seg, 0), SEG_BYTES) {
            Ok(got) => {
                if got != contents[i] {
                    content_mismatches += 1;
                }
            }
            Err(_) => {
                // Lost segments are accounted above; a read failure on a
                // segment not reported lost is a mismatch.
                if !pm.is_protected(seg) && lost_protected == 0 {
                    content_mismatches += 1;
                }
            }
        }
    }
    fnv_fold(&mut digest, lost_protected);
    fnv_fold(&mut digest, rebuilt.len() as u64);
    fnv_fold(&mut digest, recovery_ns);
    fnv_fold(&mut digest, recovery_spine_bytes);
    fnv_fold(&mut digest, content_mismatches);

    ConfigRow {
        policy: if domain_aware { "domain" } else { "host" },
        racks,
        servers,
        local_ratio: local as f64 / READS as f64,
        avg_read_ns: total_latency / READS,
        cross_rack_reads: dc.cross_rack_read_count(),
        workload_spine_bytes,
        rebuilt: rebuilt.len() as u64,
        lost_protected,
        recovery_ns,
        recovery_spine_bytes,
        content_mismatches,
        digest: format!("{digest:#018x}"),
    }
}

/// The committed baseline, flat and string-searchable: the smoke gate
/// extracts fields without a JSON parser (the vendored serde_json shim is
/// write-only).
#[derive(Serialize)]
struct Baseline {
    reads_per_config: u64,
    digest_host_2: String,
    digest_host_3: String,
    digest_host_4: String,
    digest_domain_2: String,
    digest_domain_3: String,
    digest_domain_4: String,
    host_lost_protected: u64,
    domain_lost_protected_3plus: u64,
    host_local_ratio_4: f64,
    domain_local_ratio_4: f64,
    domain_recovery_ns_4: u64,
    domain_recovery_spine_bytes_4: u64,
}

/// Pull `"key":<value>` out of flat JSON; values may be quoted strings.
fn json_field<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = json.find(&pat)? + pat.len();
    let rest = &json[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

fn run_sweep() -> Vec<ConfigRow> {
    let mut rows = Vec::new();
    for domain_aware in [false, true] {
        for racks in RACK_COUNTS {
            let row = run_config(domain_aware, racks);
            emit_row(
                &format!(
                    "{:6} racks={} local {:>5.2} avg {:>6} ns  rebuilt {} lost_protected {} recovery {:>7} ns  {}",
                    row.policy,
                    row.racks,
                    row.local_ratio,
                    row.avg_read_ns,
                    row.rebuilt,
                    row.lost_protected,
                    row.recovery_ns,
                    row.digest,
                ),
                &row,
            );
            rows.push(row);
        }
    }
    rows
}

/// The cross-policy acceptance contrast; `None` means it holds.
fn contrast_failure(rows: &[ConfigRow]) -> Option<String> {
    for r in rows {
        if r.content_mismatches > 0 {
            return Some(format!(
                "{} racks={}: {} surviving segments diverged from their pre-blackout bytes",
                r.policy, r.racks, r.content_mismatches
            ));
        }
        match r.policy {
            "domain" if r.racks >= 3 && r.lost_protected > 0 => {
                return Some(format!(
                    "domain-aware placement lost {} protected segments at racks={}",
                    r.lost_protected, r.racks
                ));
            }
            "host" if r.lost_protected == 0 => {
                return Some(format!(
                    "host-only placement lost nothing at racks={} — the contrast is gone",
                    r.racks
                ));
            }
            _ => {}
        }
    }
    None
}

fn find<'a>(rows: &'a [ConfigRow], policy: &str, racks: u32) -> &'a ConfigRow {
    rows.iter()
        .find(|r| r.policy == policy && r.racks == racks)
        .expect("sweep covers every configuration")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    emit_header(
        "multirack",
        "failure-domain-aware vs host-only placement across racks",
        "domain-aware placement survives a full rack loss with zero protected losses",
    );

    let rows = run_sweep();
    if let Some(why) = contrast_failure(&rows) {
        eprintln!("multirack: {why}");
        std::process::exit(1);
    }

    if smoke {
        let baseline = match std::fs::read_to_string("BENCH_multirack.json") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("multirack --smoke: no committed BENCH_multirack.json baseline ({e})");
                std::process::exit(2);
            }
        };
        let mut ok = true;
        for r in &rows {
            let key = format!("digest_{}_{}", r.policy, r.racks);
            match json_field(&baseline, &key) {
                Some(b) if b == r.digest => {}
                Some(b) => {
                    eprintln!(
                        "multirack: digest drift for {} racks={}: baseline {b}, got {}",
                        r.policy, r.racks, r.digest
                    );
                    ok = false;
                }
                None => {
                    eprintln!("multirack: baseline missing {key}");
                    ok = false;
                }
            }
        }
        println!("smoke: {} configurations — {}", rows.len(), if ok { "PASS" } else { "FAIL" });
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    let host_lost: u64 = rows
        .iter()
        .filter(|r| r.policy == "host")
        .map(|r| r.lost_protected)
        .sum();
    let domain_lost_3plus: u64 = rows
        .iter()
        .filter(|r| r.policy == "domain" && r.racks >= 3)
        .map(|r| r.lost_protected)
        .sum();
    let d4 = find(&rows, "domain", 4);
    let baseline = Baseline {
        reads_per_config: READS,
        digest_host_2: find(&rows, "host", 2).digest.clone(),
        digest_host_3: find(&rows, "host", 3).digest.clone(),
        digest_host_4: find(&rows, "host", 4).digest.clone(),
        digest_domain_2: find(&rows, "domain", 2).digest.clone(),
        digest_domain_3: find(&rows, "domain", 3).digest.clone(),
        digest_domain_4: find(&rows, "domain", 4).digest.clone(),
        host_lost_protected: host_lost,
        domain_lost_protected_3plus: domain_lost_3plus,
        host_local_ratio_4: find(&rows, "host", 4).local_ratio,
        domain_local_ratio_4: d4.local_ratio,
        domain_recovery_ns_4: d4.recovery_ns,
        domain_recovery_spine_bytes_4: d4.recovery_spine_bytes,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write("BENCH_multirack.json", json).expect("write BENCH_multirack.json");
    println!(
        "full: host-only lost {host_lost} protected segments across the sweep, domain-aware lost {domain_lost_3plus} (racks ≥ 3) — baseline written"
    );
}
