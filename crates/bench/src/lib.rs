// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-bench — harness utilities
//!
//! Shared table/JSON output helpers for the per-table and per-figure
//! binaries (`table1`, `table2`, `figures`, `cost`, `nearmem`, `latency`,
//! and the ablations). Each binary prints a human-readable table matching
//! the paper's artifact plus one JSON line per row for machine diffing
//! against EXPERIMENTS.md.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::Serialize;

/// Print one experiment row: aligned text plus a `#json` trailer line.
// Experiment rows are plain data structs; serialization cannot fail.
#[allow(clippy::expect_used)]
pub fn emit_row<T: Serialize>(text: &str, row: &T) {
    println!("{text}");
    println!(
        "#json {}",
        serde_json::to_string(row).expect("row serializes")
    );
}

/// Print a section header for an experiment artifact.
pub fn emit_header(id: &str, title: &str, paper_expectation: &str) {
    println!("== {id}: {title}");
    println!("   paper: {paper_expectation}");
}

/// Render an `Option<f64>` bandwidth as the figures do ("INFEASIBLE" when a
/// deployment cannot run the workload).
pub fn fmt_gbps(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:7.1} GB/s"),
        None => " INFEASIBLE".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_gbps_renders_both_cases() {
        assert_eq!(fmt_gbps(Some(4.25)), "    4.2 GB/s");
        assert_eq!(fmt_gbps(None), " INFEASIBLE");
    }
}
