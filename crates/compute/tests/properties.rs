// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests for scans, placement, and shippable tasks.

use lmp_compute::{
    reduce_value, run_task, scan_ranges, DistVector, Partial, ReduceOp, ScanParams, Strategy,
    Task,
};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use proptest::prelude::*;

fn setup(shared_frames: u64) -> (LogicalPool, Fabric) {
    let cfg = PoolConfig {
        servers: 4,
        capacity_per_server: (shared_frames + 2) * FRAME_BYTES,
        shared_per_server: shared_frames * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    };
    (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ranged scans account every byte exactly once, for arbitrary stripe
    /// layouts, core counts, and chunk sizes.
    #[test]
    fn scan_accounts_every_byte(
        stripe_frames in proptest::collection::vec(1u64..4, 1..4),
        cores in 1u32..16,
        chunk_kb in 1u64..4096,
    ) {
        let (mut p, mut f) = setup(16);
        let mut ranges = Vec::new();
        let mut total = 0;
        for (i, frames) in stripe_frames.iter().enumerate() {
            let len = frames * FRAME_BYTES;
            let seg = p.alloc(len, Placement::On(NodeId(i as u32))).unwrap();
            ranges.push((seg, 0, len));
            total += len;
        }
        let params = ScanParams {
            cores,
            chunk: chunk_kb * 1024,
            ..ScanParams::default()
        };
        let out = scan_ranges(&mut p, &mut f, SimTime::ZERO, NodeId(0), &ranges, params).unwrap();
        prop_assert_eq!(out.local_bytes + out.remote_bytes, total);
        prop_assert_eq!(out.local_bytes, stripe_frames[0] * FRAME_BYTES);
    }

    /// Task results are strategy-independent and match a straightforward
    /// reference computation, for arbitrary vector contents.
    #[test]
    fn tasks_match_reference(
        values in proptest::collection::vec(any::<u64>(), 8..64),
        threshold in any::<u64>(),
    ) {
        let (mut p, mut f) = setup(8);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        // One frame per stripe; values land in stripe 0's prefix.
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &servers).unwrap();
        let bytes: Vec<u8> = values.iter().flat_map(|x| x.to_le_bytes()).collect();
        p.write_bytes(LogicalAddr::new(v.stripes[0].1, 0), &bytes).unwrap();

        // Reference over the full (zero-padded) vector.
        let elems_total = v.len() / 8;
        let mut all = values.clone();
        all.resize(elems_total as usize, 0);

        for (task, expect) in [
            (
                Task::Reduce(ReduceOp::Sum),
                Partial::Scalar(all.iter().fold(0u64, |a, &b| a.wrapping_add(b))),
            ),
            (
                Task::Reduce(ReduceOp::Max),
                Partial::Scalar(all.iter().copied().max().unwrap()),
            ),
            (
                Task::CountGreater(threshold),
                Partial::Scalar(all.iter().filter(|&&x| x > threshold).count() as u64),
            ),
            (
                Task::FindFirst(values[0]),
                Partial::Found(all.iter().position(|&x| x == values[0]).map(|i| i as u64)),
            ),
        ] {
            for strategy in [Strategy::Pull, Strategy::Ship] {
                let (got, _) = run_task(
                    &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, task, strategy,
                    ScanParams::with_cores(2),
                )
                .unwrap();
                prop_assert_eq!(&got, &expect, "{:?} via {:?}", task, strategy);
            }
        }
    }

    /// reduce_value matches a flat fold regardless of striping.
    #[test]
    fn reduce_value_is_striping_invariant(
        values in proptest::collection::vec(any::<u64>(), 4..32),
        nstripes in 1usize..4,
    ) {
        let (mut p, _) = setup(8);
        let servers: Vec<NodeId> = (0..nstripes as u32).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, nstripes as u64 * FRAME_BYTES, &servers).unwrap();
        // Spread the values across stripes in order.
        let per = values.len() / nstripes + 1;
        let mut expect = 0u64;
        for (i, chunk) in values.chunks(per).enumerate() {
            let bytes: Vec<u8> = chunk.iter().flat_map(|x| x.to_le_bytes()).collect();
            p.write_bytes(LogicalAddr::new(v.stripes[i].1, 0), &bytes).unwrap();
            expect = chunk.iter().fold(expect, |a, &b| a.wrapping_add(b));
        }
        prop_assert_eq!(reduce_value(&p, &v, ReduceOp::Sum).unwrap(), expect);
    }

    /// Shipping never moves more fabric bytes than pulling, for any layout.
    #[test]
    fn shipping_never_moves_more_data(requester in 0u32..4) {
        let (mut p, mut f) = setup(8);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 8 * FRAME_BYTES, &servers).unwrap();
        let (_, pull) = run_task(
            &mut p, &mut f, SimTime::ZERO, NodeId(requester), &v,
            Task::Reduce(ReduceOp::Sum), Strategy::Pull, ScanParams::with_cores(4),
        )
        .unwrap();
        let (_, ship) = run_task(
            &mut p, &mut f, SimTime::ZERO, NodeId(requester), &v,
            Task::Reduce(ReduceOp::Sum), Strategy::Ship, ScanParams::with_cores(4),
        )
        .unwrap();
        prop_assert!(ship.fabric_bytes <= pull.fabric_bytes);
        prop_assert!(ship.fabric_bytes <= 3 * 8, "three remote partials max");
    }
}
