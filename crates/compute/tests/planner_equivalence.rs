// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests for the pushdown planner: whatever per-segment mix of
//! ship and fetch the cost model picks — under random placements,
//! selectivities, background link load, and mid-flight migrations — the
//! merged result must be byte-identical to the all-fetch reference, and
//! the whole pipeline must be run-to-run deterministic.

use lmp_compute::{
    fetch_reference, Choice, DistVector, OpOutput, Operator, Planner, Predicate, ReduceOp,
    ScanParams,
};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, LinkProfile, NodeId};
use lmp_mem::{DramProfile, FRAME_BYTES};
use lmp_sim::prelude::*;
use proptest::prelude::*;

fn setup(shared_frames: u64) -> (LogicalPool, Fabric) {
    let cfg = PoolConfig {
        servers: 4,
        capacity_per_server: (shared_frames + 2) * FRAME_BYTES,
        shared_per_server: shared_frames * FRAME_BYTES,
        dram: DramProfile::xeon_gold_5120(),
        tlb_capacity: 64,
    };
    (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 4))
}

/// Deterministically fill every stripe from a seeded LCG, elements in
/// `[0, modulus)`.
fn fill_lcg(pool: &mut LogicalPool, v: &DistVector, seed: u64, modulus: u64) {
    let mut x = seed | 1;
    for (_, seg, len) in &v.stripes {
        let mut bytes = Vec::with_capacity(*len as usize);
        for _ in 0..(len / 8) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            bytes.extend(((x >> 33) % modulus).to_le_bytes());
        }
        bytes.resize(*len as usize, 0);
        pool.write_bytes(LogicalAddr::new(*seg, 0), &bytes).unwrap();
    }
}

/// FNV-1a over a rendered form of the output plus outcome fields.
fn digest(out: &OpOutput, complete: SimTime, fabric_bytes: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match out {
        OpOutput::Scalar(v) => fold(*v),
        OpOutput::Rows(v) | OpOutput::Top(v) => {
            fold(v.len() as u64);
            for x in v {
                fold(*x);
            }
        }
    }
    fold(complete.as_nanos());
    fold(fabric_bytes);
    h
}

/// One full planner run in a fresh world; returns (output, digest, plan
/// ship-count).
#[allow(clippy::too_many_arguments)]
fn run_world(
    stripe_frames: &[u64],
    placements: &[u32],
    seed: u64,
    modulus: u64,
    selectivity: f64,
    bg_load_mib: u64,
    migrate_to: Option<u32>,
    op: Operator,
    forced: Option<Choice>,
) -> (OpOutput, u64, usize) {
    let (mut p, mut f) = setup(64);
    let mut stripes = Vec::new();
    for (frames, node) in stripe_frames.iter().zip(placements) {
        let len = frames * FRAME_BYTES;
        let seg = p.alloc(len, Placement::On(NodeId(*node))).unwrap();
        stripes.push((NodeId(*node), seg, len));
    }
    let v = DistVector { stripes };
    fill_lcg(&mut p, &v, seed, modulus);
    // Background load: bulk transfers on a ring over the non-requester
    // nodes, backlogging their up wires.
    if bg_load_mib > 0 {
        for h in 1..4u32 {
            f.write(SimTime::ZERO, NodeId(h), NodeId(h % 3 + 1), bg_load_mib * MIB);
        }
    }
    let planner = Planner::new(ScanParams::default(), selectivity);
    let plan = planner
        .plan(&mut p, &f, SimTime::ZERO, NodeId(0), &v, op)
        .unwrap();
    let plan = match forced {
        Some(c) => plan.forced(c),
        None => plan,
    };
    // Race the plan with a migration of the first stripe.
    if let Some(dst) = migrate_to {
        let (_, seg, _) = v.stripes[0];
        if p.holder_of(seg) != Some(NodeId(dst)) {
            lmp_core::migrate::migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(dst))
                .unwrap();
        }
    }
    let start = SimTime::from_nanos(100_000_000);
    let (out, outcome) = planner
        .execute(&mut p, &mut f, start, NodeId(0), op, &plan)
        .unwrap();
    let d = digest(&out, outcome.complete, outcome.fabric_bytes);
    (out, d, plan.count(Choice::Ship))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planner-chosen plans produce byte-identical results to the
    /// all-fetch reference under random placements, selectivities, and
    /// background link load — and the whole run is deterministic.
    #[test]
    fn planned_results_match_fetch_reference(
        stripe_frames in proptest::collection::vec(1u64..6, 1..5),
        placement_seed in any::<u64>(),
        data_seed in any::<u64>(),
        threshold in 0u64..64,
        bg_load_mib in prop_oneof![Just(0u64), 1u64..256],
        op_pick in 0u8..4,
    ) {
        let placements: Vec<u32> = stripe_frames
            .iter()
            .enumerate()
            .map(|(i, _)| ((placement_seed >> (i * 8)) % 4) as u32)
            .collect();
        let modulus = 64;
        let op = match op_pick {
            0 => Operator::Filter(Predicate::Greater(threshold)),
            1 => Operator::Count(Predicate::Less(threshold)),
            2 => Operator::Aggregate(ReduceOp::Sum),
            _ => Operator::TopK(1 + (threshold as u32 % 16)),
        };
        let selectivity = 1.0 - threshold as f64 / modulus as f64;

        let (planned, d1, _) = run_world(
            &stripe_frames, &placements, data_seed, modulus, selectivity,
            bg_load_mib, None, op, None,
        );
        // Identical world, forced all-fetch: the reference result.
        let (fetched, _, _) = run_world(
            &stripe_frames, &placements, data_seed, modulus, selectivity,
            bg_load_mib, None, op, Some(Choice::Fetch),
        );
        prop_assert_eq!(&planned, &fetched, "plan must not change the answer");
        // Twice-run determinism: same world, same digest.
        let (_, d2, _) = run_world(
            &stripe_frames, &placements, data_seed, modulus, selectivity,
            bg_load_mib, None, op, None,
        );
        prop_assert_eq!(d1, d2, "planner run must be deterministic");
    }

    /// A migration racing the plan never changes the answer, and the
    /// relocation is visible in the stale-holder accounting.
    #[test]
    fn migration_between_plan_and_execute_preserves_results(
        stripe_frames in proptest::collection::vec(1u64..4, 2..5),
        data_seed in any::<u64>(),
        dst in 0u32..4,
        threshold in 0u64..64,
    ) {
        // All stripes start away from the requester and the migration
        // target so capacity for the moved copy always exists.
        let placements: Vec<u32> = stripe_frames.iter().enumerate()
            .map(|(i, _)| 1 + (i as u32 % 2))
            .collect();
        let op = Operator::Filter(Predicate::Greater(threshold));
        let (moved, _, _) = run_world(
            &stripe_frames, &placements, data_seed, 64, 0.5, 0, Some(dst), op, None,
        );
        let (still, _, _) = run_world(
            &stripe_frames, &placements, data_seed, 64, 0.5, 0, None, op, None,
        );
        prop_assert_eq!(&moved, &still, "migration must not change the answer");
    }
}

/// Non-proptest spot check: the reference helper agrees with a hand fold.
#[test]
fn fetch_reference_matches_hand_fold() {
    let (mut p, mut f) = setup(16);
    let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
    let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &servers).unwrap();
    fill_lcg(&mut p, &v, 99, 1000);
    let mut want = 0u64;
    for (_, seg, len) in &v.stripes {
        let bytes = p.read_bytes(LogicalAddr::new(*seg, 0), *len).unwrap();
        for w in bytes.chunks_exact(8) {
            want = want.wrapping_add(u64::from_le_bytes(w.try_into().unwrap()));
        }
    }
    let planner = Planner::new(ScanParams::default(), 1.0);
    let (out, _) = fetch_reference(
        &planner, &mut p, &mut f, SimTime::ZERO, NodeId(0), &v,
        Operator::Aggregate(ReduceOp::Sum),
    )
    .unwrap();
    assert_eq!(out, OpOutput::Scalar(want));
}
