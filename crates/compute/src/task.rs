//! Shippable computations.
//!
//! Compute shipping (§4.4) needs a *description* of work that can travel
//! to the server holding the data. [`Task`] is that description: a small,
//! serializable operator over a byte range of u64 elements. Each task has
//! a well-defined result combiner, so per-stripe partials merge on the
//! requester exactly like the distributed sum of §4.4.
//!
//! The operators cover the aggregation-style kernels the paper's
//! motivation names (analytics over large in-pool datasets): reductions,
//! predicate counting/selection, and histogram building.

use crate::ship::ReduceOp;

/// A computation shippable to a data holder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Fold all elements with a [`ReduceOp`].
    Reduce(ReduceOp),
    /// Count elements strictly greater than the threshold.
    CountGreater(u64),
    /// Count elements equal to the value.
    CountEqual(u64),
    /// Index (within the scanned range, in elements) of the first element
    /// equal to the value, if any.
    FindFirst(u64),
    /// Histogram of the top `bits` bits of each element (≤ 8 bits, so the
    /// result fits the fixed-size partial).
    HistogramTopBits(u8),
}

/// A task's partial result from one stripe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partial {
    /// Scalar accumulator (reductions, counts).
    Scalar(u64),
    /// First-match index, offset by the stripe's element base.
    Found(Option<u64>),
    /// Bucketed counts.
    Histogram(Vec<u64>),
}

impl Task {
    /// Size in bytes of this task's partial when shipped back to the
    /// requester (what crosses the fabric instead of the data).
    pub fn partial_bytes(&self) -> u64 {
        match self {
            Task::Reduce(_) | Task::CountGreater(_) | Task::CountEqual(_) => 8,
            Task::FindFirst(_) => 9, // option tag + index
            Task::HistogramTopBits(bits) => 8 * (1u64 << bits),
        }
    }

    /// Execute over a byte slice of little-endian u64 elements, where the
    /// slice's first element has global element index `element_base`.
    pub fn execute(&self, bytes: &[u8], element_base: u64) -> Partial {
        match *self {
            Task::Reduce(op) => Partial::Scalar(op.fold_bytes(bytes)),
            Task::CountGreater(t) => Partial::Scalar(
                elements(bytes).filter(|&v| v > t).count() as u64,
            ),
            Task::CountEqual(t) => {
                Partial::Scalar(elements(bytes).filter(|&v| v == t).count() as u64)
            }
            Task::FindFirst(t) => Partial::Found(
                elements(bytes)
                    .position(|v| v == t)
                    .map(|i| element_base + i as u64),
            ),
            Task::HistogramTopBits(bits) => {
                // lmp-lint: allow(no-panic) — the planner clamps histogram
                // width when building tasks; a wider request is a planner bug,
                // not an input error.
                assert!(bits <= 8, "histogram too wide to ship");
                let mut buckets = vec![0u64; 1 << bits];
                for v in elements(bytes) {
                    buckets[(v >> (64 - bits as u32)) as usize] += 1;
                }
                Partial::Histogram(buckets)
            }
        }
    }

    /// Combine two partials of this task.
    ///
    /// # Panics
    /// Panics when the partial variants do not match the task (a protocol
    /// bug, not a data condition).
    pub fn combine(&self, a: Partial, b: Partial) -> Partial {
        match (self, a, b) {
            (Task::Reduce(op), Partial::Scalar(x), Partial::Scalar(y)) => {
                Partial::Scalar(op.combine(x, y))
            }
            (Task::CountGreater(_) | Task::CountEqual(_), Partial::Scalar(x), Partial::Scalar(y)) => {
                Partial::Scalar(x + y)
            }
            (Task::FindFirst(_), Partial::Found(x), Partial::Found(y)) => {
                // Earliest global index wins.
                Partial::Found(match (x, y) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                })
            }
            (Task::HistogramTopBits(_), Partial::Histogram(mut x), Partial::Histogram(y)) => {
                // lmp-lint: allow(no-panic) — the planner pairs partials from
                // the same task, so widths match; a mismatch is a merge-
                // ordering bug.
                assert_eq!(x.len(), y.len(), "histogram width mismatch");
                for (a, b) in x.iter_mut().zip(y) {
                    *a += b;
                }
                Partial::Histogram(x)
            }
            // lmp-lint: allow(no-panic) — the planner only merges partials of
            // the task that produced them; a cross-kind merge is a planner
            // bug.
            (task, a, b) => panic!("partial mismatch for {task:?}: {a:?} / {b:?}"),
        }
    }

    /// The identity partial for this task.
    pub fn identity(&self) -> Partial {
        match *self {
            Task::Reduce(op) => Partial::Scalar(op.identity()),
            Task::CountGreater(_) | Task::CountEqual(_) => Partial::Scalar(0),
            Task::FindFirst(_) => Partial::Found(None),
            Task::HistogramTopBits(bits) => Partial::Histogram(vec![0; 1 << bits]),
        }
    }
}

// chunks_exact(8) yields exactly-8-byte windows; the conversion is total.
#[allow(clippy::expect_used)]
fn elements(bytes: &[u8]) -> impl Iterator<Item = u64> + '_ {
    bytes
        .chunks_exact(8)
        // lmp-lint: allow(no-panic) — chunks_exact(8) yields exactly 8-byte
        // slices, so the conversion is structurally infallible.
        .map(|w| u64::from_le_bytes(w.try_into().expect("chunks_exact(8)")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack(vals: &[u64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn reduce_tasks() {
        let data = pack(&[5, 1, 9]);
        assert_eq!(
            Task::Reduce(ReduceOp::Sum).execute(&data, 0),
            Partial::Scalar(15)
        );
        assert_eq!(
            Task::Reduce(ReduceOp::Max).execute(&data, 0),
            Partial::Scalar(9)
        );
    }

    #[test]
    fn counting_tasks() {
        let data = pack(&[5, 1, 9, 5]);
        assert_eq!(Task::CountGreater(4).execute(&data, 0), Partial::Scalar(3));
        assert_eq!(Task::CountEqual(5).execute(&data, 0), Partial::Scalar(2));
    }

    #[test]
    fn find_first_respects_element_base() {
        let data = pack(&[7, 8, 9]);
        assert_eq!(
            Task::FindFirst(9).execute(&data, 100),
            Partial::Found(Some(102))
        );
        assert_eq!(Task::FindFirst(99).execute(&data, 100), Partial::Found(None));
    }

    #[test]
    fn find_first_combines_to_earliest() {
        let t = Task::FindFirst(1);
        assert_eq!(
            t.combine(Partial::Found(Some(50)), Partial::Found(Some(10))),
            Partial::Found(Some(10))
        );
        assert_eq!(
            t.combine(Partial::Found(None), Partial::Found(Some(3))),
            Partial::Found(Some(3))
        );
    }

    #[test]
    fn histogram_buckets_and_combines() {
        let t = Task::HistogramTopBits(1); // bucket by the top bit
        let low = pack(&[1, 2, 3]);
        let high = pack(&[u64::MAX, 1 << 63]);
        let a = t.execute(&low, 0);
        let b = t.execute(&high, 3);
        assert_eq!(a, Partial::Histogram(vec![3, 0]));
        assert_eq!(b, Partial::Histogram(vec![0, 2]));
        assert_eq!(t.combine(a, b), Partial::Histogram(vec![3, 2]));
    }

    #[test]
    fn partial_sizes() {
        assert_eq!(Task::Reduce(ReduceOp::Sum).partial_bytes(), 8);
        assert_eq!(Task::HistogramTopBits(4).partial_bytes(), 128);
    }

    #[test]
    fn identities_are_neutral() {
        for t in [
            Task::Reduce(ReduceOp::Sum),
            Task::Reduce(ReduceOp::Min),
            Task::CountGreater(5),
            Task::FindFirst(2),
            Task::HistogramTopBits(2),
        ] {
            let data = pack(&[1, 2, 1 << 62]);
            let x = t.execute(&data, 0);
            assert_eq!(t.combine(t.identity(), x.clone()), x);
        }
    }

    #[test]
    #[should_panic(expected = "partial mismatch")]
    fn mismatched_partials_panic() {
        Task::Reduce(ReduceOp::Sum).combine(Partial::Scalar(1), Partial::Found(None));
    }
}
