//! Data placement for distributed buffers.
//!
//! §4.4: "If we distribute the sum across LMP servers, then each server
//! could access different parts of the vector locally." A [`DistVector`]
//! is a buffer striped across servers — one segment per stripe — so each
//! server holds a contiguous share it can scan at local speed. Placement
//! is the first of the paper's three incast remedies (placement, migration,
//! compute shipping).

use lmp_core::prelude::*;
use lmp_fabric::NodeId;

/// A buffer striped across servers.
#[derive(Debug, Clone)]
pub struct DistVector {
    /// `(holder, segment, stripe length in bytes)`, in logical order.
    pub stripes: Vec<(NodeId, SegmentId, u64)>,
}

impl DistVector {
    /// Total length in bytes.
    pub fn len(&self) -> u64 {
        self.stripes.iter().map(|(_, _, l)| l).sum()
    }

    /// True when the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stripe held by `server`, if any.
    pub fn stripe_on(&self, server: NodeId) -> Option<(SegmentId, u64)> {
        self.stripes
            .iter()
            .find(|(n, _, _)| *n == server)
            .map(|(_, s, l)| (*s, *l))
    }

    /// Allocate a vector of `len` bytes striped evenly across `servers`.
    ///
    /// Every server gets `len / servers.len()` (the last stripe absorbs the
    /// remainder). Fails when any server lacks shared capacity.
    // Rollback frees only segments this function just allocated.
    #[allow(clippy::expect_used)]
    pub fn stripe_even(
        pool: &mut LogicalPool,
        len: u64,
        servers: &[NodeId],
    ) -> Result<DistVector, PoolError> {
        if servers.is_empty() {
            return Err(PoolError::InvalidRequest("need at least one server"));
        }
        if len == 0 {
            return Err(PoolError::InvalidRequest("empty vector"));
        }
        let base = len / servers.len() as u64;
        let mut stripes = Vec::with_capacity(servers.len());
        let mut allocated = 0;
        for (i, &s) in servers.iter().enumerate() {
            let this = if i + 1 == servers.len() {
                len - allocated
            } else {
                base
            };
            if this == 0 {
                continue;
            }
            match pool.alloc(this, Placement::On(s)) {
                Ok(seg) => {
                    stripes.push((s, seg, this));
                    allocated += this;
                }
                Err(e) => {
                    // Roll back previous stripes. `?` on the free: these
                    // segments were just allocated, so a failure here is
                    // pool corruption and worth surfacing over `e`.
                    for (_, seg, _) in stripes {
                        pool.free(seg)?;
                    }
                    return Err(e);
                }
            }
        }
        Ok(DistVector { stripes })
    }

    /// Allocate a vector of `len` bytes greedily: local-first on
    /// `preferred`, overflowing to whichever servers have room — the
    /// placement a single-server workload gets (§4.3's 64 GB case, where
    /// 3/8 of the vector lands locally).
    // Rollback frees only segments this function just allocated.
    #[allow(clippy::expect_used)]
    pub fn place_local_first(
        pool: &mut LogicalPool,
        len: u64,
        preferred: NodeId,
    ) -> Result<DistVector, PoolError> {
        if len == 0 {
            return Err(PoolError::InvalidRequest("empty vector"));
        }
        use lmp_mem::FRAME_BYTES;
        let mut remaining = len;
        let mut stripes = Vec::new();
        let mut order: Vec<NodeId> = vec![preferred];
        order.extend((0..pool.servers()).map(NodeId).filter(|n| *n != preferred));
        for s in order {
            if remaining == 0 {
                break;
            }
            let room = pool.free_shared_frames(s) * FRAME_BYTES;
            let take = room.min(remaining);
            if take == 0 {
                continue;
            }
            match pool.alloc(take, Placement::On(s)) {
                Ok(seg) => {
                    stripes.push((s, seg, take));
                    remaining -= take;
                }
                Err(_) => continue,
            }
        }
        if remaining > 0 {
            for (_, seg, _) in stripes {
                pool.free(seg)?;
            }
            return Err(PoolError::Capacity {
                requested_frames: remaining.div_ceil(FRAME_BYTES),
            });
        }
        Ok(DistVector { stripes })
    }

    /// Free every stripe.
    pub fn free(self, pool: &mut LogicalPool) -> Result<(), PoolError> {
        for (_, seg, _) in self.stripes {
            pool.free(seg)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn pool(shared_frames: u64) -> LogicalPool {
        LogicalPool::new(PoolConfig {
            servers: 4,
            capacity_per_server: (shared_frames + 2) * FRAME_BYTES,
            shared_per_server: shared_frames * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 16,
        })
    }

    #[test]
    fn even_striping_covers_all_servers() {
        let mut p = pool(16);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 8 * FRAME_BYTES, &servers).unwrap();
        assert_eq!(v.stripes.len(), 4);
        assert_eq!(v.len(), 8 * FRAME_BYTES);
        for (i, (n, seg, l)) in v.stripes.iter().enumerate() {
            assert_eq!(*n, NodeId(i as u32));
            assert_eq!(p.holder_of(*seg), Some(*n));
            assert_eq!(*l, 2 * FRAME_BYTES);
        }
    }

    #[test]
    fn local_first_fills_preferred_then_spills() {
        let mut p = pool(8);
        let v = DistVector::place_local_first(&mut p, 12 * FRAME_BYTES, NodeId(1)).unwrap();
        assert_eq!(v.stripes[0].0, NodeId(1));
        assert_eq!(v.stripes[0].2, 8 * FRAME_BYTES, "preferred filled first");
        assert_eq!(v.len(), 12 * FRAME_BYTES);
    }

    #[test]
    fn rollback_on_insufficient_capacity() {
        let mut p = pool(4);
        // 4 servers × 4 frames = 16 frames; ask for 20.
        let before: u64 = (0..4).map(|s| p.free_shared_frames(NodeId(s))).sum();
        let r = DistVector::place_local_first(&mut p, 20 * FRAME_BYTES, NodeId(0));
        assert!(r.is_err());
        let after: u64 = (0..4).map(|s| p.free_shared_frames(NodeId(s))).sum();
        assert_eq!(before, after, "partial allocation leaked");
    }

    #[test]
    fn free_returns_capacity() {
        let mut p = pool(8);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 8 * FRAME_BYTES, &servers).unwrap();
        v.free(&mut p).unwrap();
        for s in 0..4 {
            assert_eq!(p.free_shared_frames(NodeId(s)), 8);
        }
    }

    #[test]
    fn stripe_on_lookup() {
        let mut p = pool(8);
        let servers = [NodeId(2), NodeId(3)];
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &servers).unwrap();
        assert!(v.stripe_on(NodeId(2)).is_some());
        assert!(v.stripe_on(NodeId(0)).is_none());
    }
}
