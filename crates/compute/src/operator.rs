//! Pushdown operator descriptions.
//!
//! The pushdown framework needs a *description* of work that can travel to
//! a segment holder and whose result size is a property of the data, not
//! of the operator alone. [`Operator`] generalizes the fixed-partial
//! [`Task`](crate::task::Task) enum in exactly that direction:
//!
//! * **Aggregate** — fold to one scalar (8 bytes shipped, like `Task`).
//! * **Count** — predicate count (8 bytes shipped).
//! * **Filter** — return the *matching elements themselves*; shipped bytes
//!   scale with selectivity, which is what makes ship-vs-fetch a real
//!   decision for the [`Planner`](crate::planner::Planner).
//! * **TopK** — return the k largest elements (≤ 8k bytes shipped).
//!
//! Every operator is executed per stripe and merged **in logical stripe
//! order** at the requester, so a plan that ships some stripes and fetches
//! the rest produces byte-identical output to an all-fetch reference.
//!
//! This module is on the lmp-lint R3 no-panic list: merges surface
//! mismatched partials as [`PoolError::Internal`] instead of panicking.

use crate::ship::ReduceOp;
use lmp_core::prelude::PoolError;

/// A total predicate over u64 elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Strictly greater than the threshold.
    Greater(u64),
    /// Strictly less than the threshold.
    Less(u64),
    /// `(element & mask) == value`.
    EqMasked {
        /// Bits to inspect.
        mask: u64,
        /// Required value of the masked bits.
        value: u64,
    },
}

impl Predicate {
    /// Evaluate the predicate on one element.
    pub fn matches(self, v: u64) -> bool {
        match self {
            Predicate::Greater(t) => v > t,
            Predicate::Less(t) => v < t,
            Predicate::EqMasked { mask, value } => v & mask == value,
        }
    }
}

/// A shippable operator over a byte range of little-endian u64 elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operator {
    /// Fold every element with a [`ReduceOp`]; 8-byte result.
    Aggregate(ReduceOp),
    /// Count elements matching the predicate; 8-byte result.
    Count(Predicate),
    /// Return the matching elements, in scan order. Result size is
    /// `8 × matches` — the operator's *selectivity* decides how many bytes
    /// cross the fabric when shipped.
    Filter(Predicate),
    /// Return the `k` largest elements, descending. Result ≤ `8k` bytes.
    TopK(u32),
}

/// An operator's (partial or final) output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutput {
    /// Scalar accumulator (aggregates, counts).
    Scalar(u64),
    /// Matching elements in logical scan order (filter).
    Rows(Vec<u64>),
    /// The k largest elements seen so far, descending (top-k).
    Top(Vec<u64>),
}

/// Iterate a byte slice as little-endian u64 elements; a tail shorter than
/// 8 bytes is ignored (stripes address whole elements only).
fn elements(bytes: &[u8]) -> impl Iterator<Item = u64> + '_ {
    // chunks_exact(8) yields exactly-8-byte windows, so the fallback arm
    // of unwrap_or is unreachable and the conversion is total.
    bytes
        .chunks_exact(8)
        .map(|w| u64::from_le_bytes(w.try_into().unwrap_or([0u8; 8])))
}

impl Operator {
    /// The identity output: merging it with any partial is a no-op.
    pub fn identity(&self) -> OpOutput {
        match *self {
            Operator::Aggregate(op) => OpOutput::Scalar(op.identity()),
            Operator::Count(_) => OpOutput::Scalar(0),
            Operator::Filter(_) => OpOutput::Rows(Vec::new()),
            Operator::TopK(_) => OpOutput::Top(Vec::new()),
        }
    }

    /// Execute over one stripe's bytes.
    pub fn execute(&self, bytes: &[u8]) -> OpOutput {
        match *self {
            Operator::Aggregate(op) => OpOutput::Scalar(op.fold_bytes(bytes)),
            Operator::Count(p) => {
                OpOutput::Scalar(elements(bytes).filter(|&v| p.matches(v)).count() as u64)
            }
            Operator::Filter(p) => {
                OpOutput::Rows(elements(bytes).filter(|&v| p.matches(v)).collect())
            }
            Operator::TopK(k) => {
                let mut all: Vec<u64> = elements(bytes).collect();
                all.sort_unstable_by(|a, b| b.cmp(a));
                all.truncate(k as usize);
                OpOutput::Top(all)
            }
        }
    }

    /// Merge two partials. `a` must precede `b` in logical stripe order —
    /// filter rows concatenate, so merge order is part of the result.
    ///
    /// # Errors
    /// [`PoolError::Internal`] when the partial variants do not match the
    /// operator (a protocol bug surfaced as an error, per the no-panic
    /// contract for recoverable modules).
    pub fn merge(&self, a: OpOutput, b: OpOutput) -> Result<OpOutput, PoolError> {
        match (self, a, b) {
            (Operator::Aggregate(op), OpOutput::Scalar(x), OpOutput::Scalar(y)) => {
                Ok(OpOutput::Scalar(op.combine(x, y)))
            }
            (Operator::Count(_), OpOutput::Scalar(x), OpOutput::Scalar(y)) => {
                Ok(OpOutput::Scalar(x.wrapping_add(y)))
            }
            (Operator::Filter(_), OpOutput::Rows(mut x), OpOutput::Rows(y)) => {
                x.extend(y);
                Ok(OpOutput::Rows(x))
            }
            (Operator::TopK(k), OpOutput::Top(mut x), OpOutput::Top(y)) => {
                x.extend(y);
                x.sort_unstable_by(|a, b| b.cmp(a));
                x.truncate(*k as usize);
                Ok(OpOutput::Top(x))
            }
            _ => Err(PoolError::Internal("operator partial variant mismatch")),
        }
    }

    /// Bytes this output occupies when shipped across the fabric.
    pub fn output_bytes(&self, out: &OpOutput) -> u64 {
        match out {
            OpOutput::Scalar(_) => 8,
            OpOutput::Rows(v) | OpOutput::Top(v) => 8 * v.len() as u64,
        }
    }

    /// Plan-time estimate of the shipped result size for a stripe of
    /// `scan_bytes`, given a selectivity hint in `[0, 1]`
    /// (bytes-returned / bytes-scanned, from stats or a prior run). Only
    /// [`Operator::Filter`] is selectivity-dependent; the other operators
    /// have closed-form bounds.
    pub fn estimate_return_bytes(&self, scan_bytes: u64, selectivity: f64) -> u64 {
        let whole_elements = (scan_bytes / 8) * 8;
        match *self {
            Operator::Aggregate(_) | Operator::Count(_) => 8,
            Operator::TopK(k) => (8 * k as u64).min(whole_elements),
            Operator::Filter(_) => {
                let s = selectivity.clamp(0.0, 1.0);
                // Round to whole elements; a filter never returns more
                // than every element it scanned.
                let est = (scan_bytes as f64 * s / 8.0).round() as u64 * 8;
                est.min(whole_elements)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack(vals: &[u64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn predicates_are_total() {
        assert!(Predicate::Greater(5).matches(6));
        assert!(!Predicate::Greater(5).matches(5));
        assert!(Predicate::Less(5).matches(4));
        assert!(Predicate::EqMasked { mask: 0xff, value: 0x0a }.matches(0x990a));
        assert!(!Predicate::EqMasked { mask: 0xff, value: 0x0a }.matches(0x0b));
    }

    #[test]
    fn filter_preserves_scan_order_across_merges() {
        let op = Operator::Filter(Predicate::Greater(10));
        let a = op.execute(&pack(&[5, 20, 30]));
        let b = op.execute(&pack(&[40, 1, 50]));
        let merged = op.merge(a, b).unwrap();
        assert_eq!(merged, OpOutput::Rows(vec![20, 30, 40, 50]));
    }

    #[test]
    fn topk_truncates_and_merges() {
        let op = Operator::TopK(3);
        let a = op.execute(&pack(&[9, 1, 7, 3]));
        assert_eq!(a, OpOutput::Top(vec![9, 7, 3]));
        let b = op.execute(&pack(&[8, 2]));
        let merged = op.merge(a, b).unwrap();
        assert_eq!(merged, OpOutput::Top(vec![9, 8, 7]));
    }

    #[test]
    fn count_and_aggregate_are_scalar() {
        let data = pack(&[5, 15, 25]);
        assert_eq!(
            Operator::Count(Predicate::Greater(10)).execute(&data),
            OpOutput::Scalar(2)
        );
        assert_eq!(
            Operator::Aggregate(ReduceOp::Sum).execute(&data),
            OpOutput::Scalar(45)
        );
    }

    #[test]
    fn identities_are_neutral() {
        let data = pack(&[3, 11, 7, 19]);
        for op in [
            Operator::Aggregate(ReduceOp::Min),
            Operator::Count(Predicate::Less(10)),
            Operator::Filter(Predicate::Greater(5)),
            Operator::TopK(2),
        ] {
            let x = op.execute(&data);
            assert_eq!(op.merge(op.identity(), x.clone()).unwrap(), x);
        }
    }

    #[test]
    fn mismatched_partials_error_instead_of_panicking() {
        let e = Operator::TopK(2)
            .merge(OpOutput::Scalar(1), OpOutput::Top(vec![]))
            .unwrap_err();
        assert!(matches!(e, PoolError::Internal(_)));
    }

    #[test]
    fn return_size_estimates() {
        let op = Operator::Filter(Predicate::Greater(0));
        assert_eq!(op.estimate_return_bytes(1024, 0.0), 0);
        assert_eq!(op.estimate_return_bytes(1024, 1.0), 1024);
        assert_eq!(op.estimate_return_bytes(1024, 0.5), 512);
        // Clamped to whole elements of the scanned range.
        assert_eq!(op.estimate_return_bytes(20, 1.0), 16);
        assert_eq!(Operator::Aggregate(ReduceOp::Sum).estimate_return_bytes(1 << 30, 1.0), 8);
        assert_eq!(Operator::TopK(4).estimate_return_bytes(1 << 20, 0.0), 32);
        assert_eq!(Operator::TopK(100).estimate_return_bytes(24, 1.0), 24);
    }

    #[test]
    fn unaligned_tails_are_ignored() {
        let mut data = pack(&[42, 99]);
        data.extend_from_slice(&[1, 2, 3]); // 3-byte tail
        assert_eq!(
            Operator::Count(Predicate::Greater(0)).execute(&data),
            OpOutput::Scalar(2)
        );
    }
}
