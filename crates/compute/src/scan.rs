//! Multi-core streaming scans over pool memory.
//!
//! The paper's microbenchmark (§4.1) is "one server computes the sum of a
//! vector using 14 cores, where each core sums part of the vector". This
//! module models that access pattern: each core owns a slice and streams it
//! in chunks, issuing the next chunk when the previous completes (closed
//! loop). Bandwidth sharing and loaded latency then emerge from the DRAM
//! and fabric models rather than being computed in closed form.

use lmp_core::prelude::*;
use lmp_fabric::{Fabric, NodeId};
use lmp_sim::prelude::*;

/// Default chunk size a core keeps in flight. 2 MiB ≈ one frame: large
/// enough to amortize per-chunk latency, small enough to interleave cores.
pub const DEFAULT_CHUNK: u64 = 2 * MIB;

/// How a multi-core scan issues work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanParams {
    /// Parallel core streams.
    pub cores: u32,
    /// Bytes per outstanding chunk.
    pub chunk: u64,
    /// Peak demand of one core (a core cannot consume memory faster than
    /// it can stream-sum it; ~12.5 GB/s is typical of the paper's Xeon
    /// generation). 14 cores × 12.5 ≈ 175 GB/s of demand, comfortably
    /// saturating both the 97 GB/s socket and any fabric link.
    pub per_core: Bandwidth,
}

impl Default for ScanParams {
    fn default() -> Self {
        ScanParams {
            cores: 14,
            chunk: DEFAULT_CHUNK,
            per_core: Bandwidth::from_gbps(12.5),
        }
    }
}

impl ScanParams {
    /// Default pacing with a specific core count.
    pub fn with_cores(cores: u32) -> Self {
        ScanParams {
            cores,
            ..Self::default()
        }
    }
}

/// Outcome of one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// When the last core finished.
    pub complete: SimTime,
    /// Bytes served locally.
    pub local_bytes: u64,
    /// Bytes that crossed the fabric.
    pub remote_bytes: u64,
}

impl ScanOutcome {
    /// Achieved bandwidth for `total` bytes starting at `start`.
    pub fn bandwidth(&self, start: SimTime) -> Bandwidth {
        Bandwidth::measured(
            self.local_bytes + self.remote_bytes,
            self.complete.saturating_duration_since(start),
        )
    }

    /// Export this scan's byte accounting into a telemetry registry,
    /// labelled with `scan` (e.g. a workload phase name).
    pub fn export_into(&self, scan: &str, reg: &mut lmp_telemetry::MetricRegistry) {
        let labels = [("scan", scan)];
        reg.fill_counter_value("scan.bytes.local", &labels, self.local_bytes);
        reg.fill_counter_value("scan.bytes.remote", &labels, self.remote_bytes);
    }
}

/// Scan `len` bytes of `seg` starting at `offset`, from `server`, with
/// `params.cores` parallel paced streams of `params.chunk`-byte accesses.
///
/// A single-stripe special case of [`scan_ranges`], sharing its wave-batched
/// issue loop.
///
/// # Errors
/// [`PoolError::InvalidRequest`] for zero cores or a zero chunk size.
#[allow(clippy::too_many_arguments)]
pub fn scan_segment(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    start: SimTime,
    server: NodeId,
    seg: SegmentId,
    offset: u64,
    len: u64,
    params: ScanParams,
) -> Result<ScanOutcome, PoolError> {
    scan_ranges(pool, fabric, start, server, &[(seg, offset, len)], params)
}

/// Scan a list of `(segment, offset, len)` ranges as one logical byte
/// stream — the shape of a vector striped across servers. Cores divide the
/// **concatenated** byte range evenly, so a core's slice may span stripes,
/// exactly like the paper's "each core sums part of the vector".
///
/// Cores that become ready at the same instant issue their chunks as one
/// scatter-gather batch ([`LogicalPool::access_batch`]): the opening wave —
/// every core's first chunk — rides one pipelined fabric stream per holder
/// instead of `cores` serialized transfers, and later waves re-form
/// whenever completions align. Pacing is per core: a core issues its next
/// chunk once its previous data has landed *and* it has finished
/// stream-summing it (closed loop).
///
/// # Errors
/// [`PoolError::InvalidRequest`] for zero cores or a zero chunk size —
/// scans run on recoverable paths, so a malformed request must surface as
/// an error rather than abort the process.
pub fn scan_ranges(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    start: SimTime,
    server: NodeId,
    ranges: &[(SegmentId, u64, u64)],
    params: ScanParams,
) -> Result<ScanOutcome, PoolError> {
    let ScanParams { cores, chunk, per_core } = params;
    if cores == 0 {
        return Err(PoolError::InvalidRequest("scan needs at least one core"));
    }
    if chunk == 0 {
        return Err(PoolError::InvalidRequest("scan needs a nonzero chunk size"));
    }
    let total: u64 = ranges.iter().map(|r| r.2).sum();
    let mut outcome = ScanOutcome {
        complete: start,
        local_bytes: 0,
        remote_bytes: 0,
    };
    if total == 0 {
        return Ok(outcome);
    }
    // Map a global byte position to (segment, offset, bytes left in
    // stripe). `None` is impossible for positions below `total` (the only
    // ones the issue loop produces) but surfaces as a typed error rather
    // than a panic: scans run on recoverable paths.
    let locate = |pos: u64| -> Option<(SegmentId, u64, u64)> {
        let mut acc = 0;
        for (seg, off, len) in ranges {
            if pos < acc + len {
                return Some((*seg, off + (pos - acc), acc + len - pos));
            }
            acc += len;
        }
        None
    };
    let per_core_len = total / cores as u64;
    let remainder = total % cores as u64;
    // Per-core state: (next issue time, core, position, bytes left). Issues
    // must be admitted in global timestamp order — the link/DRAM busy
    // trackers model FIFO resources — so cores merge through a min-heap
    // rather than each running to completion.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, u64, u64)>> =
        std::collections::BinaryHeap::new();
    let mut cursor = 0u64;
    for c in 0..cores as u64 {
        let slice = per_core_len + if c < remainder { 1 } else { 0 };
        if slice > 0 {
            heap.push(std::cmp::Reverse((start, c, cursor, slice)));
        }
        cursor += slice;
    }
    while let Some(std::cmp::Reverse((now, c, pos, left))) = heap.pop() {
        // Gather the wave: every core ready at exactly `now` scans together.
        let mut wave = vec![(c, pos, left)];
        while let Some(&std::cmp::Reverse((t, c2, pos2, left2))) = heap.peek() {
            if t != now {
                break;
            }
            heap.pop();
            wave.push((c2, pos2, left2));
        }
        let mut ops = Vec::with_capacity(wave.len());
        let mut sizes = Vec::with_capacity(wave.len());
        for &(_, pos, left) in &wave {
            let (seg, seg_off, stripe_left) = locate(pos)
                .ok_or(PoolError::Internal("scan position beyond vector end"))?;
            let this = left.min(chunk).min(stripe_left);
            ops.push(BatchOp::read(LogicalAddr::new(seg, seg_off), this));
            sizes.push(this);
        }
        let batch = pool.access_batch(fabric, now, server, &ops)?;
        outcome.local_bytes += batch.local_bytes;
        outcome.remote_bytes += batch.remote_bytes;
        outcome.complete = outcome.complete.max(batch.complete);
        for (i, &(c, pos, left)) in wave.iter().enumerate() {
            let this = sizes[i];
            if left > this {
                // Closed loop with pacing: the core issues its next chunk
                // once the data lands *and* it has finished consuming this
                // chunk.
                let next = batch.ops[i]
                    .complete
                    .max(now + per_core.time_to_transfer(this));
                heap.push(std::cmp::Reverse((next, c, pos + this, left - this)));
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup(shared_frames: u64) -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 4,
            capacity_per_server: (shared_frames + 2) * FRAME_BYTES,
            shared_per_server: shared_frames * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        };
        (
            LogicalPool::new(cfg),
            Fabric::new(LinkProfile::link1(), 4),
        )
    }

    #[test]
    fn local_scan_achieves_dram_bandwidth() {
        let (mut p, mut f) = setup(64);
        let len = 64 * FRAME_BYTES; // 128 MiB
        let seg = p.alloc(len, Placement::On(NodeId(0))).unwrap();
        let out = scan_segment(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), seg, 0, len, ScanParams::default(),
        )
        .unwrap();
        assert_eq!(out.remote_bytes, 0);
        let bw = out.bandwidth(SimTime::ZERO);
        assert!(
            (bw.as_gbps() - 97.0).abs() < 5.0,
            "local scan got {bw}, want ~97GB/s"
        );
    }

    #[test]
    fn remote_scan_capped_by_link() {
        let (mut p, mut f) = setup(64);
        let len = 64 * FRAME_BYTES;
        let seg = p.alloc(len, Placement::On(NodeId(1))).unwrap();
        let out = scan_segment(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), seg, 0, len, ScanParams::default(),
        )
        .unwrap();
        assert_eq!(out.local_bytes, 0);
        let bw = out.bandwidth(SimTime::ZERO);
        assert!(
            (bw.as_gbps() - 21.0).abs() < 2.0,
            "remote scan got {bw}, want ~21GB/s (Link1)"
        );
    }

    #[test]
    fn more_cores_do_not_exceed_resource_caps() {
        let (mut p, mut f) = setup(64);
        let len = 32 * FRAME_BYTES;
        let seg = p.alloc(len, Placement::On(NodeId(0))).unwrap();
        let few = scan_segment(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), seg, 0, len, ScanParams::with_cores(2),
        )
        .unwrap();
        let bw_few = few.bandwidth(SimTime::ZERO);
        let (mut p2, mut f2) = setup(64);
        let seg2 = p2.alloc(len, Placement::On(NodeId(0))).unwrap();
        let many = scan_segment(
            &mut p2, &mut f2, SimTime::ZERO, NodeId(0), seg2, 0, len, ScanParams::with_cores(28),
        )
        .unwrap();
        let bw_many = many.bandwidth(SimTime::ZERO);
        assert!(bw_many.as_gbps() <= 100.0, "exceeded DRAM cap: {bw_many}");
        // Both configurations saturate DRAM; allow a small tolerance for
        // pipeline-drain effects at the tail of the scan.
        assert!(
            bw_many.as_gbps() >= bw_few.as_gbps() * 0.95,
            "more cores much slower: {bw_many} vs {bw_few}"
        );
    }

    #[test]
    fn ranged_scan_mixes_local_and_remote() {
        let (mut p, mut f) = setup(32);
        let local = p.alloc(8 * FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let remote = p.alloc(24 * FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        let ranges = [
            (local, 0, 8 * FRAME_BYTES),
            (remote, 0, 24 * FRAME_BYTES),
        ];
        let out = scan_ranges(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &ranges, ScanParams::default(),
        )
        .unwrap();
        assert_eq!(out.local_bytes, 8 * FRAME_BYTES);
        assert_eq!(out.remote_bytes, 24 * FRAME_BYTES);
        // 1/4 local at 97, 3/4 remote at 21: blended must be above pure
        // remote and below pure local.
        let bw = out.bandwidth(SimTime::ZERO).as_gbps();
        assert!(bw > 21.0 && bw < 97.0, "blended bandwidth {bw}");
    }

    #[test]
    fn ranged_scan_empty_is_instant() {
        let (mut p, mut f) = setup(4);
        let out = scan_ranges(&mut p, &mut f, SimTime::ZERO, NodeId(0), &[], ScanParams::with_cores(4)).unwrap();
        assert_eq!(out.complete, SimTime::ZERO);
        assert_eq!(out.local_bytes + out.remote_bytes, 0);
    }

    #[test]
    fn zero_cores_or_chunk_is_a_typed_error() {
        let (mut p, mut f) = setup(4);
        let seg = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let e = scan_segment(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), seg, 0, FRAME_BYTES,
            ScanParams { cores: 0, ..ScanParams::default() },
        )
        .unwrap_err();
        assert!(matches!(e, PoolError::InvalidRequest(_)), "{e:?}");
        let e = scan_segment(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), seg, 0, FRAME_BYTES,
            ScanParams { chunk: 0, ..ScanParams::default() },
        )
        .unwrap_err();
        assert!(matches!(e, PoolError::InvalidRequest(_)), "{e:?}");
    }

    #[test]
    fn byte_accounting_is_exact() {
        let (mut p, mut f) = setup(16);
        let len = 5 * FRAME_BYTES + 12345;
        let seg = p.alloc(len, Placement::On(NodeId(2))).unwrap();
        let out = scan_segment(
            &mut p, &mut f, SimTime::ZERO, NodeId(2), seg, 0, len, ScanParams { cores: 3, chunk: 1_000_000, ..ScanParams::default() },
        )
        .unwrap();
        assert_eq!(out.local_bytes + out.remote_bytes, len);
    }
}
