// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-compute — near-memory computing on logical pools
//!
//! §4.4's third benefit: in an LMP, every byte of pooled memory sits next
//! to a server's processors, so computation can ship to the data instead of
//! data shipping to the computation. This crate provides:
//!
//! * [`scan`] — the multi-core closed-loop streaming scan that models the
//!   paper's vector-aggregation microbenchmark.
//! * [`placement::DistVector`] — buffers striped across servers (data
//!   placement, the first incast remedy).
//! * [`ship`] — pull-vs-ship distributed reductions with exact byte
//!   accounting, plus materialized-value computation for correctness tests.
//! * [`operator`] — shippable operator descriptions (filter, aggregate,
//!   count, top-k) whose result size depends on the data.
//! * [`planner`] — the cost-based per-segment ship-vs-fetch planner, fed
//!   by live fabric backlog, holder memory pressure, and selectivity.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod operator;
pub mod placement;
pub mod planner;
pub mod scan;
pub mod ship;
pub mod task;

pub use operator::{OpOutput, Operator, Predicate};
pub use placement::DistVector;
pub use planner::{fetch_reference, Choice, Plan, Planner, PushdownOutcome, SegmentPlan};
pub use scan::{scan_ranges, scan_segment, ScanOutcome, ScanParams, DEFAULT_CHUNK};
pub use ship::{reduce_timed, reduce_value, run_task, ReduceOp, ReduceOutcome, Strategy};
pub use task::{Partial, Task};
