//! Compute shipping (§4.4 "Near-memory Computing").
//!
//! Two strategies for reducing over a distributed vector:
//!
//! * **Pull** — the requesting server scans every stripe itself; remote
//!   stripes cross the fabric (this is what a physical pool always does,
//!   since the pool has no processors).
//! * **Ship** — each holding server scans its own stripe at local DRAM
//!   speed, in parallel, and only the 8-byte partial results cross the
//!   fabric. "The end result is an even larger performance improvement"
//!   (§4.4) — the `nearmem` bench quantifies it.

use crate::placement::DistVector;
use crate::scan::{scan_segment, ScanOutcome, ScanParams};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, NodeId};
use lmp_sim::prelude::*;

/// Reduction operators over u64 little-endian elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum of all elements.
    Sum,
    /// Minimum element (u64::MAX when empty).
    Min,
    /// Maximum element (0 when empty).
    Max,
}

impl ReduceOp {
    /// Identity element.
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
        }
    }

    /// Combine two partial results.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Fold a byte slice as little-endian u64 elements (the tail shorter
    /// than 8 bytes is ignored, matching an element-aligned vector).
    // chunks_exact(8) yields exactly-8-byte windows; the conversion is total.
    #[allow(clippy::expect_used)]
    pub fn fold_bytes(self, bytes: &[u8]) -> u64 {
        let mut acc = self.identity();
        for w in bytes.chunks_exact(8) {
            let v = u64::from_le_bytes(w.try_into().expect("chunks_exact(8)"));
            acc = self.combine(acc, v);
        }
        acc
    }
}

/// Execution strategy for a distributed reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The requester pulls all stripes and reduces them itself.
    Pull,
    /// The reduction ships to each stripe's holder; partials return.
    Ship,
}

/// Timing outcome of a distributed reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceOutcome {
    /// When the final result is available at the requester.
    pub complete: SimTime,
    /// Bytes that crossed the fabric (data + shipped results).
    pub fabric_bytes: u64,
    /// Bytes scanned at local speed by their holder.
    pub local_bytes: u64,
}

impl ReduceOutcome {
    /// Effective scan bandwidth for `total` vector bytes from `start`.
    pub fn bandwidth(&self, total: u64, start: SimTime) -> Bandwidth {
        Bandwidth::measured(total, self.complete.saturating_duration_since(start))
    }
}

/// Time a distributed reduction with the given strategy.
///
/// `params` applies per participating server.
pub fn reduce_timed(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    start: SimTime,
    requester: NodeId,
    vector: &DistVector,
    strategy: Strategy,
    params: ScanParams,
) -> Result<ReduceOutcome, PoolError> {
    let mut outcome = ReduceOutcome {
        complete: start,
        fabric_bytes: 0,
        local_bytes: 0,
    };
    match strategy {
        Strategy::Pull => {
            for (_, seg, len) in &vector.stripes {
                let s: ScanOutcome =
                    scan_segment(pool, fabric, start, requester, *seg, 0, *len, params)?;
                outcome.complete = outcome.complete.max(s.complete);
                outcome.fabric_bytes += s.remote_bytes;
                outcome.local_bytes += s.local_bytes;
            }
        }
        Strategy::Ship => {
            for (holder, seg, len) in &vector.stripes {
                // The holder scans its stripe locally, in parallel with the
                // other holders.
                let s = scan_segment(pool, fabric, start, *holder, *seg, 0, *len, params)?;
                outcome.local_bytes += s.local_bytes;
                debug_assert_eq!(s.remote_bytes, 0, "shipped scan must be local");
                // The 8-byte partial travels back to the requester.
                let done = if *holder == requester {
                    s.complete
                } else {
                    outcome.fabric_bytes += 8;
                    fabric.write(s.complete, *holder, requester, 8).complete
                };
                outcome.complete = outcome.complete.max(done);
            }
        }
    }
    Ok(outcome)
}

/// Run an arbitrary shippable [`Task`](crate::task::Task) over a
/// distributed vector: timing via the scan engine, the result from
/// materialized stripe contents. With [`Strategy::Ship`] only each task's
/// fixed-size partial crosses the fabric.
#[allow(clippy::too_many_arguments)]
pub fn run_task(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    start: SimTime,
    requester: NodeId,
    vector: &DistVector,
    task: crate::task::Task,
    strategy: Strategy,
    params: ScanParams,
) -> Result<(crate::task::Partial, ReduceOutcome), PoolError> {
    let mut outcome = ReduceOutcome {
        complete: start,
        fabric_bytes: 0,
        local_bytes: 0,
    };
    let mut acc = task.identity();
    let mut element_base = 0u64;
    for (holder, seg, len) in &vector.stripes {
        let scanner = match strategy {
            Strategy::Pull => requester,
            Strategy::Ship => *holder,
        };
        let s = scan_segment(pool, fabric, start, scanner, *seg, 0, *len, params)?;
        outcome.local_bytes += s.local_bytes;
        let bytes = pool.read_bytes(LogicalAddr::new(*seg, 0), *len)?;
        let partial = task.execute(&bytes, element_base);
        element_base += len / 8;
        let done = match strategy {
            Strategy::Pull => {
                outcome.fabric_bytes += s.remote_bytes;
                s.complete
            }
            Strategy::Ship if *holder != requester => {
                let pb = task.partial_bytes();
                outcome.fabric_bytes += pb;
                fabric.write(s.complete, *holder, requester, pb).complete
            }
            Strategy::Ship => s.complete,
        };
        outcome.complete = outcome.complete.max(done);
        acc = task.combine(acc, partial);
    }
    Ok((acc, outcome))
}

/// Compute the actual reduction value from materialized stripe contents
/// (correctness path, no timing).
pub fn reduce_value(
    pool: &LogicalPool,
    vector: &DistVector,
    op: ReduceOp,
) -> Result<u64, PoolError> {
    let mut acc = op.identity();
    for (_, seg, len) in &vector.stripes {
        let bytes = pool.read_bytes(LogicalAddr::new(*seg, 0), *len)?;
        acc = op.combine(acc, op.fold_bytes(&bytes));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup(shared_frames: u64) -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 4,
            capacity_per_server: (shared_frames + 2) * FRAME_BYTES,
            shared_per_server: shared_frames * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 4))
    }

    #[test]
    fn op_folding() {
        let mut bytes = Vec::new();
        for v in [3u64, 9, 1] {
            bytes.extend(v.to_le_bytes());
        }
        assert_eq!(ReduceOp::Sum.fold_bytes(&bytes), 13);
        assert_eq!(ReduceOp::Min.fold_bytes(&bytes), 1);
        assert_eq!(ReduceOp::Max.fold_bytes(&bytes), 9);
        assert_eq!(ReduceOp::Sum.fold_bytes(&[]), 0);
    }

    #[test]
    fn value_matches_reference_for_both_strategies() {
        let (mut p, _) = setup(16);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &servers).unwrap();
        // Fill each stripe with known values.
        let mut reference = 0u64;
        for (i, (_, seg, _)) in v.stripes.iter().enumerate() {
            let vals: Vec<u64> = (0..100).map(|k| (i as u64 + 1) * 1000 + k).collect();
            let mut bytes = Vec::new();
            for x in &vals {
                bytes.extend(x.to_le_bytes());
                reference = reference.wrapping_add(*x);
            }
            p.write_bytes(LogicalAddr::new(*seg, 0), &bytes).unwrap();
            // Rest of the stripe is zero, contributing nothing to Sum.
        }
        assert_eq!(reduce_value(&p, &v, ReduceOp::Sum).unwrap(), reference);
    }

    #[test]
    fn shipping_beats_pulling_on_distributed_data() {
        let (mut p, mut f) = setup(64);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let len = 64 * FRAME_BYTES;
        let v = DistVector::stripe_even(&mut p, len, &servers).unwrap();

        let pull = reduce_timed(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Strategy::Pull, ScanParams::default(),
        )
        .unwrap();
        let (mut p2, mut f2) = setup(64);
        let v2 = DistVector::stripe_even(&mut p2, len, &servers).unwrap();
        let ship = reduce_timed(
            &mut p2, &mut f2, SimTime::ZERO, NodeId(0), &v2, Strategy::Ship, ScanParams::default(),
        )
        .unwrap();

        assert!(
            ship.complete < pull.complete,
            "shipping {} should beat pulling {}",
            ship.complete,
            pull.complete
        );
        // Shipping moves only partial results; pulling moves 3/4 of data.
        assert!(ship.fabric_bytes <= 3 * 8);
        assert_eq!(pull.fabric_bytes, len * 3 / 4);
    }

    #[test]
    fn ship_on_single_local_stripe_equals_pull() {
        let (mut p, mut f) = setup(16);
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &[NodeId(0)]).unwrap();
        let pull = reduce_timed(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Strategy::Pull, ScanParams { cores: 4, chunk: MIB, ..ScanParams::default() },
        )
        .unwrap();
        let (mut p2, mut f2) = setup(16);
        let v2 = DistVector::stripe_even(&mut p2, 4 * FRAME_BYTES, &[NodeId(0)]).unwrap();
        let ship = reduce_timed(
            &mut p2, &mut f2, SimTime::ZERO, NodeId(0), &v2, Strategy::Ship, ScanParams { cores: 4, chunk: MIB, ..ScanParams::default() },
        )
        .unwrap();
        assert_eq!(pull.complete, ship.complete);
        assert_eq!(ship.fabric_bytes, 0);
    }

    #[test]
    fn run_task_agrees_across_strategies_and_ships_small_partials() {
        use crate::task::{Partial, Task};
        let (mut p, mut f) = setup(16);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &servers).unwrap();
        // Put a needle in stripe 2 and some counted values everywhere.
        for (i, (_, seg, _)) in v.stripes.iter().enumerate() {
            let vals = pack(&[i as u64, 100 + i as u64]);
            p.write_bytes(LogicalAddr::new(*seg, 0), &vals).unwrap();
        }
        let needle_stripe_elems = FRAME_BYTES / 8;
        for task in [
            Task::CountGreater(99),
            Task::FindFirst(102),
            Task::Reduce(ReduceOp::Max),
        ] {
            let (pull_val, pull) = run_task(
                &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, task, Strategy::Pull,
                ScanParams::with_cores(4),
            )
            .unwrap();
            let (ship_val, ship) = run_task(
                &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, task, Strategy::Ship,
                ScanParams::with_cores(4),
            )
            .unwrap();
            assert_eq!(pull_val, ship_val, "{task:?}");
            assert!(ship.fabric_bytes < pull.fabric_bytes, "{task:?}");
        }
        // Spot-check values.
        let (found, _) = run_task(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Task::FindFirst(102),
            Strategy::Ship, ScanParams::with_cores(4),
        )
        .unwrap();
        assert_eq!(found, Partial::Found(Some(2 * needle_stripe_elems + 1)));
        let (count, _) = run_task(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Task::CountGreater(99),
            Strategy::Ship, ScanParams::with_cores(4),
        )
        .unwrap();
        assert_eq!(count, Partial::Scalar(4));
    }

    fn pack(vals: &[u64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn shipped_scan_bandwidth_scales_with_servers() {
        // Aggregate shipped bandwidth approaches servers × local DRAM.
        let (mut p, mut f) = setup(64);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let len = 128 * FRAME_BYTES;
        let v = DistVector::stripe_even(&mut p, len, &servers).unwrap();
        let ship = reduce_timed(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Strategy::Ship, ScanParams::default(),
        )
        .unwrap();
        let bw = ship.bandwidth(len, SimTime::ZERO);
        assert!(
            bw.as_gbps() > 300.0,
            "aggregate near-memory bandwidth only {bw}"
        );
    }
}
