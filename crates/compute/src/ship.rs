//! Compute shipping (§4.4 "Near-memory Computing").
//!
//! Two strategies for reducing over a distributed vector:
//!
//! * **Pull** — the requesting server scans every stripe itself; remote
//!   stripes cross the fabric (this is what a physical pool always does,
//!   since the pool has no processors). All stripes share one
//!   [`scan_ranges`] call, so the requester's core budget is a property of
//!   the machine, not of the stripe count.
//! * **Ship** — each holding server scans its own stripes at local DRAM
//!   speed, in parallel, and only the small partial results cross the
//!   fabric. "The end result is an even larger performance improvement"
//!   (§4.4) — the `nearmem` bench quantifies it.
//!
//! Holders are re-resolved against the **live** pool mapping on every run:
//! a `DistVector` records where stripes lived at creation, but balancer
//! migrations and post-crash promotions move segments. Each relocation is
//! counted in the `compute.stale_holder` telemetry counter and in
//! [`ReduceOutcome::stale_holders`], and any bytes a supposedly-local
//! shipped scan still pulls across the fabric are charged honestly.

use crate::placement::DistVector;
use crate::scan::{scan_ranges, ScanParams};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, FabricError, NodeId};
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Reduction operators over u64 little-endian elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum of all elements.
    Sum,
    /// Minimum element (u64::MAX when empty).
    Min,
    /// Maximum element (0 when empty).
    Max,
}

impl ReduceOp {
    /// Identity element.
    pub fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
        }
    }

    /// Combine two partial results.
    pub fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Fold a byte slice as little-endian u64 elements (the tail shorter
    /// than 8 bytes is ignored, matching an element-aligned vector).
    pub fn fold_bytes(self, bytes: &[u8]) -> u64 {
        let mut acc = self.identity();
        for w in bytes.chunks_exact(8) {
            // chunks_exact(8) yields exactly-8-byte windows, so the
            // fallback arm is unreachable and the conversion is total.
            let v = u64::from_le_bytes(w.try_into().unwrap_or([0u8; 8]));
            acc = self.combine(acc, v);
        }
        acc
    }
}

/// Execution strategy for a distributed reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The requester pulls all stripes and reduces them itself.
    Pull,
    /// The reduction ships to each stripe's holder; partials return.
    Ship,
}

/// Timing outcome of a distributed reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceOutcome {
    /// When the final result is available at the requester.
    pub complete: SimTime,
    /// Bytes that crossed the fabric (data + shipped results).
    pub fabric_bytes: u64,
    /// Bytes scanned at local speed by their holder.
    pub local_bytes: u64,
    /// Stripes whose live holder differed from the one recorded in the
    /// `DistVector` (migration or promotion since creation).
    pub stale_holders: u32,
}

impl ReduceOutcome {
    /// Effective scan bandwidth for `total` vector bytes from `start`.
    pub fn bandwidth(&self, total: u64, start: SimTime) -> Bandwidth {
        Bandwidth::measured(total, self.complete.saturating_duration_since(start))
    }
}

/// Live `(holder, segment, len)` stripes in logical order.
pub(crate) type LiveStripes = Vec<(NodeId, SegmentId, u64)>;

/// Resolve every stripe of `vector` against the live pool mapping,
/// bumping the `compute.stale_holder` counter for each relocation.
/// Returns the live `(holder, segment, len)` stripes in logical order plus
/// the relocation count.
///
/// # Errors
/// [`PoolError::UnknownSegment`] when a stripe's segment no longer exists.
pub(crate) fn live_stripes(
    pool: &mut LogicalPool,
    vector: &DistVector,
) -> Result<(LiveStripes, u32), PoolError> {
    let mut out = Vec::with_capacity(vector.stripes.len());
    let mut stale = 0u32;
    for (recorded, seg, len) in &vector.stripes {
        let live = pool
            .holder_of(*seg)
            .ok_or(PoolError::UnknownSegment(*seg))?;
        if live != *recorded {
            stale += 1;
            if let Some(t) = pool.telemetry_mut() {
                t.note_stale_holder();
            }
        }
        out.push((live, *seg, *len));
    }
    Ok((out, stale))
}

/// Ship `bytes` of results from `holder` back to `requester` at `when`.
pub(crate) fn ship_result(
    fabric: &mut Fabric,
    when: SimTime,
    holder: NodeId,
    requester: NodeId,
    bytes: u64,
) -> Result<SimTime, PoolError> {
    fabric
        .try_write(when, holder, requester, bytes)
        .map(|c| c.complete)
        .map_err(|e| match e {
            FabricError::RequesterDown(n) => PoolError::ServerDown(n),
            FabricError::HolderDown(n) => PoolError::ServerDown(n),
            FabricError::Contract(why) => PoolError::Internal(why),
        })
}

/// Group live stripes by holder, preserving logical order within each
/// holder. `BTreeMap` keeps the holder iteration order deterministic.
pub(crate) fn group_by_holder(
    stripes: &[(NodeId, SegmentId, u64)],
) -> BTreeMap<NodeId, Vec<(SegmentId, u64, u64)>> {
    let mut groups: BTreeMap<NodeId, Vec<(SegmentId, u64, u64)>> = BTreeMap::new();
    for (holder, seg, len) in stripes {
        groups.entry(*holder).or_default().push((*seg, 0, *len));
    }
    groups
}

/// Time a distributed reduction with the given strategy.
///
/// `params` applies per participating server: a Pull shares one core
/// budget across every stripe, a Ship gives each *holder* (not each
/// stripe) its own.
pub fn reduce_timed(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    start: SimTime,
    requester: NodeId,
    vector: &DistVector,
    strategy: Strategy,
    params: ScanParams,
) -> Result<ReduceOutcome, PoolError> {
    let (stripes, stale) = live_stripes(pool, vector)?;
    let mut outcome = ReduceOutcome {
        complete: start,
        fabric_bytes: 0,
        local_bytes: 0,
        stale_holders: stale,
    };
    match strategy {
        Strategy::Pull => {
            // One scan over the concatenated stripes: the requester's
            // cores divide the whole vector, not each stripe.
            let ranges: Vec<(SegmentId, u64, u64)> =
                stripes.iter().map(|(_, seg, len)| (*seg, 0, *len)).collect();
            let s = scan_ranges(pool, fabric, start, requester, &ranges, params)?;
            outcome.complete = outcome.complete.max(s.complete);
            outcome.fabric_bytes += s.remote_bytes;
            outcome.local_bytes += s.local_bytes;
        }
        Strategy::Ship => {
            for (holder, ranges) in group_by_holder(&stripes) {
                // The holder scans its stripes locally, in parallel with
                // the other holders. If a segment moved mid-run the scan's
                // remote bytes are charged honestly rather than asserted
                // away.
                let s = scan_ranges(pool, fabric, start, holder, &ranges, params)?;
                outcome.local_bytes += s.local_bytes;
                outcome.fabric_bytes += s.remote_bytes;
                // One 8-byte combined partial per holder travels back.
                let done = if holder == requester {
                    s.complete
                } else {
                    outcome.fabric_bytes += 8;
                    ship_result(fabric, s.complete, holder, requester, 8)?
                };
                outcome.complete = outcome.complete.max(done);
            }
        }
    }
    Ok(outcome)
}

/// Run an arbitrary shippable [`Task`](crate::task::Task) over a
/// distributed vector: timing via the scan engine, the result from
/// materialized stripe contents. With [`Strategy::Ship`] only each
/// holder's fixed-size partial crosses the fabric.
#[allow(clippy::too_many_arguments)]
pub fn run_task(
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    start: SimTime,
    requester: NodeId,
    vector: &DistVector,
    task: crate::task::Task,
    strategy: Strategy,
    params: ScanParams,
) -> Result<(crate::task::Partial, ReduceOutcome), PoolError> {
    let (stripes, stale) = live_stripes(pool, vector)?;
    let mut outcome = ReduceOutcome {
        complete: start,
        fabric_bytes: 0,
        local_bytes: 0,
        stale_holders: stale,
    };
    // The result is strategy-independent: fold stripes in logical order.
    // A stripe addresses whole elements; a non-8-aligned length has an
    // ignored tail that still occupies the stripe, so the next stripe's
    // first element index rounds *up* — `len / 8` would drift every later
    // stripe and break position-bearing tasks like FindFirst.
    let mut acc = task.identity();
    let mut element_base = 0u64;
    for (_, seg, len) in &stripes {
        let bytes = pool.read_bytes(LogicalAddr::new(*seg, 0), *len)?;
        acc = task.combine(acc, task.execute(&bytes, element_base));
        element_base += len.div_ceil(8);
    }
    match strategy {
        Strategy::Pull => {
            let ranges: Vec<(SegmentId, u64, u64)> =
                stripes.iter().map(|(_, seg, len)| (*seg, 0, *len)).collect();
            let s = scan_ranges(pool, fabric, start, requester, &ranges, params)?;
            outcome.complete = outcome.complete.max(s.complete);
            outcome.fabric_bytes += s.remote_bytes;
            outcome.local_bytes += s.local_bytes;
        }
        Strategy::Ship => {
            for (holder, ranges) in group_by_holder(&stripes) {
                let s = scan_ranges(pool, fabric, start, holder, &ranges, params)?;
                outcome.local_bytes += s.local_bytes;
                outcome.fabric_bytes += s.remote_bytes;
                let done = if holder == requester {
                    s.complete
                } else {
                    let pb = task.partial_bytes();
                    outcome.fabric_bytes += pb;
                    ship_result(fabric, s.complete, holder, requester, pb)?
                };
                outcome.complete = outcome.complete.max(done);
            }
        }
    }
    Ok((acc, outcome))
}

/// Compute the actual reduction value from materialized stripe contents
/// (correctness path, no timing).
pub fn reduce_value(
    pool: &LogicalPool,
    vector: &DistVector,
    op: ReduceOp,
) -> Result<u64, PoolError> {
    let mut acc = op.identity();
    for (_, seg, len) in &vector.stripes {
        let bytes = pool.read_bytes(LogicalAddr::new(*seg, 0), *len)?;
        acc = op.combine(acc, op.fold_bytes(&bytes));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_ranges;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup(shared_frames: u64) -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 4,
            capacity_per_server: (shared_frames + 2) * FRAME_BYTES,
            shared_per_server: shared_frames * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 4))
    }

    #[test]
    fn op_folding() {
        let mut bytes = Vec::new();
        for v in [3u64, 9, 1] {
            bytes.extend(v.to_le_bytes());
        }
        assert_eq!(ReduceOp::Sum.fold_bytes(&bytes), 13);
        assert_eq!(ReduceOp::Min.fold_bytes(&bytes), 1);
        assert_eq!(ReduceOp::Max.fold_bytes(&bytes), 9);
        assert_eq!(ReduceOp::Sum.fold_bytes(&[]), 0);
    }

    #[test]
    fn value_matches_reference_for_both_strategies() {
        let (mut p, _) = setup(16);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &servers).unwrap();
        // Fill each stripe with known values.
        let mut reference = 0u64;
        for (i, (_, seg, _)) in v.stripes.iter().enumerate() {
            let vals: Vec<u64> = (0..100).map(|k| (i as u64 + 1) * 1000 + k).collect();
            let mut bytes = Vec::new();
            for x in &vals {
                bytes.extend(x.to_le_bytes());
                reference = reference.wrapping_add(*x);
            }
            p.write_bytes(LogicalAddr::new(*seg, 0), &bytes).unwrap();
            // Rest of the stripe is zero, contributing nothing to Sum.
        }
        assert_eq!(reduce_value(&p, &v, ReduceOp::Sum).unwrap(), reference);
    }

    #[test]
    fn shipping_beats_pulling_on_distributed_data() {
        let (mut p, mut f) = setup(64);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let len = 64 * FRAME_BYTES;
        let v = DistVector::stripe_even(&mut p, len, &servers).unwrap();

        let pull = reduce_timed(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Strategy::Pull, ScanParams::default(),
        )
        .unwrap();
        let (mut p2, mut f2) = setup(64);
        let v2 = DistVector::stripe_even(&mut p2, len, &servers).unwrap();
        let ship = reduce_timed(
            &mut p2, &mut f2, SimTime::ZERO, NodeId(0), &v2, Strategy::Ship, ScanParams::default(),
        )
        .unwrap();

        assert!(
            ship.complete < pull.complete,
            "shipping {} should beat pulling {}",
            ship.complete,
            pull.complete
        );
        // Shipping moves only partial results; pulling moves 3/4 of data.
        assert!(ship.fabric_bytes <= 3 * 8);
        assert_eq!(pull.fabric_bytes, len * 3 / 4);
        assert_eq!(pull.stale_holders, 0);
        assert_eq!(ship.stale_holders, 0);
    }

    #[test]
    fn ship_on_single_local_stripe_equals_pull() {
        let (mut p, mut f) = setup(16);
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &[NodeId(0)]).unwrap();
        let pull = reduce_timed(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Strategy::Pull, ScanParams { cores: 4, chunk: MIB, ..ScanParams::default() },
        )
        .unwrap();
        let (mut p2, mut f2) = setup(16);
        let v2 = DistVector::stripe_even(&mut p2, 4 * FRAME_BYTES, &[NodeId(0)]).unwrap();
        let ship = reduce_timed(
            &mut p2, &mut f2, SimTime::ZERO, NodeId(0), &v2, Strategy::Ship, ScanParams { cores: 4, chunk: MIB, ..ScanParams::default() },
        )
        .unwrap();
        assert_eq!(pull.complete, ship.complete);
        assert_eq!(ship.fabric_bytes, 0);
    }

    #[test]
    fn pull_core_budget_is_shared_across_stripes() {
        // Regression for the over-provisioning bug: a 4-stripe pull used to
        // issue 4 independent scans, each with a fresh `params.cores`
        // budget. The pull must now cost exactly what one scan over the
        // concatenated ranges costs.
        let (mut p, mut f) = setup(32);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 16 * FRAME_BYTES, &servers).unwrap();
        let params = ScanParams::with_cores(4);
        let pull = reduce_timed(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Strategy::Pull, params,
        )
        .unwrap();

        let (mut p2, mut f2) = setup(32);
        let v2 = DistVector::stripe_even(&mut p2, 16 * FRAME_BYTES, &servers).unwrap();
        let ranges: Vec<(SegmentId, u64, u64)> =
            v2.stripes.iter().map(|(_, seg, len)| (*seg, 0, *len)).collect();
        let reference = scan_ranges(
            &mut p2, &mut f2, SimTime::ZERO, NodeId(0), &ranges, params,
        )
        .unwrap();
        assert_eq!(pull.complete, reference.complete);
        assert_eq!(pull.fabric_bytes, reference.remote_bytes);
    }

    #[test]
    fn stale_holder_is_resolved_and_counted() {
        let (mut p, mut f) = setup(16);
        p.attach_telemetry();
        let servers = [NodeId(1), NodeId(2)];
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &servers).unwrap();
        // Move the first stripe after the vector recorded its holder —
        // the balancer/recovery race the planner must survive.
        let (_, seg, _) = v.stripes[0];
        lmp_core::migrate::migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(3))
            .unwrap();
        let start = SimTime::from_nanos(10_000_000);
        let ship = reduce_timed(
            &mut p, &mut f, start, NodeId(0), &v, Strategy::Ship, ScanParams::with_cores(4),
        )
        .unwrap();
        assert_eq!(ship.stale_holders, 1);
        // The relocated stripe scanned locally on its *new* holder: only
        // the two 8-byte partials crossed the fabric.
        assert_eq!(ship.fabric_bytes, 2 * 8);
        assert_eq!(p.telemetry().unwrap().stale_holders(), 1);
        // A second run counts the (still-stale) record again.
        let again = reduce_timed(
            &mut p, &mut f, start, NodeId(0), &v, Strategy::Ship, ScanParams::with_cores(4),
        )
        .unwrap();
        assert_eq!(again.stale_holders, 1);
        assert_eq!(p.telemetry().unwrap().stale_holders(), 2);
    }

    #[test]
    fn run_task_agrees_across_strategies_and_ships_small_partials() {
        use crate::task::{Partial, Task};
        let (mut p, mut f) = setup(16);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 4 * FRAME_BYTES, &servers).unwrap();
        // Put a needle in stripe 2 and some counted values everywhere.
        for (i, (_, seg, _)) in v.stripes.iter().enumerate() {
            let vals = pack(&[i as u64, 100 + i as u64]);
            p.write_bytes(LogicalAddr::new(*seg, 0), &vals).unwrap();
        }
        let needle_stripe_elems = FRAME_BYTES / 8;
        for task in [
            Task::CountGreater(99),
            Task::FindFirst(102),
            Task::Reduce(ReduceOp::Max),
        ] {
            let (pull_val, pull) = run_task(
                &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, task, Strategy::Pull,
                ScanParams::with_cores(4),
            )
            .unwrap();
            let (ship_val, ship) = run_task(
                &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, task, Strategy::Ship,
                ScanParams::with_cores(4),
            )
            .unwrap();
            assert_eq!(pull_val, ship_val, "{task:?}");
            assert!(ship.fabric_bytes < pull.fabric_bytes, "{task:?}");
        }
        // Spot-check values.
        let (found, _) = run_task(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Task::FindFirst(102),
            Strategy::Ship, ScanParams::with_cores(4),
        )
        .unwrap();
        assert_eq!(found, Partial::Found(Some(2 * needle_stripe_elems + 1)));
        let (count, _) = run_task(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Task::CountGreater(99),
            Strategy::Ship, ScanParams::with_cores(4),
        )
        .unwrap();
        assert_eq!(count, Partial::Scalar(4));
    }

    #[test]
    fn unaligned_stripes_keep_global_element_indices() {
        use crate::task::{Partial, Task};
        // Regression for the `len / 8` drift: a 20-byte stripe holds 2
        // whole elements plus a 4-byte ignored tail that still occupies
        // the stripe, so the next stripe starts at element index 3
        // (div_ceil), not 2 (floor).
        let (mut p, _f) = setup(16);
        let seg_a = p.alloc(FRAME_BYTES, Placement::On(NodeId(0))).unwrap();
        let seg_b = p.alloc(FRAME_BYTES, Placement::On(NodeId(1))).unwrap();
        p.write_bytes(LogicalAddr::new(seg_a, 0), &pack(&[1, 2])).unwrap();
        p.write_bytes(LogicalAddr::new(seg_b, 0), &pack(&[7, 42])).unwrap();
        let v = DistVector {
            stripes: vec![(NodeId(0), seg_a, 20), (NodeId(1), seg_b, 16)],
        };
        let mut f = Fabric::new(LinkProfile::link1(), 4);
        for strategy in [Strategy::Pull, Strategy::Ship] {
            let (found, _) = run_task(
                &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Task::FindFirst(42),
                strategy, ScanParams::with_cores(2),
            )
            .unwrap();
            // Stripe A spans element indices 0..3 (2 data + 1 tail slot);
            // 42 is stripe B's second element → global index 4.
            assert_eq!(found, Partial::Found(Some(4)), "{strategy:?}");
        }
    }

    fn pack(vals: &[u64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn shipped_scan_bandwidth_scales_with_servers() {
        // Aggregate shipped bandwidth approaches servers × local DRAM.
        let (mut p, mut f) = setup(64);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let len = 128 * FRAME_BYTES;
        let v = DistVector::stripe_even(&mut p, len, &servers).unwrap();
        let ship = reduce_timed(
            &mut p, &mut f, SimTime::ZERO, NodeId(0), &v, Strategy::Ship, ScanParams::default(),
        )
        .unwrap();
        let bw = ship.bandwidth(len, SimTime::ZERO);
        assert!(
            bw.as_gbps() > 300.0,
            "aggregate near-memory bandwidth only {bw}"
        );
    }
}
