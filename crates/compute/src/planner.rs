//! Cost-based pushdown planning (ROADMAP item 4).
//!
//! The paper's Benefit 3 — "all accesses become local" — is only a win
//! when the shipped result is smaller than the scanned data *and* the
//! holder can spare the memory bandwidth. [`Planner`] decides ship vs
//! batched-fetch **per segment** from live state rather than folklore:
//!
//! * **Fabric backlog** — [`Fabric::estimate_read_completion`] chains the
//!   four FIFO `free_at` horizons, so a loaded holder up-wire pushes both
//!   estimates out by the queued backlog. What load actually moves is the
//!   crossover: the holder-local scan *hides under* the backlog drain
//!   (shipping's scan cost disappears when the result must queue anyway),
//!   so the break-even selectivity rises on loaded links.
//! * **Down-wire sharing** — all remote streams of one request funnel
//!   through the requester's down wire, so each segment's estimate also
//!   charges its peers' traffic once (fetch: their stripe bytes; ship:
//!   their result bytes — a consistent-choice approximation). The fetch
//!   estimate further credits one wire-time of its own bytes: the batch
//!   engine pipelines chunks across the two data hops, while a shipped
//!   result is one store-and-forward message that pays both hops serially
//!   (exactly what [`Fabric::try_write`] charges).
//! * **Holder memory pressure** — the holder's DRAM-channel utilization
//!   and foreign-accessor load from the access-bit tracker
//!   ([`HotnessMap::accessor_load`]) derate the holder-side scan rate: a
//!   busy holder makes shipping less attractive.
//! * **Operator selectivity** — [`Operator::estimate_return_bytes`] turns
//!   the caller's selectivity hint into an estimated result size; a filter
//!   returning 98% of its input has nothing to gain from shipping on an
//!   idle link.
//!
//! Execution resolves every segment against the **live** pool mapping
//! (plans outlive balancer migrations and post-crash promotions); each
//! plan-to-execute relocation bumps `compute.stale_holder`. Fetched and
//! requester-local segments share a single [`scan_ranges`] core budget —
//! the batched-fetch baseline — while each remote holder runs its shipped
//! segments under its own budget and returns one result message, charged
//! through holder-side scan timing plus a fabric write of the *actual*
//! result bytes.
//!
//! [`HotnessMap::accessor_load`]: lmp_mem::HotnessMap::accessor_load

use crate::operator::{OpOutput, Operator};
use crate::placement::DistVector;
use crate::scan::{scan_ranges, ScanParams};
use crate::ship::{group_by_holder, live_stripes, ship_result};
use lmp_core::prelude::*;
use lmp_fabric::{Fabric, NodeId};
use lmp_sim::prelude::*;

/// Cost estimate for an unreachable path (port down): large enough to
/// always lose a comparison, small enough never to overflow later sums.
const UNREACHABLE_NS: u64 = u64::MAX / 4;

/// Foreign decayed-access count at which hotness pressure saturates. One
/// tracked access ≈ one remote touch of a frame since the last epoch tick;
/// past a few thousand the holder's channel is already contended.
const HOTNESS_SATURATION: f64 = 4096.0;

/// Per-segment execution choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// The segment lives on the requester: scan it in place.
    Local,
    /// Ship the operator to the holder; only the result returns.
    Ship,
    /// Fetch the bytes through the batched scan engine and run locally.
    Fetch,
}

/// One segment's plan entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPlan {
    /// The segment.
    pub seg: SegmentId,
    /// Live holder at plan time.
    pub holder: NodeId,
    /// Stripe length in bytes.
    pub len: u64,
    /// The planner's decision.
    pub choice: Choice,
    /// Estimated time-to-result if shipped (ns from plan instant).
    pub est_ship_ns: u64,
    /// Estimated time-to-result if fetched (ns from plan instant).
    pub est_fetch_ns: u64,
    /// Estimated shipped-result size in bytes.
    pub est_return_bytes: u64,
}

/// A pushdown plan over a distributed vector, in logical stripe order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Per-segment entries, in the vector's logical stripe order.
    pub segments: Vec<SegmentPlan>,
    /// Stripes whose live holder differed from the `DistVector` record at
    /// plan time.
    pub stale_holders: u32,
}

impl Plan {
    /// A copy with every remote segment forced to `choice` (requester-local
    /// segments stay [`Choice::Local`]). The bench uses this to measure the
    /// all-ship and all-fetch endpoints the planner is judged against.
    pub fn forced(&self, choice: Choice) -> Plan {
        let mut out = self.clone();
        for sp in &mut out.segments {
            if sp.choice != Choice::Local {
                sp.choice = choice;
            }
        }
        out
    }

    /// Number of segments with the given choice.
    pub fn count(&self, choice: Choice) -> usize {
        self.segments.iter().filter(|s| s.choice == choice).count()
    }
}

/// Timing/accounting outcome of one planned pushdown execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushdownOutcome {
    /// When the merged result is available at the requester.
    pub complete: SimTime,
    /// Bytes that crossed the fabric (fetched data + shipped results +
    /// any remote bytes a relocated "local" scan was forced into).
    pub fabric_bytes: u64,
    /// Bytes scanned at local speed by their holder.
    pub local_bytes: u64,
    /// Size of the final merged result in bytes.
    pub result_bytes: u64,
    /// Segments executed by shipping to a remote holder.
    pub shipped_segments: u32,
    /// Segments fetched (or already local) and scanned at the requester.
    pub fetched_segments: u32,
    /// Segments whose live holder at execute time differed from the plan.
    pub stale_holders: u32,
}

/// The cost-based ship-vs-fetch planner.
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    /// Scan pacing, applied per participating server.
    pub params: ScanParams,
    /// Caller's selectivity hint: expected bytes-returned / bytes-scanned
    /// in `[0, 1]` (from table stats or a prior run of the operator).
    pub selectivity: f64,
}

impl Planner {
    /// A planner with the given pacing and selectivity hint.
    pub fn new(params: ScanParams, selectivity: f64) -> Self {
        Planner { params, selectivity }
    }

    /// Effective holder-side scan bandwidth: the DRAM/core ceiling derated
    /// by live memory pressure — the channel's windowed utilization plus
    /// foreign-accessor load from the access-bit tracker.
    fn holder_scan_bandwidth(
        &self,
        pool: &mut LogicalPool,
        now: SimTime,
        holder: NodeId,
    ) -> Bandwidth {
        let servers = pool.servers();
        let node = pool.node_mut(holder);
        let dram_bw = node.dram().profile().bandwidth;
        let core_bw = self.params.per_core.scale(self.params.cores as f64);
        let ceiling = if dram_bw.as_gbps() <= core_bw.as_gbps() {
            dram_bw
        } else {
            core_bw
        };
        let util = node.dram_mut().utilization(now).clamp(0.0, 1.0);
        let mut foreign = 0u64;
        for a in 0..servers {
            if a != holder.0 {
                foreign += node.hotness().accessor_load(a).1;
            }
        }
        let hot = (foreign as f64 / HOTNESS_SATURATION).min(1.0);
        ceiling.scale(1.0 / (1.0 + util + hot))
    }

    /// Build a plan for running `op` over `vector` from `requester` at
    /// `now`. Holders are resolved from the live pool mapping (relocations
    /// bump `compute.stale_holder`); estimates charge nothing to the
    /// fabric or DRAM models.
    ///
    /// # Errors
    /// [`PoolError::UnknownSegment`] when a stripe's segment was freed.
    pub fn plan(
        &self,
        pool: &mut LogicalPool,
        fabric: &Fabric,
        now: SimTime,
        requester: NodeId,
        vector: &DistVector,
        op: Operator,
    ) -> Result<Plan, PoolError> {
        let (stripes, stale) = live_stripes(pool, vector)?;
        // Aggregate fabric-crossing bytes under each uniform strategy: the
        // remote streams serialize on the requester's down wire, so every
        // segment's estimate charges its peers' traffic once.
        let wire_bw = fabric.profile().bandwidth;
        let mut total_len = 0u64;
        let mut total_ret = 0u64;
        for (holder, _, len) in &stripes {
            if *holder != requester {
                total_len = total_len.saturating_add(*len);
                total_ret = total_ret.saturating_add(
                    op.estimate_return_bytes(*len, self.selectivity).max(8),
                );
            }
        }
        let mut segments = Vec::with_capacity(stripes.len());
        for (holder, seg, len) in stripes {
            let est_ret = op.estimate_return_bytes(len, self.selectivity);
            if holder == requester {
                let local_bw = self.holder_scan_bandwidth(pool, now, holder);
                let ns = local_bw.time_to_transfer(len).as_nanos();
                segments.push(SegmentPlan {
                    seg,
                    holder,
                    len,
                    choice: Choice::Local,
                    est_ship_ns: ns,
                    est_fetch_ns: ns,
                    est_return_bytes: est_ret,
                });
                continue;
            }
            let ret_msg = est_ret.max(8);
            // Peer traffic sharing the requester's down wire, assuming the
            // peers make the same choice as the candidate under estimate.
            let peer_fetch_ns = wire_bw
                .time_to_transfer(total_len.saturating_sub(len))
                .as_nanos();
            let peer_ship_ns = wire_bw
                .time_to_transfer(total_ret.saturating_sub(ret_msg))
                .as_nanos();
            // Fetch: the whole stripe streams through the batch engine,
            // queued behind whatever backlog the four wires already carry.
            // The chained estimate charges both data hops serially, but the
            // batch engine pipelines its chunks — credit one wire-time.
            let pipeline_credit_ns = wire_bw.time_to_transfer(len).as_nanos();
            let est_fetch_ns = fabric
                .estimate_read_completion(now, requester, holder, len)
                .map(|t| {
                    t.saturating_duration_since(now)
                        .as_nanos()
                        .saturating_sub(pipeline_credit_ns)
                        .saturating_add(peer_fetch_ns)
                })
                .unwrap_or(UNREACHABLE_NS);
            // Ship: the holder scans at its derated local rate (overlapping
            // any fabric backlog), then the estimated result — never less
            // than one 8-byte message — queues home as one store-and-forward
            // write that pays both data hops in full.
            let scan_bw = self.holder_scan_bandwidth(pool, now, holder);
            let scan_done = now + scan_bw.time_to_transfer(len);
            let est_ship_ns = fabric
                .estimate_read_completion(scan_done, requester, holder, ret_msg)
                .map(|t| {
                    t.saturating_duration_since(now)
                        .as_nanos()
                        .saturating_add(peer_ship_ns)
                })
                .unwrap_or(UNREACHABLE_NS);
            let choice = if est_ship_ns <= est_fetch_ns {
                Choice::Ship
            } else {
                Choice::Fetch
            };
            segments.push(SegmentPlan {
                seg,
                holder,
                len,
                choice,
                est_ship_ns,
                est_fetch_ns,
                est_return_bytes: est_ret,
            });
        }
        Ok(Plan {
            segments,
            stale_holders: stale,
        })
    }

    /// Execute a plan: fetched and requester-local segments share one
    /// batched scan under the requester's core budget; shipped segments
    /// run grouped per live holder, each holder returning one result
    /// message of its segments' *actual* combined output size. The merged
    /// result is byte-identical to an all-fetch reference regardless of
    /// the per-segment choices.
    ///
    /// Segments are re-resolved against the live mapping: a stripe that
    /// moved since planning is scanned where it lives now (counted in
    /// [`PushdownOutcome::stale_holders`] and `compute.stale_holder`), so
    /// a plan raced by the balancer stays correct, merely mispredicted.
    ///
    /// # Errors
    /// [`PoolError::UnknownSegment`] for freed segments, plus any scan or
    /// fabric error surfaced by the underlying engines.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        start: SimTime,
        requester: NodeId,
        op: Operator,
        plan: &Plan,
    ) -> Result<(OpOutput, PushdownOutcome), PoolError> {
        // Re-resolve against the live mapping.
        let mut live = Vec::with_capacity(plan.segments.len());
        let mut stale = 0u32;
        for sp in &plan.segments {
            let holder = pool
                .holder_of(sp.seg)
                .ok_or(PoolError::UnknownSegment(sp.seg))?;
            if holder != sp.holder {
                stale += 1;
                if let Some(t) = pool.telemetry_mut() {
                    t.note_stale_holder();
                }
            }
            live.push(holder);
        }

        // Partition: anything not shipped — or "shipped" to a stripe that
        // now lives on the requester — joins the one batched fetch scan.
        let mut fetch_ranges: Vec<(SegmentId, u64, u64)> = Vec::new();
        let mut fetched = 0u32;
        let mut ship_stripes: Vec<(NodeId, SegmentId, u64)> = Vec::new();
        for (sp, &holder) in plan.segments.iter().zip(&live) {
            let shipped = sp.choice == Choice::Ship && holder != requester;
            if shipped {
                ship_stripes.push((holder, sp.seg, sp.len));
            } else {
                fetch_ranges.push((sp.seg, 0, sp.len));
                fetched += 1;
            }
        }

        let mut outcome = PushdownOutcome {
            complete: start,
            fabric_bytes: 0,
            local_bytes: 0,
            result_bytes: 0,
            shipped_segments: ship_stripes.len() as u32,
            fetched_segments: fetched,
            stale_holders: stale,
        };

        // The result value is choice-independent: per-segment partials in
        // logical stripe order, merged left to right.
        let mut partials = Vec::with_capacity(plan.segments.len());
        for sp in &plan.segments {
            let bytes = pool.read_bytes(LogicalAddr::new(sp.seg, 0), sp.len)?;
            partials.push(op.execute(&bytes));
        }

        // Timing: the shared fetch scan at the requester…
        if !fetch_ranges.is_empty() {
            let s = scan_ranges(pool, fabric, start, requester, &fetch_ranges, self.params)?;
            outcome.complete = outcome.complete.max(s.complete);
            outcome.fabric_bytes += s.remote_bytes;
            outcome.local_bytes += s.local_bytes;
        }
        // …and one scan per remote holder, returning its actual result
        // bytes as a single message (minimum one 8-byte header).
        for (holder, ranges) in group_by_holder(&ship_stripes) {
            let s = scan_ranges(pool, fabric, start, holder, &ranges, self.params)?;
            outcome.local_bytes += s.local_bytes;
            outcome.fabric_bytes += s.remote_bytes;
            let mut ret_bytes = 0u64;
            for (sp, partial) in plan.segments.iter().zip(&partials) {
                if ranges.iter().any(|(seg, _, _)| seg == &sp.seg) {
                    ret_bytes += op.output_bytes(partial);
                }
            }
            let ret = ret_bytes.max(8);
            outcome.fabric_bytes += ret;
            let done = ship_result(fabric, s.complete, holder, requester, ret)?;
            outcome.complete = outcome.complete.max(done);
        }

        let mut merged = op.identity();
        for partial in partials {
            merged = op.merge(merged, partial)?;
        }
        outcome.result_bytes = op.output_bytes(&merged);
        Ok((merged, outcome))
    }

    /// Plan and execute in one call.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        pool: &mut LogicalPool,
        fabric: &mut Fabric,
        now: SimTime,
        requester: NodeId,
        vector: &DistVector,
        op: Operator,
    ) -> Result<(OpOutput, Plan, PushdownOutcome), PoolError> {
        let plan = self.plan(pool, fabric, now, requester, vector, op)?;
        let (out, outcome) = self.execute(pool, fabric, now, requester, op, &plan)?;
        Ok((out, plan, outcome))
    }
}

/// All-fetch reference: every segment through the batched scan engine,
/// merged the same way — the ground truth the planner's results must be
/// byte-identical to, and the measured baseline for its fetch estimates.
pub fn fetch_reference(
    planner: &Planner,
    pool: &mut LogicalPool,
    fabric: &mut Fabric,
    now: SimTime,
    requester: NodeId,
    vector: &DistVector,
    op: Operator,
) -> Result<(OpOutput, PushdownOutcome), PoolError> {
    let plan = planner.plan(pool, fabric, now, requester, vector, op)?;
    planner.execute(pool, fabric, now, requester, op, &plan.forced(Choice::Fetch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::Predicate;
    use lmp_fabric::LinkProfile;
    use lmp_mem::{DramProfile, FRAME_BYTES};

    fn setup(shared_frames: u64) -> (LogicalPool, Fabric) {
        let cfg = PoolConfig {
            servers: 4,
            capacity_per_server: (shared_frames + 2) * FRAME_BYTES,
            shared_per_server: shared_frames * FRAME_BYTES,
            dram: DramProfile::xeon_gold_5120(),
            tlb_capacity: 64,
        };
        (LogicalPool::new(cfg), Fabric::new(LinkProfile::link1(), 4))
    }

    fn fill_lcg(pool: &mut LogicalPool, v: &DistVector, seed: u64, modulus: u64) {
        let mut x = seed;
        for (_, seg, len) in &v.stripes {
            let mut bytes = Vec::with_capacity(*len as usize);
            for _ in 0..(len / 8) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                bytes.extend(((x >> 33) % modulus).to_le_bytes());
            }
            bytes.resize(*len as usize, 0);
            pool.write_bytes(LogicalAddr::new(*seg, 0), &bytes).unwrap();
        }
    }

    #[test]
    fn low_selectivity_ships_high_selectivity_fetches() {
        let (mut p, f) = setup(64);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 64 * FRAME_BYTES, &servers).unwrap();
        let op = Operator::Filter(Predicate::Greater(0));
        let lean = Planner::new(ScanParams::default(), 0.05);
        let plan = lean.plan(&mut p, &f, SimTime::ZERO, NodeId(0), &v, op).unwrap();
        assert_eq!(plan.count(Choice::Local), 1);
        assert_eq!(plan.count(Choice::Ship), 3, "5% selectivity must ship: {plan:?}");
        let fat = Planner::new(ScanParams::default(), 0.99);
        let plan = fat.plan(&mut p, &f, SimTime::ZERO, NodeId(0), &v, op).unwrap();
        assert_eq!(plan.count(Choice::Fetch), 3, "99% selectivity must fetch: {plan:?}");
    }

    #[test]
    fn loaded_links_flip_the_choice_to_ship() {
        let (mut p, mut f) = setup(64);
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 64 * FRAME_BYTES, &servers).unwrap();
        let op = Operator::Filter(Predicate::Greater(0));
        // 72% selectivity sits between the idle and loaded break-evens:
        // idle, the holder scan is pure added latency, so fetch wins; with
        // a backlog the scan hides under the queue drain and shipping's
        // smaller result wins.
        let fat = Planner::new(ScanParams::default(), 0.72);
        let idle = fat.plan(&mut p, &f, SimTime::ZERO, NodeId(0), &v, op).unwrap();
        assert_eq!(idle.count(Choice::Fetch), 3, "idle at 72% must fetch: {idle:?}");
        // Queue a fat bulk transfer on every holder's up wire.
        for h in 1..4u32 {
            f.write(SimTime::ZERO, NodeId(h), NodeId(h % 3 + 1), 256 * MIB);
        }
        let loaded = fat.plan(&mut p, &f, SimTime::ZERO, NodeId(0), &v, op).unwrap();
        assert_eq!(
            loaded.count(Choice::Ship),
            3,
            "backlogged up-wires must flip 72% selectivity to ship: {loaded:?}"
        );
    }

    #[test]
    fn planned_result_is_byte_identical_to_fetch_reference() {
        let op = Operator::Filter(Predicate::Greater(40));
        for sel in [0.05, 0.5, 0.95] {
            let (mut p, mut f) = setup(64);
            let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
            let v = DistVector::stripe_even(&mut p, 32 * FRAME_BYTES, &servers).unwrap();
            fill_lcg(&mut p, &v, 42, 64);
            let planner = Planner::new(ScanParams::default(), sel);
            let (out, _, _) = planner
                .run(&mut p, &mut f, SimTime::ZERO, NodeId(0), &v, op)
                .unwrap();
            let (mut p2, mut f2) = setup(64);
            let v2 = DistVector::stripe_even(&mut p2, 32 * FRAME_BYTES, &servers).unwrap();
            fill_lcg(&mut p2, &v2, 42, 64);
            let (reference, _) = fetch_reference(
                &planner, &mut p2, &mut f2, SimTime::ZERO, NodeId(0), &v2, op,
            )
            .unwrap();
            assert_eq!(out, reference, "sel={sel}");
        }
    }

    #[test]
    fn migration_between_plan_and_execute_is_resolved_and_counted() {
        let (mut p, mut f) = setup(32);
        p.attach_telemetry();
        let servers: Vec<NodeId> = (0..4).map(NodeId).collect();
        let v = DistVector::stripe_even(&mut p, 16 * FRAME_BYTES, &servers).unwrap();
        fill_lcg(&mut p, &v, 7, 100);
        let op = Operator::Aggregate(crate::ship::ReduceOp::Sum);
        let want = crate::ship::reduce_value(&p, &v, crate::ship::ReduceOp::Sum).unwrap();
        let planner = Planner::new(ScanParams::default(), 0.0);
        let plan = planner.plan(&mut p, &f, SimTime::ZERO, NodeId(0), &v, op).unwrap();
        assert_eq!(plan.stale_holders, 0);
        // The balancer races the plan: stripe 1 moves to node 3.
        let (_, seg, _) = v.stripes[1];
        lmp_core::migrate::migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(3))
            .unwrap();
        let start = SimTime::from_nanos(50_000_000);
        let (out, outcome) = planner
            .execute(&mut p, &mut f, start, NodeId(0), op, &plan)
            .unwrap();
        assert_eq!(out, OpOutput::Scalar(want), "relocated stripe still correct");
        assert_eq!(outcome.stale_holders, 1);
        assert_eq!(p.telemetry().unwrap().stale_holders(), 1);
        // Shipped scans ran where the data lives: no stripe was dragged
        // across the fabric, only the per-holder result messages.
        assert_eq!(outcome.fabric_bytes, 3 * 8);
    }

    #[test]
    fn shipped_segment_relocated_onto_requester_joins_the_fetch_scan() {
        let (mut p, mut f) = setup(32);
        let servers = [NodeId(1), NodeId(2)];
        let v = DistVector::stripe_even(&mut p, 8 * FRAME_BYTES, &servers).unwrap();
        let op = Operator::Count(Predicate::Greater(0));
        let planner = Planner::new(ScanParams::default(), 0.0);
        let plan = planner.plan(&mut p, &f, SimTime::ZERO, NodeId(0), &v, op).unwrap();
        assert_eq!(plan.count(Choice::Ship), 2);
        let (_, seg, _) = v.stripes[0];
        lmp_core::migrate::migrate_segment(&mut p, &mut f, SimTime::ZERO, seg, NodeId(0))
            .unwrap();
        let start = SimTime::from_nanos(50_000_000);
        let (_, outcome) = planner
            .execute(&mut p, &mut f, start, NodeId(0), op, &plan)
            .unwrap();
        assert_eq!(outcome.shipped_segments, 1, "relocated stripe is local now");
        assert_eq!(outcome.fetched_segments, 1);
        assert_eq!(outcome.stale_holders, 1);
        assert_eq!(outcome.fabric_bytes, 8, "one result message, no data moved");
    }

    #[test]
    fn freed_segment_surfaces_unknown_segment() {
        let (mut p, mut f) = setup(16);
        let v = DistVector::stripe_even(&mut p, 2 * FRAME_BYTES, &[NodeId(1)]).unwrap();
        let planner = Planner::new(ScanParams::default(), 0.5);
        let op = Operator::TopK(4);
        let plan = planner.plan(&mut p, &f, SimTime::ZERO, NodeId(0), &v, op).unwrap();
        let (_, seg, _) = v.stripes[0];
        p.free(seg).unwrap();
        let e = planner
            .execute(&mut p, &mut f, SimTime::ZERO, NodeId(0), op, &plan)
            .unwrap_err();
        assert!(matches!(e, PoolError::UnknownSegment(_)), "{e:?}");
    }
}
