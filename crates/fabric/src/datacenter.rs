//! Datacenter-scale topology: racks of leaf–spine fabrics joined by an
//! oversubscribed spine tier.
//!
//! The next rung on §2.2's scaling ladder: one [`LeafSpineFabric`] per
//! rack (nodes → leaves → rack spine), and a datacenter spine joining the
//! racks. Each rack attaches to the spine through one uplink pair whose
//! bandwidth is `spine_multiplier`× the node link class — the
//! oversubscription knob that decides how painful cross-rack traffic is
//! (`1.0` = a whole rack funnels through one node-class link,
//! `hosts_per_rack as f64` = non-blocking).
//!
//! Same-rack traffic delegates to the rack fabric unchanged (1 or 3 switch
//! hops). Cross-rack traffic crosses five switches — holder leaf, holder
//! rack spine, datacenter spine, requester rack spine, requester leaf —
//! and contends on both racks' spine uplinks. Global node ids are
//! rack-major: node `n` lives in rack `n / hosts_per_rack`.
//!
//! This module is on the lint no-panic list: constructors clamp degenerate
//! shapes instead of asserting, and out-of-range ids fold to the nearest
//! valid id rather than indexing out of bounds.

use crate::link::Link;
use crate::profile::LinkProfile;
use crate::topology::LeafSpineFabric;
use crate::types::{NodeId, REQUEST_FLIT_BYTES};
use lmp_sim::prelude::*;

/// Completion report for one operation on the datacenter fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcCompletion {
    /// Instant the operation is complete at the requester.
    pub complete: SimTime,
    /// End-to-end latency component.
    pub latency: SimDuration,
    /// Switch hops the data path crossed (1 same-leaf, 3 cross-leaf,
    /// 5 cross-rack, 0 for a same-node no-op).
    pub hops: u32,
    /// Whether the path crossed the datacenter spine.
    pub cross_rack: bool,
}

/// N leaf–spine racks joined by an oversubscribed datacenter spine.
#[derive(Debug)]
pub struct DatacenterFabric {
    racks: Vec<LeafSpineFabric>,
    hosts_per_rack: u32,
    /// 2 wires per rack: up (rack spine → dc spine), down (dc spine →
    /// rack spine).
    spine_links: Vec<Link>,
    profile: LinkProfile,
    extra_hop: SimDuration,
    reads: Counter,
    cross_rack_reads: Counter,
    spine_bytes: Counter,
}

impl DatacenterFabric {
    /// A datacenter of `racks` racks, each a `leaves × per_leaf` leaf–spine
    /// fabric of `profile`-class node links. `uplink_multiplier` scales the
    /// in-rack leaf uplinks, `spine_multiplier` the per-rack spine uplinks;
    /// `extra_hop` is the added latency per switch beyond the first.
    ///
    /// Degenerate shapes are clamped to 1 and non-positive multipliers to
    /// 1.0 (this module must not panic).
    pub fn new(
        profile: LinkProfile,
        racks: u32,
        leaves: u32,
        per_leaf: u32,
        uplink_multiplier: f64,
        spine_multiplier: f64,
        extra_hop: SimDuration,
    ) -> Self {
        let racks = racks.max(1);
        let leaves = leaves.max(1);
        let per_leaf = per_leaf.max(1);
        let uplink_multiplier = if uplink_multiplier > 0.0 {
            uplink_multiplier
        } else {
            1.0
        };
        let spine_multiplier = if spine_multiplier > 0.0 {
            spine_multiplier
        } else {
            1.0
        };
        let rack_fabrics: Vec<LeafSpineFabric> = (0..racks)
            .map(|_| {
                LeafSpineFabric::new(
                    profile.clone(),
                    leaves,
                    per_leaf,
                    uplink_multiplier,
                    extra_hop,
                )
            })
            .collect();
        let spine_profile = LinkProfile::new(
            format!("{}-spine", profile.name),
            profile.curve,
            profile.bandwidth.scale(spine_multiplier),
        );
        let spine_links = (0..racks * 2)
            .map(|_| Link::new(spine_profile.clone()))
            .collect();
        DatacenterFabric {
            racks: rack_fabrics,
            hosts_per_rack: leaves * per_leaf,
            spine_links,
            profile,
            extra_hop,
            reads: Counter::new(),
            cross_rack_reads: Counter::new(),
            spine_bytes: Counter::new(),
        }
    }

    /// Number of racks.
    pub fn rack_count(&self) -> u32 {
        self.racks.len() as u32
    }

    /// Hosts per rack.
    pub fn hosts_per_rack(&self) -> u32 {
        self.hosts_per_rack
    }

    /// Total nodes across the datacenter.
    pub fn node_count(&self) -> u32 {
        self.rack_count() * self.hosts_per_rack
    }

    /// The rack a global node id belongs to. Out-of-range ids fold into
    /// the last rack rather than panic.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        (node.0 / self.hosts_per_rack).min(self.rack_count().saturating_sub(1))
    }

    /// A node's id within its rack.
    fn local(&self, node: NodeId) -> NodeId {
        NodeId(node.0 % self.hosts_per_rack)
    }

    fn spine_up(&self, rack: u32) -> usize {
        rack as usize * 2
    }

    fn spine_down(&self, rack: u32) -> usize {
        rack as usize * 2 + 1
    }

    /// A remote read of `bytes` held by `holder`, issued by `requester`
    /// (global ids). A same-node "read" is a no-op completing at `now` —
    /// never a panic; upper layers resolve locality before charging the
    /// fabric, so charging nothing keeps accounting honest.
    pub fn read(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
    ) -> DcCompletion {
        if requester == holder {
            return DcCompletion {
                complete: now,
                latency: SimDuration::ZERO,
                hops: 0,
                cross_rack: false,
            };
        }
        self.reads.inc();
        let (rr, hr) = (self.rack_of(requester), self.rack_of(holder));
        let (rl, hl) = (self.local(requester), self.local(holder));
        if rr == hr {
            let idx = rr as usize;
            // Both ids folded into one rack: delegate unchanged.
            if let Some(rack) = self.racks.get_mut(idx) {
                let c = rack.read(now, rl, hl, bytes);
                return DcCompletion {
                    complete: c.complete,
                    latency: c.latency,
                    hops: c.hops,
                    cross_rack: false,
                };
            }
            // Unreachable (rack_of clamps into range); complete instantly
            // rather than panic.
            return DcCompletion {
                complete: now,
                latency: SimDuration::ZERO,
                hops: 0,
                cross_rack: false,
            };
        }
        self.cross_rack_reads.inc();
        self.spine_bytes.add(bytes);

        // Bottleneck utilization over the data path, pre-admission: holder
        // egress wires, both spine uplinks, requester ingress wires.
        let (h_leaf, r_leaf) = {
            let hf = &self.racks[hr as usize];
            let rf = &self.racks[rr as usize];
            (hf.leaf_of(hl), rf.leaf_of(rl))
        };
        let mut u: f64 = 0.0;
        {
            let hf = &mut self.racks[hr as usize];
            u = u.max(hf.node_up_link(hl).utilization(now));
            u = u.max(hf.leaf_up_link(h_leaf).utilization(now));
        }
        let (su, sd) = (self.spine_up(hr), self.spine_down(rr));
        if let Some(l) = self.spine_links.get_mut(su) {
            u = u.max(l.utilization(now));
        }
        if let Some(l) = self.spine_links.get_mut(sd) {
            u = u.max(l.utilization(now));
        }
        {
            let rf = &mut self.racks[rr as usize];
            u = u.max(rf.leaf_down_link(r_leaf).utilization(now));
            u = u.max(rf.node_down_link(rl).utilization(now));
        }
        // Five switches: holder leaf, holder rack spine, dc spine,
        // requester rack spine, requester leaf.
        let hops = 5u32;
        let latency = self.profile.curve.at(u) + self.extra_hop * (hops - 1) as u64;

        // Request flit out of the requester, into the holder.
        let q1 = self.racks[rr as usize]
            .node_up_link(rl)
            .transfer_wire(now, REQUEST_FLIT_BYTES);
        let q2 = self.racks[hr as usize]
            .node_down_link(hl)
            .transfer_wire(q1.1, REQUEST_FLIT_BYTES);
        // Data payload back, hop by hop.
        let mut t = {
            let hf = &mut self.racks[hr as usize];
            let d = hf.node_up_link(hl).transfer_wire(q2.1, bytes);
            hf.leaf_up_link(h_leaf).transfer_wire(d.1, bytes).1
        };
        if let Some(l) = self.spine_links.get_mut(su) {
            t = l.transfer_wire(t, bytes).1;
        }
        if let Some(l) = self.spine_links.get_mut(sd) {
            t = l.transfer_wire(t, bytes).1;
        }
        let complete = {
            let rf = &mut self.racks[rr as usize];
            let d = rf.leaf_down_link(r_leaf).transfer_wire(t, bytes);
            rf.node_down_link(rl).transfer_wire(d.1, bytes).1
        };
        DcCompletion {
            complete: complete + latency,
            latency,
            hops,
            cross_rack: true,
        }
    }

    /// Total reads served (same-rack + cross-rack; same-node no-ops are
    /// not counted).
    pub fn read_count(&self) -> u64 {
        self.reads.get()
    }

    /// Reads that crossed the datacenter spine.
    pub fn cross_rack_read_count(&self) -> u64 {
        self.cross_rack_reads.get()
    }

    /// Payload bytes that crossed the datacenter spine (one count per
    /// cross-rack read, not per wire).
    pub fn spine_payload_bytes(&self) -> u64 {
        self.spine_bytes.get()
    }

    /// Utilization of a rack's spine uplink pair `(up, down)` at `now`.
    pub fn uplink_utilization(&mut self, rack: u32, now: SimTime) -> (f64, f64) {
        let (su, sd) = (self.spine_up(rack), self.spine_down(rack));
        let up = self
            .spine_links
            .get_mut(su)
            .map(|l| l.utilization(now))
            .unwrap_or(0.0);
        let down = self
            .spine_links
            .get_mut(sd)
            .map(|l| l.utilization(now))
            .unwrap_or(0.0);
        (up, down)
    }

    /// Export datacenter counters and per-rack port telemetry into `reg`.
    /// Fill a fresh registry per export — values are published absolutely.
    pub fn export_into(&mut self, now: SimTime, reg: &mut lmp_telemetry::MetricRegistry) {
        reg.fill_counter_value("dc.reads", &[], self.reads.get());
        reg.fill_counter_value("dc.cross_rack_reads", &[], self.cross_rack_reads.get());
        reg.fill_counter_value("dc.spine_bytes", &[], self.spine_bytes.get());
        for r in 0..self.rack_count() {
            let label = r.to_string();
            let labels = [("rack", label.as_str())];
            let (rack_reads, rack_cross, rack_bytes) = {
                let rf = &self.racks[r as usize];
                (rf.read_count(), rf.cross_leaf_read_count(), rf.wire_bytes())
            };
            reg.fill_counter_value("dc.rack.reads", &labels, rack_reads);
            reg.fill_counter_value("dc.rack.cross_leaf_reads", &labels, rack_cross);
            reg.fill_counter_value("dc.rack.wire_bytes", &labels, rack_bytes);
            for (dir, idx) in [("up", self.spine_up(r)), ("down", self.spine_down(r))] {
                let dl = [("rack", label.as_str()), ("dir", dir)];
                if let Some(l) = self.spine_links.get_mut(idx) {
                    let util = l.utilization(now);
                    reg.set_gauge_value("dc.uplink.utilization", &dl, util);
                    reg.fill_counter_value("dc.uplink.bytes", &dl, l.bytes_sent());
                    reg.fill_counter_value("dc.uplink.transfers", &dl, l.transfer_count());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(racks: u32, spine_mult: f64) -> DatacenterFabric {
        // racks × (1 leaf × 4 hosts), Link1 class, 40ns per extra hop.
        DatacenterFabric::new(
            LinkProfile::link1(),
            racks,
            1,
            4,
            4.0,
            spine_mult,
            SimDuration::from_nanos(40),
        )
    }

    #[test]
    fn geometry_and_global_ids() {
        let f = dc(3, 2.0);
        assert_eq!(f.node_count(), 12);
        assert_eq!(f.hosts_per_rack(), 4);
        assert_eq!(f.rack_of(NodeId(0)), 0);
        assert_eq!(f.rack_of(NodeId(5)), 1);
        assert_eq!(f.rack_of(NodeId(11)), 2);
        // Out-of-range folds instead of panicking.
        assert_eq!(f.rack_of(NodeId(99)), 2);
    }

    #[test]
    fn same_rack_reads_match_the_rack_fabric() {
        let mut f = dc(2, 2.0);
        let mut standalone =
            LeafSpineFabric::new(LinkProfile::link1(), 1, 4, 4.0, SimDuration::from_nanos(40));
        let a = f.read(SimTime::ZERO, NodeId(4), NodeId(5), 4096);
        let b = standalone.read(SimTime::ZERO, NodeId(0), NodeId(1), 4096);
        assert!(!a.cross_rack);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.complete, b.complete);
        assert_eq!(f.cross_rack_read_count(), 0);
        assert_eq!(f.spine_payload_bytes(), 0);
    }

    #[test]
    fn cross_rack_pays_spine_hops() {
        let mut f = dc(2, 4.0);
        let same = f.read(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        let cross = f.read(SimTime::ZERO, NodeId(0), NodeId(4), 64);
        assert_eq!(same.hops, 1);
        assert_eq!(cross.hops, 5);
        assert!(cross.cross_rack);
        assert_eq!(
            cross.latency.as_nanos(),
            same.latency.as_nanos() + 4 * 40,
            "four extra switch hops"
        );
        assert!(cross.complete > same.complete);
        assert_eq!(f.cross_rack_read_count(), 1);
        assert_eq!(f.spine_payload_bytes(), 64);
    }

    #[test]
    fn same_node_read_is_a_harmless_no_op() {
        let mut f = dc(2, 1.0);
        let c = f.read(SimTime::ZERO, NodeId(3), NodeId(3), 1 << 20);
        assert_eq!(c.complete, SimTime::ZERO);
        assert_eq!(c.hops, 0);
        assert_eq!(f.read_count(), 0, "no-ops are not reads");
    }

    #[test]
    fn oversubscribed_spine_throttles_cross_rack_traffic() {
        let mut thin = dc(2, 1.0);
        let mut fat = dc(2, 8.0);
        let run = |f: &mut DatacenterFabric| {
            let mut done = SimTime::ZERO;
            for round in 0..50u64 {
                for n in 0..4u32 {
                    // Every rack-0 host reads from its rack-1 counterpart.
                    let c =
                        f.read(SimTime::from_nanos(round), NodeId(n), NodeId(4 + n), 500_000);
                    done = done.max(c.complete);
                }
            }
            done
        };
        let thin_done = run(&mut thin);
        let fat_done = run(&mut fat);
        assert!(
            thin_done.as_nanos() > fat_done.as_nanos() * 3,
            "1x spine should be far slower: {thin_done} vs {fat_done}"
        );
        assert_eq!(thin.cross_rack_read_count(), 200);
        // Sampled mid-run: the holder rack's spine uplink is backlogged.
        let (up, _) = thin.uplink_utilization(1, SimTime::from_nanos(100_000));
        assert!(up > 0.0, "holder-rack uplink saw traffic");
    }

    #[test]
    fn same_rack_traffic_ignores_the_spine() {
        let mut f = dc(2, 1.0);
        // Saturate the spine with cross-rack traffic…
        for i in 0..50u64 {
            f.read(SimTime::from_nanos(i), NodeId(0), NodeId(4), 2_000_000);
        }
        // …rack-1-internal latency on untouched wires is unaffected.
        let c = f.read(SimTime::ZERO, NodeId(5), NodeId(6), 64);
        assert_eq!(c.latency.as_nanos(), 261, "unloaded same-leaf latency");
    }

    #[test]
    fn export_is_deterministic_and_labelled_per_rack() {
        let mut f = dc(2, 2.0);
        f.read(SimTime::ZERO, NodeId(0), NodeId(4), 4096);
        f.read(SimTime::ZERO, NodeId(0), NodeId(1), 4096);
        let now = SimTime::from_nanos(10_000);
        let snap = |f: &mut DatacenterFabric| {
            let mut reg = lmp_telemetry::MetricRegistry::new();
            f.export_into(now, &mut reg);
            reg.snapshot().to_json()
        };
        let a = snap(&mut f);
        let b = snap(&mut f);
        assert_eq!(a, b, "export must not double count");
        assert!(a.contains("dc.cross_rack_reads"));
        assert!(a.contains("dc.uplink.utilization"));
        assert!(a.contains("rack=1"), "per-rack labels present: {a}");
    }

    #[test]
    fn degenerate_shapes_are_clamped_not_panicked() {
        let f = DatacenterFabric::new(
            LinkProfile::link1(),
            0,
            0,
            0,
            -1.0,
            0.0,
            SimDuration::ZERO,
        );
        assert_eq!(f.rack_count(), 1);
        assert_eq!(f.node_count(), 1);
        assert_eq!(f.rack_of(NodeId(0)), 0);
    }
}
