//! A single directed fabric link.
//!
//! The link is a serial resource: payloads occupy its wire for
//! `bytes / bandwidth` and queue behind earlier payloads (FIFO). On top of
//! serialization, each transfer experiences the profile's loaded-latency
//! component evaluated at the link's recent utilization — this is what makes
//! the Table 2 "latency under load" sweep come out of the model rather than
//! being hard-coded.

use crate::profile::LinkProfile;
use lmp_qos::{Band, BandWeights, BandedQueue, BAND_COUNT};
use lmp_sim::prelude::*;

/// Outcome of admitting one transfer onto a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTransfer {
    /// When the payload started occupying the wire (≥ admission time when
    /// queued behind earlier payloads).
    pub start: SimTime,
    /// When the last byte left the wire.
    pub wire_done: SimTime,
    /// Protocol/propagation latency component (loaded-latency model); the
    /// payload is fully delivered at `wire_done + latency`.
    pub latency: SimDuration,
}

impl LinkTransfer {
    /// Instant the payload is fully delivered at the far end.
    pub fn delivered(&self) -> SimTime {
        self.wire_done + self.latency
    }
}

/// A directed link with FIFO serialization and load-dependent latency.
///
/// When priority bands are enabled ([`Link::enable_bands`]) the wire
/// schedule each transfer sees comes from a weighted [`BandedQueue`]
/// instead of the FIFO backlog; the FIFO [`BusyTracker`] keeps running
/// as the aggregate occupancy ledger either way (total wire work is the
/// same), so utilization and byte accounting stay consistent. Bands are
/// off by default and the FIFO path is byte-identical to the pre-QoS
/// link.
#[derive(Debug)]
pub struct Link {
    profile: LinkProfile,
    busy: BusyTracker,
    /// Weighted priority scheduling, replacing the FIFO wire schedule
    /// when enabled. `None` (the default) means strict FIFO.
    bands: Option<BandedQueue>,
    /// Smoothed utilization estimate feeding the latency curve.
    util: Ewma,
    bytes: Counter,
    transfers: Counter,
    latency_hist: Histogram,
}

/// Window over which link utilization is measured. Long enough to smooth
/// chunk granularity, short enough to react to phase changes.
const UTIL_WINDOW: SimDuration = SimDuration::from_micros(50);

impl Link {
    /// A fresh, idle link with the given profile.
    pub fn new(profile: LinkProfile) -> Self {
        Link {
            profile,
            busy: BusyTracker::new(UTIL_WINDOW),
            bands: None,
            util: Ewma::new(0.3),
            bytes: Counter::new(),
            transfers: Counter::new(),
            latency_hist: Histogram::new(),
        }
    }

    /// Switch the wire schedule from strict FIFO to weighted priority
    /// bands. Enable before traffic flows: the banded queue starts empty
    /// and does not inherit an existing FIFO backlog.
    pub fn enable_bands(&mut self, weights: BandWeights) {
        self.bands = Some(BandedQueue::new(weights));
    }

    /// Whether priority bands are enabled on this link.
    pub fn bands_enabled(&self) -> bool {
        self.bands.is_some()
    }

    /// Per-band queued wire time at `now`, highest priority first.
    /// `None` while the link runs strict FIFO.
    pub fn band_backlogs(&mut self, now: SimTime) -> Option<[SimDuration; BAND_COUNT]> {
        self.bands.as_mut().map(|b| b.backlogs(now))
    }

    /// Occupy the wire for `wire` time in `band`. The FIFO tracker is
    /// always charged — it is the aggregate occupancy ledger feeding
    /// utilization — but with bands enabled the `(start, done)` window
    /// the caller sees comes from the weighted queue.
    fn occupy_wire(&mut self, now: SimTime, wire: SimDuration, band: Band) -> (SimTime, SimTime) {
        let fifo = self.busy.occupy(now, wire);
        match &mut self.bands {
            Some(q) => q.occupy(now, band, wire),
            None => fifo,
        }
    }

    /// The link's performance profile.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Admit a transfer of `bytes` at time `now`. The payload queues behind
    /// any payload already on the wire.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> LinkTransfer {
        // Utilization sampled *before* this transfer is admitted.
        let inst = self.busy.utilization(now);
        self.util.observe(inst);
        let u = self.util.get_or(inst);
        let latency = self.profile.curve.at(u);
        let wire = self.profile.bandwidth.time_to_transfer(bytes);
        let (start, wire_done) = self.occupy_wire(now, wire, Band::Normal);
        self.bytes.add(bytes);
        self.transfers.inc();
        let total = wire_done.duration_since(now) + latency;
        self.latency_hist.record_duration(total);
        LinkTransfer {
            start,
            wire_done,
            latency,
        }
    }

    /// Occupy the wire for `bytes` without applying the latency curve or
    /// recording a latency sample. Used by [`crate::fabric::Fabric`], which
    /// applies its end-to-end latency once per operation rather than per hop.
    /// Returns `(start, wire_done)`.
    pub fn transfer_wire(&mut self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        self.transfer_wire_banded(now, bytes, Band::Normal)
    }

    /// [`Link::transfer_wire`] with an explicit priority band. With bands
    /// disabled (the default) the band is ignored and the schedule is the
    /// FIFO one, byte-identical to [`Link::transfer_wire`].
    pub fn transfer_wire_banded(
        &mut self,
        now: SimTime,
        bytes: u64,
        band: Band,
    ) -> (SimTime, SimTime) {
        let wire = self.profile.bandwidth.time_to_transfer(bytes);
        let (start, wire_done) = self.occupy_wire(now, wire, band);
        self.bytes.add(bytes);
        self.transfers.inc();
        (start, wire_done)
    }

    /// Current (windowed) utilization in `[0, 1]`.
    pub fn utilization(&mut self, now: SimTime) -> f64 {
        self.busy.utilization(now)
    }

    /// Earliest instant a new payload could start on the wire.
    pub fn free_at(&self, now: SimTime) -> SimTime {
        self.busy.free_at(now)
    }

    /// Total bytes admitted.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes.get()
    }

    /// Total transfers admitted.
    pub fn transfer_count(&self) -> u64 {
        self.transfers.get()
    }

    /// Distribution of end-to-end per-transfer times (queueing +
    /// serialization + latency), in nanoseconds.
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LinkProfile;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn idle_link_gives_min_latency() {
        let mut link = Link::new(LinkProfile::link0());
        let tr = link.transfer(t(0), 64);
        assert_eq!(tr.start, t(0));
        assert_eq!(tr.latency.as_nanos(), 163);
    }

    #[test]
    fn payloads_serialize_fifo() {
        let mut link = Link::new(LinkProfile::link1()); // 21 GB/s
        let a = link.transfer(t(0), 2_100_000); // 100 us of wire time
        let b = link.transfer(t(0), 2_100_000);
        assert_eq!(a.start, t(0));
        assert_eq!(b.start, a.wire_done);
        assert!(b.wire_done > a.wire_done);
    }

    #[test]
    fn saturated_link_latency_climbs_toward_max() {
        let mut link = Link::new(LinkProfile::link1());
        // Hammer the link far past saturation for a while.
        let mut now = t(0);
        let mut last = SimDuration::ZERO;
        for _ in 0..2_000 {
            let tr = link.transfer(now, 64 * 1024);
            last = tr.latency;
            now += SimDuration::from_nanos(100); // offered >> capacity
        }
        let min = LinkProfile::link1().min_latency().as_nanos();
        let max = LinkProfile::link1().max_latency().as_nanos();
        assert!(
            last.as_nanos() > min + (max - min) / 2,
            "latency {last} did not climb (min {min}, max {max})"
        );
        assert!(last.as_nanos() <= max);
    }

    #[test]
    fn achieved_bandwidth_capped_at_profile() {
        let mut link = Link::new(LinkProfile::link1());
        // Offer 10x capacity for 1 ms; the last wire_done tells us the
        // achieved rate.
        let total: u64 = 210_000_000; // would take 10ms at 21GB/s
        let chunk = 1_000_000;
        let mut done = t(0);
        for i in 0..(total / chunk) {
            let tr = link.transfer(t(i), chunk);
            done = done.max(tr.wire_done);
        }
        let achieved = Bandwidth::measured(total, done.duration_since(t(0)));
        assert!(
            (achieved.as_gbps() - 21.0).abs() < 0.5,
            "achieved {achieved}"
        );
    }

    #[test]
    fn counters_track_traffic() {
        let mut link = Link::new(LinkProfile::link0());
        link.transfer(t(0), 100);
        link.transfer(t(1), 200);
        assert_eq!(link.bytes_sent(), 300);
        assert_eq!(link.transfer_count(), 2);
        assert_eq!(link.latency_histogram().count(), 2);
    }

    #[test]
    fn banded_same_band_matches_fifo() {
        // With one band carrying all traffic the weighted queue is
        // exactly FIFO, so enabling bands changes nothing for
        // single-class workloads.
        let mut fifo = Link::new(LinkProfile::link1());
        let mut banded = Link::new(LinkProfile::link1());
        banded.enable_bands(BandWeights::default());
        for i in 0..16u64 {
            let a = fifo.transfer_wire(t(i * 40), 4096 + i * 128);
            let b = banded.transfer_wire(t(i * 40), 4096 + i * 128);
            assert_eq!(a, b, "transfer {i}");
        }
        assert_eq!(fifo.bytes_sent(), banded.bytes_sent());
    }

    #[test]
    fn high_band_bypasses_low_flood() {
        let mut link = Link::new(LinkProfile::link1()); // 21 GB/s
        link.enable_bands(BandWeights::default()); // 8:4:1
        // ~100 µs of low-band flood already on the wire...
        link.transfer_wire_banded(t(0), 2_100_000, Band::Low);
        // ...a 1 µs high-band transfer still finishes in ~9/8 µs.
        let (_, done) = link.transfer_wire_banded(t(0), 21_000, Band::High);
        assert!(done < t(2_000), "high band stuck behind flood: {done}");
        // The flood's backlog is loudly visible on the band gauge.
        let b = link.band_backlogs(t(0)).unwrap();
        assert!(b[Band::Low.index()].as_nanos() > 90_000);
    }

    #[test]
    fn fifo_link_reports_no_band_backlogs() {
        let mut link = Link::new(LinkProfile::link0());
        link.transfer_wire(t(0), 4096);
        assert!(!link.bands_enabled());
        assert!(link.band_backlogs(t(0)).is_none());
    }

    #[test]
    fn utilization_decays_when_idle() {
        let mut link = Link::new(LinkProfile::link0());
        link.transfer(t(0), 1_000_000);
        assert!(link.utilization(t(10_000)) > 0.0);
        assert!(link.utilization(t(1_000_000_000)) < 1e-9);
    }
}
