//! The rack fabric: a single CXL switch in a star topology.
//!
//! Every node (server or pool appliance) attaches to the switch with one
//! full-duplex link, modelled as two directed [`Link`]s (`up` toward the
//! switch, `down` from it). A remote read occupies four wires — request flit
//! on `up[requester]` and `down[holder]`, data payload on `up[holder]` and
//! `down[requester]` — and experiences the profile's end-to-end loaded
//! latency **once**, evaluated at the bottleneck utilization along the path
//! (the profile's Table 2 endpoints are end-to-end measurements, so applying
//! the curve per-hop would double count).
//!
//! Incast (the paper's §4.2 concern) is emergent: when many servers read
//! from one holder, the holder's `up` wire serializes all payloads and the
//! flows share its bandwidth.

use crate::link::Link;
use crate::profile::LinkProfile;
use crate::types::{LinkId, MemOp, NodeId, PROBE_BYTES, REQUEST_FLIT_BYTES};
use lmp_qos::{Band, BandWeights};
use lmp_sim::prelude::*;

/// Completion report for one fabric operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricCompletion {
    /// Instant the operation is fully complete at the requester.
    pub complete: SimTime,
    /// Loaded-latency component (end-to-end protocol latency).
    pub latency: SimDuration,
    /// Time spent queued behind other traffic (serialization backlog).
    pub queued: SimDuration,
}

/// Completion report for one coalesced batch stream
/// ([`Fabric::transfer_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchTransfer {
    /// Instant the whole stream is complete at the requester. For writes
    /// this includes the stream's single trailing completion flit.
    pub complete: SimTime,
    /// Per-chunk completion instants, in chunk order. For writes every
    /// entry equals [`BatchTransfer::complete`]: stores are acknowledged
    /// collectively by the trailing flit, not chunk by chunk.
    pub chunk_done: Vec<SimTime>,
    /// Loaded-latency component, sampled once for the stream.
    pub latency: SimDuration,
}

/// Completion report for a hedged read race ([`Fabric::try_read_hedged`]):
/// two holders transmit the same payload, the switch forwards whichever
/// arrives first, and the loser is cancelled at the switch — its payload
/// never occupies the requester's down wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgedCompletion {
    /// `true` when the primary's payload reached the switch first (ties
    /// go to the primary: the duplicate is then pure waste).
    pub primary_won: bool,
    /// Instant the winning payload is fully delivered at the requester.
    pub complete: SimTime,
    /// When the primary's payload cleared its holder's up wire — the
    /// primary's entry in the race.
    pub primary_at_switch: SimTime,
    /// When the hedge's payload cleared its holder's up wire. For the
    /// loser this is also the cancellation instant: the event-driven
    /// caller cancels the loser's completion event here.
    pub hedge_at_switch: SimTime,
    /// Loaded-latency component of the winning path.
    pub latency: SimDuration,
}

/// Why a fabric operation could not be served. Fault injection (crashed
/// nodes) surfaces through these instead of panics so upper layers can
/// retry or fail over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// The requesting node's fabric port is down.
    RequesterDown(NodeId),
    /// The holder's fabric port is down.
    HolderDown(NodeId),
    /// The caller misused the fabric API: a self-transfer, an empty batch
    /// stream, a zero-op batch. Recoverable — no wire state was touched.
    Contract(&'static str),
}

impl FabricError {
    /// The node whose port is down, whichever side it was on. `None` for
    /// contract violations, which have no failed port.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            FabricError::RequesterDown(n) | FabricError::HolderDown(n) => Some(*n),
            FabricError::Contract(_) => None,
        }
    }
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::RequesterDown(n) => write!(f, "requester {n} is off the fabric"),
            FabricError::HolderDown(n) => write!(f, "holder {n} is off the fabric"),
            FabricError::Contract(why) => write!(f, "fabric contract violation: {why}"),
        }
    }
}

impl std::error::Error for FabricError {}

/// A star-topology fabric connecting `node_count` nodes through one switch.
#[derive(Debug)]
pub struct Fabric {
    profile: LinkProfile,
    /// Directed links: index `2n` is node n's up wire, `2n+1` its down wire.
    links: Vec<Link>,
    node_count: u32,
    /// Extra per-hop switch latency (0 by default: the profile's endpoints
    /// already include the switch, as in Table 2 / Pond).
    switch_latency: SimDuration,
    /// Per-node port state: `true` while the node is off the fabric
    /// (crashed or partitioned). Fault injection toggles this.
    port_down: Vec<bool>,
    /// Per-node latency multiplier (1.0 = healthy). A degraded link
    /// stretches the loaded-latency component of every path through it.
    latency_factor: Vec<f64>,
    /// Priority-band weights when QoS queueing is enabled on every link;
    /// `None` (the default) keeps the pre-QoS strict-FIFO wires.
    bands: Option<BandWeights>,
    reads: Counter,
    writes: Counter,
    probes: Counter,
    read_latency: Histogram,
}

impl Fabric {
    /// Build a fabric of `node_count` nodes, all using `profile` links.
    ///
    /// # Panics
    /// Panics when `node_count` is zero.
    pub fn new(profile: LinkProfile, node_count: u32) -> Self {
        // lmp-lint: allow(no-panic) — constructor precondition on static
        // config, documented under `# Panics`; no fabric exists yet.
        assert!(node_count > 0, "fabric needs at least one node");
        let links = (0..node_count * 2)
            .map(|_| Link::new(profile.clone()))
            .collect();
        Fabric {
            profile,
            links,
            node_count,
            switch_latency: SimDuration::ZERO,
            port_down: vec![false; node_count as usize],
            latency_factor: vec![1.0; node_count as usize],
            bands: None,
            reads: Counter::new(),
            writes: Counter::new(),
            probes: Counter::new(),
            read_latency: Histogram::new(),
        }
    }

    /// Add extra per-hop switch latency (for exploring deeper fabrics).
    pub fn with_switch_latency(mut self, lat: SimDuration) -> Self {
        self.switch_latency = lat;
        self
    }

    /// Enable weighted priority-band queueing on every link. Off by
    /// default; enable before traffic flows (the banded queues start
    /// empty). Once enabled, plain [`Fabric::try_read`] and friends ride
    /// [`Band::Normal`], heartbeat probes ride [`Band::High`], and the
    /// `*_banded` variants pick their band explicitly.
    pub fn enable_bands(&mut self, weights: BandWeights) {
        self.bands = Some(weights);
        for link in &mut self.links {
            link.enable_bands(weights);
        }
    }

    /// Whether priority-band queueing is enabled.
    pub fn bands_enabled(&self) -> bool {
        self.bands.is_some()
    }

    /// Replace `node`'s links with `multiplier`× thicker ones — the paper's
    /// "higher-capacity link or multiple links" provisioning for a physical
    /// pool's switch↔pool connection.
    ///
    /// # Panics
    /// Panics on an unknown node or non-positive multiplier.
    pub fn provision_uplink(&mut self, node: NodeId, multiplier: f64) {
        assert!(multiplier > 0.0, "link multiplier must be positive");
        let p = LinkProfile::new(
            format!("{}@{}x{multiplier:.0}", self.profile.name, node),
            self.profile.curve,
            self.profile.bandwidth.scale(multiplier),
        );
        let up = self.up_index(node);
        let down = self.down_index(node);
        self.links[up] = Link::new(p.clone());
        self.links[down] = Link::new(p);
        if let Some(w) = self.bands {
            self.links[up].enable_bands(w);
            self.links[down].enable_bands(w);
        }
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// The default link profile.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    fn up_index(&self, node: NodeId) -> usize {
        // lmp-lint: allow(no-panic) — indexing precondition, same class as
        // slice indexing: an out-of-range NodeId is a harness bug, and the
        // explicit message beats the Vec index panic two lines later.
        assert!(node.0 < self.node_count, "unknown node {node}");
        node.0 as usize * 2
    }

    fn down_index(&self, node: NodeId) -> usize {
        // lmp-lint: allow(no-panic) — indexing precondition, same class as
        // slice indexing; see `up_index`.
        assert!(node.0 < self.node_count, "unknown node {node}");
        node.0 as usize * 2 + 1
    }

    /// Id of `node`'s up (toward-switch) wire.
    pub fn up(&self, node: NodeId) -> LinkId {
        LinkId(self.up_index(node))
    }

    /// Id of `node`'s down (from-switch) wire.
    pub fn down(&self, node: NodeId) -> LinkId {
        LinkId(self.down_index(node))
    }

    /// Direct access to a link's telemetry.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Windowed utilization of a directed link.
    pub fn link_utilization(&mut self, now: SimTime, id: LinkId) -> f64 {
        self.links[id.0].utilization(now)
    }

    /// Take `node`'s fabric port down (crash or partition). Subsequent
    /// [`Fabric::try_read`]/[`Fabric::try_write`] through it fail.
    pub fn set_port_down(&mut self, node: NodeId, down: bool) {
        let i = node.0 as usize;
        assert!(node.0 < self.node_count, "unknown node {node}");
        self.port_down[i] = down;
    }

    /// Whether `node`'s fabric port is down.
    pub fn is_port_down(&self, node: NodeId) -> bool {
        self.port_down[node.0 as usize]
    }

    /// Stretch the loaded latency of every path through `node` by
    /// `factor` (≥ 1.0 degrades, 1.0 restores). Models link-level
    /// degradation: retraining, congestion spikes, a flaky cable.
    ///
    /// # Panics
    /// Panics on an unknown node or a factor below 1.0.
    pub fn degrade_node(&mut self, node: NodeId, factor: f64) {
        assert!(node.0 < self.node_count, "unknown node {node}");
        assert!(factor >= 1.0, "degradation factor must be >= 1.0");
        self.latency_factor[node.0 as usize] = factor;
    }

    /// Restore `node`'s links to full health.
    pub fn restore_node(&mut self, node: NodeId) {
        self.latency_factor[node.0 as usize] = 1.0;
    }

    /// Current latency multiplier on `node`'s links.
    pub fn node_latency_factor(&self, node: NodeId) -> f64 {
        self.latency_factor[node.0 as usize]
    }

    fn path_latency_factor(&self, a: NodeId, b: NodeId) -> f64 {
        self.latency_factor[a.0 as usize].max(self.latency_factor[b.0 as usize])
    }

    fn check_ports(&self, requester: NodeId, holder: NodeId) -> Result<(), FabricError> {
        if self.port_down[requester.0 as usize] {
            return Err(FabricError::RequesterDown(requester));
        }
        if self.port_down[holder.0 as usize] {
            return Err(FabricError::HolderDown(holder));
        }
        Ok(())
    }

    /// A remote read: `requester` loads `bytes` that reside on `holder`.
    ///
    /// # Panics
    /// Panics if `requester == holder` — local accesses never touch the
    /// fabric and must be served by the memory model instead — or if
    /// either port is down (use [`Fabric::try_read`] under fault
    /// injection).
    #[allow(clippy::expect_used)] // documented infallible wrapper, see above
    pub fn read(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
    ) -> FabricCompletion {
        self.try_read(now, requester, holder, bytes)
            // lmp-lint: allow(no-panic) — documented infallible wrapper:
            // callers use it only on a healthy fabric; faulty paths go
            // through try_read.
            .expect("fabric port down; use try_read under fault injection")
    }

    /// Fallible remote read; see [`Fabric::read`]. Returns an error
    /// instead of completing when either endpoint's port is down, or
    /// [`FabricError::Contract`] for a self-transfer (local accesses never
    /// touch the fabric).
    pub fn try_read(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
    ) -> Result<FabricCompletion, FabricError> {
        self.try_read_banded(now, requester, holder, bytes, Band::Normal)
    }

    /// [`Fabric::try_read`] with an explicit priority band. With bands
    /// disabled (the default) the band is ignored and the wire schedule
    /// is byte-identical to [`Fabric::try_read`].
    pub fn try_read_banded(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
        band: Band,
    ) -> Result<FabricCompletion, FabricError> {
        if requester == holder {
            return Err(FabricError::Contract(
                "local access on the fabric: reads of resident memory bypass it",
            ));
        }
        self.check_ports(requester, holder)?;
        self.reads.inc();
        // Bottleneck utilization along the data path, sampled pre-admission.
        let u = self.path_utilization(now, requester, holder);
        let latency = (self.profile.curve.at(u) + self.switch_latency * 2)
            .mul_f64(self.path_latency_factor(requester, holder));

        // Request flits.
        let r_up = self.up_index(requester);
        let h_down = self.down_index(holder);
        let q1 = self.links[r_up].transfer_wire_banded(now, REQUEST_FLIT_BYTES, band);
        let q2 = self.links[h_down].transfer_wire_banded(q1.1, REQUEST_FLIT_BYTES, band);
        // Data payload.
        let h_up = self.up_index(holder);
        let r_down = self.down_index(requester);
        let d1 = self.links[h_up].transfer_wire_banded(q2.1, bytes, band);
        let d2 = self.links[r_down].transfer_wire_banded(d1.1, bytes, band);

        let wire_time = self.profile.bandwidth.time_to_transfer(bytes);
        let unqueued = now
            + self
                .profile
                .bandwidth
                .time_to_transfer(REQUEST_FLIT_BYTES)
                * 2
            + wire_time * 2;
        let complete = d2.1 + latency;
        let queued = d2.1.saturating_duration_since(unqueued);
        self.read_latency.record_duration(complete.duration_since(now));
        Ok(FabricCompletion {
            complete,
            latency,
            queued,
        })
    }

    /// Plan-time estimate of a remote read's completion, charging no wire
    /// state: chains the four FIFO `free_at` horizons and adds the
    /// profile's *unloaded* latency floor. Hedging uses this to decide
    /// whether a read is worth duplicating before any leg is admitted —
    /// queueing backlog, which the chain captures exactly, is what a hedge
    /// dodges; the loaded-latency term it omits is small and loads both
    /// legs alike. Under banded queueing the FIFO ledger still tracks
    /// aggregate occupancy, so this is the aggregate-backlog estimate.
    /// `None` when either port is down or the access would be local.
    pub fn estimate_read_completion(
        &self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
    ) -> Option<SimTime> {
        if requester == holder || self.check_ports(requester, holder).is_err() {
            return None;
        }
        let flit = self.profile.bandwidth.time_to_transfer(REQUEST_FLIT_BYTES);
        let wire = self.profile.bandwidth.time_to_transfer(bytes);
        let q1 = self.links[self.up_index(requester)].free_at(now).max(now) + flit;
        let q2 = self.links[self.down_index(holder)].free_at(q1).max(q1) + flit;
        let d1 = self.links[self.up_index(holder)].free_at(q2).max(q2) + wire;
        let d2 = self.links[self.down_index(requester)].free_at(d1).max(d1) + wire;
        let latency = (self.profile.curve.at(0.0) + self.switch_latency * 2)
            .mul_f64(self.path_latency_factor(requester, holder));
        Some(d2 + latency)
    }

    /// A hedged read race: `requester` asks both `primary` and `hedge` for
    /// the same `bytes`; the switch forwards whichever payload arrives
    /// first and **cancels the loser at the switch**, so only the winning
    /// payload occupies the requester's down wire. Both request flits and
    /// both holders' up-wire payloads are charged — the duplicate's
    /// transmit bandwidth is the real price of hedging — and the read
    /// counter records both issued reads.
    ///
    /// The race is adjudicated on up-wire arrival (`*_at_switch`), which
    /// is where a cut-through switch can first commit to one source; ties
    /// go to the primary. Returns [`FabricError::Contract`] when the two
    /// sources are not distinct remote nodes.
    pub fn try_read_hedged(
        &mut self,
        now: SimTime,
        requester: NodeId,
        primary: NodeId,
        hedge: NodeId,
        bytes: u64,
        band: Band,
    ) -> Result<HedgedCompletion, FabricError> {
        if requester == primary || requester == hedge {
            return Err(FabricError::Contract(
                "hedge race with a local leg: serve the resident copy directly",
            ));
        }
        if primary == hedge {
            return Err(FabricError::Contract(
                "hedge race needs two distinct sources",
            ));
        }
        self.check_ports(requester, primary)?;
        self.check_ports(requester, hedge)?;
        self.reads.add(2);
        let u_p = self.path_utilization(now, requester, primary);
        let u_h = self.path_utilization(now, requester, hedge);
        let lat_p = (self.profile.curve.at(u_p) + self.switch_latency * 2)
            .mul_f64(self.path_latency_factor(requester, primary));
        let lat_h = (self.profile.curve.at(u_h) + self.switch_latency * 2)
            .mul_f64(self.path_latency_factor(requester, hedge));

        // Two request flits leave the requester back to back; each holder
        // then transmits the payload on its own up wire.
        let r_up = self.up_index(requester);
        let q1p = self.links[r_up].transfer_wire_banded(now, REQUEST_FLIT_BYTES, band);
        let q1h = self.links[r_up].transfer_wire_banded(now, REQUEST_FLIT_BYTES, band);
        let p_down = self.down_index(primary);
        let h_down = self.down_index(hedge);
        let q2p = self.links[p_down].transfer_wire_banded(q1p.1, REQUEST_FLIT_BYTES, band);
        let q2h = self.links[h_down].transfer_wire_banded(q1h.1, REQUEST_FLIT_BYTES, band);
        let p_up = self.up_index(primary);
        let h_up = self.up_index(hedge);
        let dp = self.links[p_up].transfer_wire_banded(q2p.1, bytes, band);
        let dh = self.links[h_up].transfer_wire_banded(q2h.1, bytes, band);

        let primary_won = dp.1 <= dh.1;
        let (win_at_switch, latency) = if primary_won {
            (dp.1, lat_p)
        } else {
            (dh.1, lat_h)
        };
        // Only the winner crosses the requester's down wire.
        let r_down = self.down_index(requester);
        let d2 = self.links[r_down].transfer_wire_banded(win_at_switch, bytes, band);
        let complete = d2.1 + latency;
        self.read_latency.record_duration(complete.duration_since(now));
        Ok(HedgedCompletion {
            primary_won,
            complete,
            primary_at_switch: dp.1,
            hedge_at_switch: dh.1,
            latency,
        })
    }

    /// A remote write: `requester` stores `bytes` to memory on `holder`.
    /// Payload flows requester→holder; a completion flit returns.
    ///
    /// # Panics
    /// Panics if `requester == holder`, or if either port is down (use
    /// [`Fabric::try_write`] under fault injection).
    #[allow(clippy::expect_used)] // documented infallible wrapper, see above
    pub fn write(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
    ) -> FabricCompletion {
        self.try_write(now, requester, holder, bytes)
            // lmp-lint: allow(no-panic) — documented infallible wrapper:
            // callers use it only on a healthy fabric; faulty paths go
            // through try_write.
            .expect("fabric port down; use try_write under fault injection")
    }

    /// Fallible remote write; see [`Fabric::write`]. Returns an error
    /// instead of completing when either endpoint's port is down, or
    /// [`FabricError::Contract`] for a self-transfer (local accesses never
    /// touch the fabric).
    pub fn try_write(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
    ) -> Result<FabricCompletion, FabricError> {
        self.try_write_banded(now, requester, holder, bytes, Band::Normal)
    }

    /// [`Fabric::try_write`] with an explicit priority band. With bands
    /// disabled (the default) the band is ignored and the wire schedule
    /// is byte-identical to [`Fabric::try_write`].
    pub fn try_write_banded(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
        band: Band,
    ) -> Result<FabricCompletion, FabricError> {
        if requester == holder {
            return Err(FabricError::Contract(
                "local access on the fabric: writes to resident memory bypass it",
            ));
        }
        self.check_ports(requester, holder)?;
        self.writes.inc();
        let u = self.path_utilization(now, requester, holder);
        let latency = (self.profile.curve.at(u) + self.switch_latency * 2)
            .mul_f64(self.path_latency_factor(requester, holder));

        let r_up = self.up_index(requester);
        let h_down = self.down_index(holder);
        let d1 = self.links[r_up].transfer_wire_banded(now, bytes, band);
        let d2 = self.links[h_down].transfer_wire_banded(d1.1, bytes, band);
        // Completion flit back to the requester.
        let h_up = self.up_index(holder);
        let r_down = self.down_index(requester);
        let c1 = self.links[h_up].transfer_wire_banded(d2.1, REQUEST_FLIT_BYTES, band);
        let c2 = self.links[r_down].transfer_wire_banded(c1.1, REQUEST_FLIT_BYTES, band);

        let wire_time = self.profile.bandwidth.time_to_transfer(bytes);
        let unqueued = now
            + wire_time * 2
            + self
                .profile
                .bandwidth
                .time_to_transfer(REQUEST_FLIT_BYTES)
                * 2;
        let complete = c2.1 + latency;
        let queued = c2.1.saturating_duration_since(unqueued);
        Ok(FabricCompletion {
            complete,
            latency,
            queued,
        })
    }

    /// A coalesced batch stream: `ops` logical operations, already merged
    /// into `chunks` contiguous transfers, move between `requester` and
    /// `holder` as one pipelined stream.
    ///
    /// The stream pays per-stream overheads **once** — one request flit
    /// (reads) or one completion flit (writes), one loaded-latency sample —
    /// while the payload chunks pipeline through the two-wire path: chunk
    /// `i+1` occupies the holder's up wire while chunk `i` drains down to
    /// the requester. With a single chunk the wire schedule is identical to
    /// [`Fabric::try_read`]/[`Fabric::try_write`], so a batch of one costs
    /// exactly one single op.
    ///
    /// `ops` (not `chunks.len()`) is charged to the read/write counters:
    /// the counters track logical operations served, which upper layers'
    /// conservation checks compare against per-op access counts.
    ///
    /// Returns [`FabricError::Contract`] for a self-transfer, an empty
    /// chunk list, or zero `ops`.
    pub fn transfer_batch(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        op: MemOp,
        chunks: &[u64],
        ops: u64,
    ) -> Result<BatchTransfer, FabricError> {
        self.transfer_batch_banded(now, requester, holder, op, chunks, ops, Band::Normal)
    }

    /// [`Fabric::transfer_batch`] with an explicit priority band. With
    /// bands disabled (the default) the band is ignored and the wire
    /// schedule is byte-identical to [`Fabric::transfer_batch`].
    #[allow(clippy::too_many_arguments)] // mirrors transfer_batch plus the band
    pub fn transfer_batch_banded(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        op: MemOp,
        chunks: &[u64],
        ops: u64,
        band: Band,
    ) -> Result<BatchTransfer, FabricError> {
        if requester == holder {
            return Err(FabricError::Contract(
                "local access on the fabric: batch streams bypass it",
            ));
        }
        if chunks.is_empty() {
            return Err(FabricError::Contract("empty batch stream"));
        }
        if ops == 0 {
            return Err(FabricError::Contract(
                "batch stream must carry at least one op",
            ));
        }
        self.check_ports(requester, holder)?;
        match op {
            MemOp::Read => self.reads.add(ops),
            MemOp::Write => self.writes.add(ops),
        }
        let u = self.path_utilization(now, requester, holder);
        let latency = (self.profile.curve.at(u) + self.switch_latency * 2)
            .mul_f64(self.path_latency_factor(requester, holder));

        let r_up = self.up_index(requester);
        let r_down = self.down_index(requester);
        let h_up = self.up_index(holder);
        let h_down = self.down_index(holder);
        let mut chunk_done = Vec::with_capacity(chunks.len());
        let complete = match op {
            MemOp::Read => {
                // One request flit describes the whole scatter list.
                let q1 = self.links[r_up].transfer_wire_banded(now, REQUEST_FLIT_BYTES, band);
                let q2 = self.links[h_down].transfer_wire_banded(q1.1, REQUEST_FLIT_BYTES, band);
                for &bytes in chunks {
                    let d1 = self.links[h_up].transfer_wire_banded(q2.1, bytes, band);
                    let d2 = self.links[r_down].transfer_wire_banded(d1.1, bytes, band);
                    chunk_done.push(d2.1 + latency);
                }
                // `chunks` was checked non-empty above, so the loop pushed
                // at least one completion.
                let complete = chunk_done.last().copied().unwrap_or(now);
                self.read_latency.record_duration(complete.duration_since(now));
                complete
            }
            MemOp::Write => {
                let mut last_down = now;
                for &bytes in chunks {
                    let d1 = self.links[r_up].transfer_wire_banded(now, bytes, band);
                    let d2 = self.links[h_down].transfer_wire_banded(d1.1, bytes, band);
                    last_down = last_down.max(d2.1);
                }
                // One completion flit acknowledges the whole stream.
                let c1 =
                    self.links[h_up].transfer_wire_banded(last_down, REQUEST_FLIT_BYTES, band);
                let c2 = self.links[r_down].transfer_wire_banded(c1.1, REQUEST_FLIT_BYTES, band);
                let complete = c2.1 + latency;
                chunk_done.resize(chunks.len(), complete);
                complete
            }
        };
        Ok(BatchTransfer {
            complete,
            chunk_done,
            latency,
        })
    }

    /// A heartbeat probe: `prober` pings `target` and waits for the echo.
    /// A probe is two header-only flits (out on `up[prober]`/`down[target]`,
    /// back on `up[target]`/`down[prober]`) and experiences the loaded
    /// latency once, like any other round trip — so probes slow down under
    /// congestion but never move payload bandwidth. Failures report which
    /// side was unreachable: [`FabricError::RequesterDown`] means the
    /// *prober* could not transmit (inconclusive evidence about the
    /// target), [`FabricError::HolderDown`] means the target did not echo,
    /// and [`FabricError::Contract`] a self-probe.
    pub fn probe(
        &mut self,
        now: SimTime,
        prober: NodeId,
        target: NodeId,
    ) -> Result<FabricCompletion, FabricError> {
        if prober == target {
            return Err(FabricError::Contract(
                "self-probe on the fabric: a node does not heartbeat itself",
            ));
        }
        self.check_ports(prober, target)?;
        self.probes.inc();
        let u = self.path_utilization(now, prober, target);
        let latency = (self.profile.curve.at(u) + self.switch_latency * 2)
            .mul_f64(self.path_latency_factor(prober, target));

        // Probes are control traffic: with bands enabled they ride the
        // high-priority band, so failure detection stays responsive even
        // while a tenant floods the data bands. (With bands off the band
        // argument is ignored and the schedule is unchanged.)
        let p_up = self.up_index(prober);
        let t_down = self.down_index(target);
        let q1 = self.links[p_up].transfer_wire_banded(now, PROBE_BYTES, Band::High);
        let q2 = self.links[t_down].transfer_wire_banded(q1.1, PROBE_BYTES, Band::High);
        // Echo flit back to the prober.
        let t_up = self.up_index(target);
        let p_down = self.down_index(prober);
        let e1 = self.links[t_up].transfer_wire_banded(q2.1, PROBE_BYTES, Band::High);
        let e2 = self.links[p_down].transfer_wire_banded(e1.1, PROBE_BYTES, Band::High);

        let unqueued = now + self.profile.bandwidth.time_to_transfer(PROBE_BYTES) * 4;
        let complete = e2.1 + latency;
        let queued = e2.1.saturating_duration_since(unqueued);
        Ok(FabricCompletion {
            complete,
            latency,
            queued,
        })
    }

    fn path_utilization(&mut self, now: SimTime, a: NodeId, b: NodeId) -> f64 {
        let ids = [
            self.up_index(a),
            self.down_index(a),
            self.up_index(b),
            self.down_index(b),
        ];
        ids.into_iter()
            .map(|i| self.links[i].utilization(now))
            .fold(0.0, f64::max)
    }

    /// Total remote reads served.
    pub fn read_count(&self) -> u64 {
        self.reads.get()
    }

    /// Total remote writes served.
    pub fn write_count(&self) -> u64 {
        self.writes.get()
    }

    /// Total heartbeat probes served (kept separate from read/write
    /// counters so failure detection never skews traffic telemetry).
    pub fn probe_count(&self) -> u64 {
        self.probes.get()
    }

    /// Distribution of end-to-end read completion times (ns).
    pub fn read_latency_histogram(&self) -> &Histogram {
        &self.read_latency
    }

    /// Export the fabric's state into a telemetry registry: rack-level op
    /// counters plus per-node, per-direction link gauges and counters. Fill
    /// a fresh registry per export — values are published absolutely.
    pub fn export_into(&mut self, now: SimTime, reg: &mut lmp_telemetry::MetricRegistry) {
        reg.fill_counter("fabric.reads", &[], self.reads);
        reg.fill_counter("fabric.writes", &[], self.writes);
        reg.fill_counter("fabric.probes", &[], self.probes);
        reg.merge_histogram("fabric.read_latency", &[], &self.read_latency);
        for n in 0..self.node_count {
            let node = NodeId(n);
            let label = n.to_string();
            for (dir, idx) in [("up", self.up_index(node)), ("down", self.down_index(node))] {
                let labels = [("node", label.as_str()), ("dir", dir)];
                let util = self.links[idx].utilization(now);
                let queue_ns = self.links[idx]
                    .free_at(now)
                    .saturating_duration_since(now)
                    .as_nanos();
                reg.set_gauge_value("fabric.link.utilization", &labels, util);
                reg.set_gauge_value("fabric.link.queue_ns", &labels, queue_ns as f64);
                reg.fill_counter_value(
                    "fabric.link.bytes",
                    &labels,
                    self.links[idx].bytes_sent(),
                );
                reg.fill_counter_value(
                    "fabric.link.transfers",
                    &labels,
                    self.links[idx].transfer_count(),
                );
                // Per-band backlog depth, registered lazily: the gauges
                // exist only once bands are enabled, so snapshots from
                // band-free runs stay byte-identical to pre-QoS builds.
                if let Some(backlogs) = self.links[idx].band_backlogs(now) {
                    for band in Band::ALL {
                        let band_labels =
                            [("node", label.as_str()), ("dir", dir), ("band", band.label())];
                        reg.set_gauge_value(
                            "fabric.link.queue_ns",
                            &band_labels,
                            backlogs[band.index()].as_nanos() as f64,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn idle_read_latency_is_profile_min() {
        let mut f = Fabric::new(LinkProfile::link0(), 4);
        let c = f.read(t(0), NodeId(0), NodeId(1), 64);
        assert_eq!(c.latency.as_nanos(), 163);
        assert_eq!(c.queued, SimDuration::ZERO);
        // Completion includes flit+payload serialization on four wires.
        assert!(c.complete > t(163));
    }

    #[test]
    fn estimate_matches_an_idle_read_exactly() {
        // On an idle fabric the `free_at` chain is the real schedule and
        // the utilization term is zero, so the plan-time estimate equals
        // the charged completion — and charges nothing.
        let mut f = Fabric::new(LinkProfile::link1(), 4);
        let est = f
            .estimate_read_completion(t(0), NodeId(0), NodeId(1), 4096)
            .unwrap();
        let before = f.link(f.up(NodeId(1))).bytes_sent();
        assert_eq!(before, 0, "estimation must not touch the wire");
        let c = f.try_read(t(0), NodeId(0), NodeId(1), 4096).unwrap();
        assert_eq!(est, c.complete);
    }

    #[test]
    fn estimate_sees_the_backlog_and_dead_ports() {
        let mut f = Fabric::new(LinkProfile::link1(), 4);
        let idle = f
            .estimate_read_completion(t(0), NodeId(0), NodeId(1), 4096)
            .unwrap();
        // ~95 µs already leaving the holder's port.
        f.try_read(t(0), NodeId(2), NodeId(1), 2_000_000).unwrap();
        let loaded = f
            .estimate_read_completion(t(0), NodeId(0), NodeId(1), 4096)
            .unwrap();
        assert!(loaded > idle + SimDuration::from_micros(90));
        assert!(f.estimate_read_completion(t(0), NodeId(0), NodeId(0), 64).is_none());
        f.set_port_down(NodeId(1), true);
        assert!(f.estimate_read_completion(t(0), NodeId(0), NodeId(1), 64).is_none());
    }

    #[test]
    fn hedged_race_cancels_the_loser_at_the_switch() {
        let mut f = Fabric::new(LinkProfile::link1(), 4);
        // Primary's up wire is buried; the hedge's is idle.
        f.try_read(t(0), NodeId(3), NodeId(1), 2_000_000).unwrap();
        let r = f
            .try_read_hedged(t(0), NodeId(0), NodeId(1), NodeId(2), 4096, Band::Normal)
            .unwrap();
        assert!(!r.primary_won);
        assert!(r.hedge_at_switch < r.primary_at_switch);
        assert!(r.complete > r.hedge_at_switch);
        assert!(r.complete < r.primary_at_switch, "winner dodges the backlog");
        // Only the winning payload crossed the requester's down wire: the
        // loser was cancelled at the switch.
        assert_eq!(f.link(f.down(NodeId(0))).bytes_sent(), 4096);
        // Both holders spent transmit bandwidth — the price of hedging.
        assert_eq!(f.link(f.up(NodeId(2))).bytes_sent(), 4096);
        assert!(f.link(f.up(NodeId(1))).bytes_sent() >= 2_000_000 + 4096);
    }

    #[test]
    fn symmetric_race_goes_to_the_primary() {
        // Symmetric idle paths: the hedge's request flit leaves second,
        // so its payload trails by exactly one flit and the duplicate is
        // pure waste.
        let mut f = Fabric::new(LinkProfile::link1(), 4);
        let flit = f.profile().bandwidth.time_to_transfer(REQUEST_FLIT_BYTES);
        let r = f
            .try_read_hedged(t(0), NodeId(0), NodeId(1), NodeId(2), 4096, Band::Normal)
            .unwrap();
        assert!(r.primary_won);
        assert_eq!(r.hedge_at_switch, r.primary_at_switch + flit);
    }

    #[test]
    fn hedged_race_rejects_degenerate_legs() {
        let mut f = Fabric::new(LinkProfile::link1(), 4);
        assert!(matches!(
            f.try_read_hedged(t(0), NodeId(0), NodeId(0), NodeId(2), 64, Band::Normal),
            Err(FabricError::Contract(_))
        ));
        assert!(matches!(
            f.try_read_hedged(t(0), NodeId(0), NodeId(1), NodeId(1), 64, Band::Normal),
            Err(FabricError::Contract(_))
        ));
        f.set_port_down(NodeId(2), true);
        assert!(matches!(
            f.try_read_hedged(t(0), NodeId(0), NodeId(1), NodeId(2), 64, Band::Normal),
            Err(FabricError::HolderDown(NodeId(2)))
        ));
    }

    #[test]
    fn local_read_is_a_contract_error() {
        let mut f = Fabric::new(LinkProfile::link0(), 4);
        assert!(matches!(
            f.try_read(t(0), NodeId(2), NodeId(2), 64),
            Err(FabricError::Contract(_))
        ));
    }

    #[test]
    fn incast_shares_holder_uplink() {
        let mut f = Fabric::new(LinkProfile::link1(), 5);
        let holder = NodeId(4);
        let chunk = 1_000_000u64;
        // Three requesters hammer the same holder simultaneously.
        let mut ends = Vec::new();
        for round in 0..30 {
            for r in 0..3 {
                let c = f.read(t(round), NodeId(r), holder, chunk);
                ends.push(c.complete);
            }
        }
        let total_bytes = 30 * 3 * chunk;
        let done = ends.iter().max().copied().unwrap();
        let achieved = Bandwidth::measured(total_bytes, done.duration_since(t(0)));
        // Aggregate is capped by the holder's single 21 GB/s uplink.
        assert!(achieved.as_gbps() < 22.0, "achieved {achieved}");
        assert!(achieved.as_gbps() > 15.0, "achieved {achieved}");
    }

    #[test]
    fn provisioned_uplink_relieves_incast() {
        let mut thin = Fabric::new(LinkProfile::link1(), 5);
        let mut thick = Fabric::new(LinkProfile::link1(), 5);
        thick.provision_uplink(NodeId(4), 4.0);
        let chunk = 1_000_000u64;
        let run = |f: &mut Fabric| {
            let mut done = t(0);
            for round in 0..30 {
                for r in 0..4 {
                    let c = f.read(t(round), NodeId(r), NodeId(4), chunk);
                    done = done.max(c.complete);
                }
            }
            done
        };
        let thin_done = run(&mut thin);
        let thick_done = run(&mut thick);
        assert!(
            thick_done < thin_done,
            "thick uplink should finish sooner: {thick_done} vs {thin_done}"
        );
    }

    #[test]
    fn loaded_latency_rises_under_contention() {
        let mut f = Fabric::new(LinkProfile::link1(), 2);
        let first = f.read(t(0), NodeId(0), NodeId(1), 64).latency;
        let mut last = first;
        let mut now = t(0);
        for _ in 0..5_000 {
            last = f.read(now, NodeId(0), NodeId(1), 256 * 1024).latency;
            now += SimDuration::from_nanos(50);
        }
        assert!(last > first, "latency did not rise: {first} -> {last}");
        assert!(last.as_nanos() <= 527);
    }

    #[test]
    fn write_counts_and_read_counts() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        f.read(t(0), NodeId(0), NodeId(1), 64);
        f.write(t(0), NodeId(0), NodeId(2), 64);
        f.write(t(0), NodeId(1), NodeId(2), 64);
        assert_eq!(f.read_count(), 1);
        assert_eq!(f.write_count(), 2);
        assert_eq!(f.read_latency_histogram().count(), 1);
    }

    #[test]
    fn down_port_fails_and_restores() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        f.set_port_down(NodeId(1), true);
        assert_eq!(
            f.try_read(t(0), NodeId(0), NodeId(1), 64),
            Err(FabricError::HolderDown(NodeId(1)))
        );
        assert_eq!(
            f.try_write(t(0), NodeId(1), NodeId(2), 64),
            Err(FabricError::RequesterDown(NodeId(1)))
        );
        // Unaffected pairs keep flowing, and counters skip failed ops.
        assert!(f.try_read(t(0), NodeId(0), NodeId(2), 64).is_ok());
        assert_eq!(f.read_count(), 1);
        f.set_port_down(NodeId(1), false);
        assert!(f.try_read(t(0), NodeId(0), NodeId(1), 64).is_ok());
    }

    #[test]
    fn degraded_node_stretches_latency() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        let healthy = f.read(t(0), NodeId(0), NodeId(1), 64).latency;
        f.degrade_node(NodeId(1), 4.0);
        let degraded = f.read(t(0), NodeId(0), NodeId(1), 64).latency;
        assert_eq!(degraded, healthy * 4, "latency scales with the factor");
        // Paths avoiding the degraded node are untouched.
        let other = f.read(t(0), NodeId(0), NodeId(2), 64).latency;
        assert_eq!(other, healthy);
        f.restore_node(NodeId(1));
        let restored = f.read(t(0), NodeId(0), NodeId(1), 64).latency;
        assert_eq!(restored, healthy);
    }

    #[test]
    fn probe_round_trips_and_reports_down_side() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        let c = f.probe(t(0), NodeId(0), NodeId(1)).unwrap();
        assert_eq!(c.latency.as_nanos(), 163);
        assert_eq!(f.probe_count(), 1);
        // Probes never count as reads or writes.
        assert_eq!(f.read_count(), 0);
        assert_eq!(f.write_count(), 0);
        f.set_port_down(NodeId(1), true);
        assert_eq!(
            f.probe(t(0), NodeId(0), NodeId(1)),
            Err(FabricError::HolderDown(NodeId(1)))
        );
        assert_eq!(
            f.probe(t(0), NodeId(1), NodeId(2)),
            Err(FabricError::RequesterDown(NodeId(1)))
        );
        // Failed probes are not counted.
        assert_eq!(f.probe_count(), 1);
    }

    #[test]
    fn self_probe_is_a_contract_error() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        assert!(matches!(
            f.probe(t(0), NodeId(1), NodeId(1)),
            Err(FabricError::Contract(_))
        ));
    }

    #[test]
    fn single_chunk_batch_matches_single_op() {
        let mut a = Fabric::new(LinkProfile::link1(), 3);
        let mut b = Fabric::new(LinkProfile::link1(), 3);
        let single = a.try_read(t(0), NodeId(0), NodeId(1), 4096).unwrap();
        let batch = b
            .transfer_batch(t(0), NodeId(0), NodeId(1), MemOp::Read, &[4096], 1)
            .unwrap();
        assert_eq!(batch.complete, single.complete);
        assert_eq!(batch.latency, single.latency);
        assert_eq!(batch.chunk_done, vec![single.complete]);

        let ws = a.try_write(t(0), NodeId(0), NodeId(2), 4096).unwrap();
        let wb = b
            .transfer_batch(t(0), NodeId(0), NodeId(2), MemOp::Write, &[4096], 1)
            .unwrap();
        assert_eq!(wb.complete, ws.complete);
    }

    #[test]
    fn batched_stream_beats_serialized_ops() {
        let chunk = 256 * 1024u64;
        let n = 8usize;
        let mut looped = Fabric::new(LinkProfile::link1(), 2);
        let mut now = t(0);
        for _ in 0..n {
            now = looped.read(now, NodeId(0), NodeId(1), chunk).complete;
        }
        let mut batched = Fabric::new(LinkProfile::link1(), 2);
        let bt = batched
            .transfer_batch(
                t(0),
                NodeId(0),
                NodeId(1),
                MemOp::Read,
                &vec![chunk; n],
                n as u64,
            )
            .unwrap();
        assert!(
            bt.complete < now,
            "pipelined stream {} not faster than serialized {}",
            bt.complete,
            now
        );
        // Chunk completions are monotone and the last one is the stream's.
        assert!(bt.chunk_done.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*bt.chunk_done.last().unwrap(), bt.complete);
    }

    #[test]
    fn batch_counters_track_logical_ops() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        f.transfer_batch(t(0), NodeId(0), NodeId(1), MemOp::Read, &[64, 64], 5)
            .unwrap();
        f.transfer_batch(t(0), NodeId(0), NodeId(2), MemOp::Write, &[64], 3)
            .unwrap();
        assert_eq!(f.read_count(), 5, "reads counter carries the op count");
        assert_eq!(f.write_count(), 3);
        // One stream, one latency record.
        assert_eq!(f.read_latency_histogram().count(), 1);
    }

    #[test]
    fn batch_respects_down_ports() {
        let mut f = Fabric::new(LinkProfile::link0(), 3);
        f.set_port_down(NodeId(1), true);
        assert_eq!(
            f.transfer_batch(t(0), NodeId(0), NodeId(1), MemOp::Read, &[64], 1),
            Err(FabricError::HolderDown(NodeId(1)))
        );
        assert_eq!(
            f.transfer_batch(t(0), NodeId(1), NodeId(2), MemOp::Write, &[64], 1),
            Err(FabricError::RequesterDown(NodeId(1)))
        );
        // Failed streams leave the counters untouched.
        assert_eq!(f.read_count(), 0);
        assert_eq!(f.write_count(), 0);
    }

    #[test]
    fn bands_off_banded_variants_match_plain() {
        let mut a = Fabric::new(LinkProfile::link1(), 3);
        let mut b = Fabric::new(LinkProfile::link1(), 3);
        let plain = a.try_read(t(0), NodeId(0), NodeId(1), 4096).unwrap();
        let banded = b
            .try_read_banded(t(0), NodeId(0), NodeId(1), 4096, Band::Low)
            .unwrap();
        assert_eq!(plain, banded, "band ignored while bands are off");
    }

    #[test]
    fn banded_read_dodges_low_band_flood() {
        let mut f = Fabric::new(LinkProfile::link1(), 3);
        f.enable_bands(BandWeights::default());
        // A low-band bulk stream floods the 0↔1 path.
        f.transfer_batch_banded(
            t(0),
            NodeId(0),
            NodeId(1),
            MemOp::Write,
            &[2_100_000],
            1,
            Band::Low,
        )
        .unwrap();
        // A normal-band read on the same path still completes quickly:
        // it holds 4/5 of each contended wire instead of queueing behind
        // the whole flood FIFO-style.
        let c = f
            .try_read_banded(t(0), NodeId(0), NodeId(1), 4096, Band::Normal)
            .unwrap();
        let mut fifo = Fabric::new(LinkProfile::link1(), 3);
        fifo.transfer_batch(t(0), NodeId(0), NodeId(1), MemOp::Write, &[2_100_000], 1)
            .unwrap();
        let c_fifo = fifo.try_read(t(0), NodeId(0), NodeId(1), 4096).unwrap();
        assert!(
            c.complete < c_fifo.complete,
            "banded {} not faster than FIFO {} under flood",
            c.complete,
            c_fifo.complete
        );
    }

    #[test]
    fn probes_ride_the_high_band() {
        let mut f = Fabric::new(LinkProfile::link1(), 3);
        f.enable_bands(BandWeights::default());
        f.transfer_batch_banded(
            t(0),
            NodeId(0),
            NodeId(1),
            MemOp::Write,
            &[2_100_000],
            1,
            Band::Low,
        )
        .unwrap();
        // Failure detection stays responsive through the flood.
        let c = f.probe(t(0), NodeId(0), NodeId(1)).unwrap();
        assert!(
            c.queued < SimDuration::from_micros(1),
            "probe queued {} behind a low-band flood",
            c.queued
        );
    }

    #[test]
    fn export_emits_band_gauges_only_when_enabled() {
        let mut off = Fabric::new(LinkProfile::link1(), 2);
        off.read(t(0), NodeId(0), NodeId(1), 4096);
        let mut reg = lmp_telemetry::MetricRegistry::new();
        off.export_into(t(0), &mut reg);
        let plain = reg.snapshot();
        assert!(
            !plain.to_json().contains("band="),
            "band gauges must not appear while bands are off"
        );

        let mut on = Fabric::new(LinkProfile::link1(), 2);
        on.enable_bands(BandWeights::default());
        on.try_read_banded(t(0), NodeId(0), NodeId(1), 2_100_000, Band::Low)
            .unwrap();
        let mut reg = lmp_telemetry::MetricRegistry::new();
        on.export_into(t(0), &mut reg);
        let snap = reg.snapshot();
        assert!(snap.to_json().contains("band="), "band gauges exported");
    }

    #[test]
    fn disjoint_pairs_do_not_queue_on_each_other() {
        let mut f = Fabric::new(LinkProfile::link0(), 4);
        let a = f.read(t(0), NodeId(0), NodeId(1), 1_000_000);
        let b = f.read(t(0), NodeId(2), NodeId(3), 1_000_000);
        assert_eq!(a.queued, SimDuration::ZERO);
        assert_eq!(b.queued, SimDuration::ZERO);
        assert_eq!(a.complete, b.complete);
    }
}
