//! Rack-scale topology with Port-Based Routing.
//!
//! §2.2: "Global FAMs that use Port Based Routing (PBR) allow them to
//! scale to a rack." A single switch runs out of ports; the scaled form is
//! a two-level leaf–spine: every node attaches to a leaf switch, leaves
//! attach to one spine. PBR is the static routing this topology needs — a
//! destination node id resolves to a port at every hop, with no in-switch
//! state per flow.
//!
//! Same-leaf traffic behaves like the single-switch [`Fabric`]
//! (one switch hop); cross-leaf traffic additionally crosses both leaf
//! uplinks and the spine (three switch hops) and contends on the leaf
//! uplinks — the oversubscription knob `uplink_multiplier` decides how
//! painful that is.

use crate::link::Link;
use crate::profile::LinkProfile;
use crate::types::{NodeId, REQUEST_FLIT_BYTES};
use lmp_sim::prelude::*;

/// One hop of a PBR route (for tests and telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// Leaf switch `leaf`, egress toward an attached node.
    LeafDown(u32),
    /// Leaf switch `leaf`, egress toward the spine.
    LeafUp(u32),
    /// The spine, egress toward leaf `leaf`.
    SpineDown(u32),
}

/// Completion report for one operation on the leaf–spine fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackCompletion {
    /// Instant the operation is complete at the requester.
    pub complete: SimTime,
    /// End-to-end latency component.
    pub latency: SimDuration,
    /// Switch hops the data path crossed (1 same-leaf, 3 cross-leaf).
    pub hops: u32,
}

/// A two-level leaf–spine fabric.
#[derive(Debug)]
pub struct LeafSpineFabric {
    profile: LinkProfile,
    leaves: u32,
    per_leaf: u32,
    /// Per-hop latency added beyond the first switch (the profile's curve
    /// covers one-switch paths, as measured in Table 2).
    extra_hop: SimDuration,
    /// 2 wires per node: up (to its leaf), down (from it).
    node_links: Vec<Link>,
    /// 2 wires per leaf: up (to the spine), down (from it).
    leaf_links: Vec<Link>,
    reads: Counter,
    cross_leaf_reads: Counter,
}

impl LeafSpineFabric {
    /// A rack of `leaves × per_leaf` nodes. Leaf uplinks get
    /// `uplink_multiplier`× the node link bandwidth (1.0 = fully
    /// oversubscribed when a leaf is busy, `per_leaf as f64` = non-blocking).
    ///
    /// # Panics
    /// Panics for zero sizes or a non-positive multiplier.
    pub fn new(
        profile: LinkProfile,
        leaves: u32,
        per_leaf: u32,
        uplink_multiplier: f64,
        extra_hop: SimDuration,
    ) -> Self {
        // lmp-lint: allow(no-panic) — ctor precondition: an empty rack has no
        // nodes to place on; a topology bug, not a runtime fault.
        assert!(leaves > 0 && per_leaf > 0, "empty rack");
        // lmp-lint: allow(no-panic) — ctor precondition: a non-positive uplink
        // multiplier breaks the latency model.
        assert!(uplink_multiplier > 0.0, "uplink multiplier must be positive");
        let node_links = (0..leaves * per_leaf * 2)
            .map(|_| Link::new(profile.clone()))
            .collect();
        let up_profile = LinkProfile::new(
            format!("{}-leafup", profile.name),
            profile.curve,
            profile.bandwidth.scale(uplink_multiplier),
        );
        let leaf_links = (0..leaves * 2).map(|_| Link::new(up_profile.clone())).collect();
        LeafSpineFabric {
            profile,
            leaves,
            per_leaf,
            extra_hop,
            node_links,
            leaf_links,
            reads: Counter::new(),
            cross_leaf_reads: Counter::new(),
        }
    }

    /// Total nodes in the rack.
    pub fn node_count(&self) -> u32 {
        self.leaves * self.per_leaf
    }

    /// The leaf a node attaches to.
    pub fn leaf_of(&self, node: NodeId) -> u32 {
        // lmp-lint: allow(no-panic) — node ids come from this topology's own
        // enumeration; an unknown id is wiring corruption.
        assert!(node.0 < self.node_count(), "unknown node {node}");
        node.0 / self.per_leaf
    }

    /// The PBR route for the data path of a read from `holder` to
    /// `requester` (static — derived from ids alone, the PBR property).
    pub fn route(&self, requester: NodeId, holder: NodeId) -> Vec<Hop> {
        let (rl, hl) = (self.leaf_of(requester), self.leaf_of(holder));
        if rl == hl {
            vec![Hop::LeafDown(rl)]
        } else {
            vec![Hop::LeafUp(hl), Hop::SpineDown(rl), Hop::LeafDown(rl)]
        }
    }

    fn node_up(&self, n: NodeId) -> usize {
        n.0 as usize * 2
    }
    fn node_down(&self, n: NodeId) -> usize {
        n.0 as usize * 2 + 1
    }
    fn leaf_up(&self, l: u32) -> usize {
        l as usize * 2
    }
    fn leaf_down(&self, l: u32) -> usize {
        l as usize * 2 + 1
    }

    /// A remote read of `bytes` held by `holder`, issued by `requester`.
    ///
    /// # Panics
    /// Panics for a same-node "remote" access.
    pub fn read(
        &mut self,
        now: SimTime,
        requester: NodeId,
        holder: NodeId,
        bytes: u64,
    ) -> RackCompletion {
        // lmp-lint: allow(no-panic) — the pool routes local accesses off-
        // fabric before this point; a same-node fabric access is a routing
        // bug.
        assert!(requester != holder, "local access on the fabric");
        self.reads.inc();
        let same_leaf = self.leaf_of(requester) == self.leaf_of(holder);
        // Bottleneck utilization over the data path, pre-admission.
        let mut u: f64 = 0.0;
        let path_wires: Vec<usize> = if same_leaf {
            vec![self.node_up(holder), self.node_down(requester)]
        } else {
            self.cross_leaf_reads.inc();
            vec![self.node_up(holder), self.node_down(requester)]
        };
        for &w in &path_wires {
            u = u.max(self.node_links[w].utilization(now));
        }
        let (hl, rl) = (self.leaf_of(holder), self.leaf_of(requester));
        if !same_leaf {
            let (lu, ld) = (self.leaf_up(hl), self.leaf_down(rl));
            u = u.max(self.leaf_links[lu].utilization(now));
            u = u.max(self.leaf_links[ld].utilization(now));
        }
        let hops = if same_leaf { 1 } else { 3 };
        let latency = self.profile.curve.at(u) + self.extra_hop * (hops - 1) as u64;

        // Request flit to the holder.
        let (ru, hd, hu, rd) = (
            self.node_up(requester),
            self.node_down(holder),
            self.node_up(holder),
            self.node_down(requester),
        );
        let q1 = self.node_links[ru].transfer_wire(now, REQUEST_FLIT_BYTES);
        let q2 = self.node_links[hd].transfer_wire(q1.1, REQUEST_FLIT_BYTES);
        // Data payload back, hop by hop.
        let d1 = self.node_links[hu].transfer_wire(q2.1, bytes);
        let mut t = d1.1;
        if !same_leaf {
            let (lui, ldi) = (self.leaf_up(hl), self.leaf_down(rl));
            let lu = self.leaf_links[lui].transfer_wire(t, bytes);
            let ld = self.leaf_links[ldi].transfer_wire(lu.1, bytes);
            t = ld.1;
        }
        let d2 = self.node_links[rd].transfer_wire(t, bytes);
        RackCompletion {
            complete: d2.1 + latency,
            latency,
            hops,
        }
    }

    // ----- crate-internal hooks for the datacenter tier -----
    // `DatacenterFabric` reuses one `LeafSpineFabric` per rack and needs to
    // charge the rack-internal wires of a cross-rack path directly.

    /// The wire from `n` up into its leaf.
    pub(crate) fn node_up_link(&mut self, n: NodeId) -> &mut Link {
        let i = self.node_up(n);
        &mut self.node_links[i]
    }

    /// The wire from `n`'s leaf down to it.
    pub(crate) fn node_down_link(&mut self, n: NodeId) -> &mut Link {
        let i = self.node_down(n);
        &mut self.node_links[i]
    }

    /// The uplink from leaf `l` toward the (rack) spine.
    pub(crate) fn leaf_up_link(&mut self, l: u32) -> &mut Link {
        let i = self.leaf_up(l);
        &mut self.leaf_links[i]
    }

    /// The downlink from the (rack) spine toward leaf `l`.
    pub(crate) fn leaf_down_link(&mut self, l: u32) -> &mut Link {
        let i = self.leaf_down(l);
        &mut self.leaf_links[i]
    }

    /// Total bytes carried by every wire in the rack (telemetry roll-up).
    pub(crate) fn wire_bytes(&self) -> u64 {
        self.node_links
            .iter()
            .chain(self.leaf_links.iter())
            .map(Link::bytes_sent)
            .sum()
    }

    /// Total reads served.
    pub fn read_count(&self) -> u64 {
        self.reads.get()
    }

    /// Reads that crossed the spine.
    pub fn cross_leaf_read_count(&self) -> u64 {
        self.cross_leaf_reads.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack(uplink: f64) -> LeafSpineFabric {
        // 2 leaves × 4 nodes, Link1 class, 40ns per extra switch hop.
        LeafSpineFabric::new(
            LinkProfile::link1(),
            2,
            4,
            uplink,
            SimDuration::from_nanos(40),
        )
    }

    #[test]
    fn pbr_routes_are_static_and_correct() {
        let f = rack(1.0);
        assert_eq!(f.leaf_of(NodeId(0)), 0);
        assert_eq!(f.leaf_of(NodeId(3)), 0);
        assert_eq!(f.leaf_of(NodeId(4)), 1);
        assert_eq!(f.route(NodeId(0), NodeId(1)), vec![Hop::LeafDown(0)]);
        assert_eq!(
            f.route(NodeId(0), NodeId(5)),
            vec![Hop::LeafUp(1), Hop::SpineDown(0), Hop::LeafDown(0)]
        );
    }

    #[test]
    fn cross_leaf_pays_extra_hops() {
        let mut f = rack(4.0);
        let same = f.read(SimTime::ZERO, NodeId(0), NodeId(1), 64);
        let cross = f.read(SimTime::ZERO, NodeId(0), NodeId(5), 64);
        assert_eq!(same.hops, 1);
        assert_eq!(cross.hops, 3);
        assert_eq!(
            cross.latency.as_nanos(),
            same.latency.as_nanos() + 80,
            "two extra 40ns hops"
        );
        assert!(cross.complete > same.complete);
    }

    #[test]
    fn oversubscribed_uplink_throttles_cross_leaf_traffic() {
        // 1x uplink: 4 cross-leaf streams share one 21 GB/s leaf uplink.
        let mut thin = rack(1.0);
        let mut fat = rack(4.0);
        let run = |f: &mut LeafSpineFabric| {
            let mut done = SimTime::ZERO;
            for round in 0..50u64 {
                for n in 0..4u32 {
                    // Every leaf-0 node reads from its leaf-1 counterpart.
                    let c = f.read(SimTime::from_nanos(round), NodeId(n), NodeId(4 + n), 500_000);
                    done = done.max(c.complete);
                }
            }
            done
        };
        let thin_done = run(&mut thin);
        let fat_done = run(&mut fat);
        assert!(
            thin_done.as_nanos() > fat_done.as_nanos() * 3,
            "1x uplink should be ~4x slower: {thin_done} vs {fat_done}"
        );
        assert_eq!(thin.cross_leaf_read_count(), 200);
    }

    #[test]
    fn same_leaf_traffic_ignores_the_spine() {
        let mut f = rack(1.0);
        // Saturate the leaf-0 uplink with cross-leaf traffic…
        for i in 0..50u64 {
            f.read(SimTime::from_nanos(i), NodeId(4), NodeId(0), 2_000_000);
        }
        // …same-leaf latency within leaf 1 is unaffected (its own wires are
        // idle).
        let c = f.read(SimTime::ZERO, NodeId(5), NodeId(6), 64);
        assert_eq!(c.latency.as_nanos(), 261, "unloaded same-leaf latency");
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn out_of_rack_node_rejected() {
        let f = rack(1.0);
        f.leaf_of(NodeId(8));
    }
}
