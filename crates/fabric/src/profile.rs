//! Link performance profiles.
//!
//! A [`LinkProfile`] bundles the three numbers that characterize a fabric
//! link in the paper: unloaded latency, fully-loaded latency, and bandwidth.
//! The presets are the paper's measured/quoted configurations:
//!
//! | preset | source | min lat | max lat | bandwidth |
//! |---|---|---|---|---|
//! | [`LinkProfile::link0`] | Table 2, default UPI | 163 ns | 418 ns | 34.5 GB/s |
//! | [`LinkProfile::link1`] | Table 2, slowed UPI (0.7 GHz uncore) | 261 ns | 527 ns | 21.0 GB/s |
//! | [`LinkProfile::pond`]  | Table 1, Pond CXL estimate | 280 ns | 700 ns | 31 GB/s |
//! | [`LinkProfile::fpga`]  | Table 1, FPGA CXL prototype | 303 ns | 758 ns | 20 GB/s |
//!
//! Pond/FPGA report only unloaded latency; their max is extrapolated with the
//! same ~2.5× loaded/unloaded ratio Table 2 exhibits.

use lmp_sim::latency::LoadedLatencyCurve;
use lmp_sim::time::SimDuration;
use lmp_sim::units::Bandwidth;

/// Performance envelope of one fabric link (or link class).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Human-readable name used in reports ("Link0", "Link1", …).
    pub name: String,
    /// Read latency as a function of utilization.
    pub curve: LoadedLatencyCurve,
    /// Peak one-direction bandwidth.
    pub bandwidth: Bandwidth,
}

impl LinkProfile {
    /// Build a custom profile.
    pub fn new(name: impl Into<String>, curve: LoadedLatencyCurve, bandwidth: Bandwidth) -> Self {
        LinkProfile {
            name: name.into(),
            curve,
            bandwidth,
        }
    }

    /// Table 2 "Link0": the default UPI link the paper treats as an *upper
    /// bound* on future CXL fabric performance.
    pub fn link0() -> Self {
        Self::new(
            "Link0",
            LoadedLatencyCurve::from_nanos(163, 418),
            Bandwidth::from_gbps(34.5),
        )
    }

    /// Table 2 "Link1": UPI slowed by dropping the remote uncore to 0.7 GHz;
    /// the paper's closer approximation of real CXL fabrics.
    pub fn link1() -> Self {
        Self::new(
            "Link1",
            LoadedLatencyCurve::from_nanos(261, 527),
            Bandwidth::from_gbps(21.0),
        )
    }

    /// Table 1 "CXL remote memory" per Pond: 280 ns latency (switch
    /// estimate), 31 GB/s (PCIe5 ×8 max).
    pub fn pond() -> Self {
        Self::new(
            "Pond",
            LoadedLatencyCurve::from_nanos(280, 700),
            Bandwidth::from_gbps(31.0),
        )
    }

    /// Table 1 "CXL remote memory" per the FPGA prototype: 303 ns, 20 GB/s
    /// (DDR4 behind PCIe5 ×16).
    pub fn fpga() -> Self {
        Self::new(
            "FPGA",
            LoadedLatencyCurve::from_nanos(303, 758),
            Bandwidth::from_gbps(20.0),
        )
    }

    /// Derive a profile scaled by a "slowdown of disaggregated memory
    /// relative to local memory" factor, the parameterization the paper uses
    /// when exploring fabrics that do not exist yet (§1): latency endpoints
    /// are multiplied by `slowdown`, bandwidth divided by it.
    ///
    /// # Panics
    /// Panics for non-positive `slowdown`.
    pub fn slowed(&self, slowdown: f64) -> Self {
        assert!(slowdown > 0.0, "slowdown must be positive: {slowdown}");
        let min = self.curve.min().mul_f64(slowdown);
        let max = self.curve.max().mul_f64(slowdown);
        Self::new(
            format!("{}x{:.1}", self.name, slowdown),
            LoadedLatencyCurve::new(min, max),
            self.bandwidth.scale(1.0 / slowdown),
        )
    }

    /// Unloaded read latency.
    pub fn min_latency(&self) -> SimDuration {
        self.curve.min()
    }

    /// Fully loaded read latency.
    pub fn max_latency(&self) -> SimDuration {
        self.curve.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_tables() {
        let l0 = LinkProfile::link0();
        assert_eq!(l0.min_latency().as_nanos(), 163);
        assert_eq!(l0.max_latency().as_nanos(), 418);
        assert!((l0.bandwidth.as_gbps() - 34.5).abs() < 1e-9);

        let l1 = LinkProfile::link1();
        assert_eq!(l1.min_latency().as_nanos(), 261);
        assert_eq!(l1.max_latency().as_nanos(), 527);
        assert!((l1.bandwidth.as_gbps() - 21.0).abs() < 1e-9);
    }

    #[test]
    fn table1_presets() {
        assert_eq!(LinkProfile::pond().min_latency().as_nanos(), 280);
        assert!((LinkProfile::fpga().bandwidth.as_gbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_scales_both_axes() {
        let s = LinkProfile::link0().slowed(2.0);
        assert_eq!(s.min_latency().as_nanos(), 326);
        assert!((s.bandwidth.as_gbps() - 17.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slowdown must be positive")]
    fn zero_slowdown_rejected() {
        let _ = LinkProfile::link0().slowed(0.0);
    }
}
