//! Fabric-wide identifier types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node attached to the fabric: a server, or (in the physical-pool
/// baseline) the memory-pool appliance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed link in the fabric (identified by index into the fabric's
/// link table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// The direction of a memory operation crossing the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// CXL.mem read (MemRd → data response).
    Read,
    /// CXL.mem write (MemWr → completion).
    Write,
}

/// Size in bytes of a CXL.mem request flit (header-only message).
pub const REQUEST_FLIT_BYTES: u64 = 64;

/// Size in bytes of a heartbeat probe: one flit out, one flit back.
/// Probes are deliberately header-only so a detector sweeping the whole
/// rack every few hundred nanoseconds stays invisible in the bandwidth
/// accounting of real traffic.
pub const PROBE_BYTES: u64 = REQUEST_FLIT_BYTES;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "l7");
    }
}
