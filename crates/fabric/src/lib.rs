// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-fabric — CXL-like rack fabric model
//!
//! The paper assumes a CXL 3.0 fabric (Global Shared Fabric-Attached Memory
//! with Port-Based Routing) that does not exist yet; like the paper, which
//! emulates it with UPI links, we model it with parameterized links whose
//! loaded-latency endpoints and bandwidths are taken from the paper's
//! Table 1 and Table 2.
//!
//! * [`profile::LinkProfile`] — the `(min latency, max latency, bandwidth)`
//!   envelope, with `Link0`/`Link1`/`Pond`/`FPGA` presets.
//! * [`link::Link`] — one directed wire: FIFO serialization plus a
//!   load-dependent latency component.
//! * [`fabric::Fabric`] — a star topology through one switch, with
//!   emergent incast and per-link telemetry.
//! * [`topology::LeafSpineFabric`] — one rack: nodes → leaves → spine with
//!   Port-Based Routing and oversubscribed leaf uplinks.
//! * [`datacenter::DatacenterFabric`] — N racks joined by an
//!   oversubscribed datacenter spine, with cross-rack routing and per-rack
//!   port telemetry.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datacenter;
pub mod fabric;
pub mod link;
pub mod profile;
pub mod topology;
pub mod types;

pub use datacenter::{DatacenterFabric, DcCompletion};
pub use fabric::{BatchTransfer, Fabric, FabricCompletion, FabricError, HedgedCompletion};
pub use link::{Link, LinkTransfer};
pub use lmp_qos::{Band, BandWeights};
pub use profile::LinkProfile;
pub use topology::{Hop, LeafSpineFabric, RackCompletion};
pub use types::{LinkId, MemOp, NodeId, PROBE_BYTES, REQUEST_FLIT_BYTES};
