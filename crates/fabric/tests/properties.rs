// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests for the fabric model.

use lmp_fabric::{Fabric, Link, LinkProfile, NodeId};
use lmp_sim::prelude::*;
use proptest::prelude::*;

fn any_profile() -> impl Strategy<Value = LinkProfile> {
    (50u64..500, 0u64..2_000, 1.0f64..100.0).prop_map(|(min, extra, gbps)| {
        LinkProfile::new(
            "prop",
            lmp_sim::latency::LoadedLatencyCurve::from_nanos(min, min + extra),
            Bandwidth::from_gbps(gbps),
        )
    })
}

proptest! {
    /// Link latency is always within the profile's [min, max] envelope,
    /// whatever the traffic pattern.
    #[test]
    fn link_latency_bounded(
        profile in any_profile(),
        ops in proptest::collection::vec((0u64..10_000, 64u64..1_000_000), 1..200),
    ) {
        let (lo, hi) = (profile.min_latency(), profile.max_latency());
        let mut link = Link::new(profile);
        let mut sorted = ops.clone();
        sorted.sort_unstable();
        for (t, bytes) in sorted {
            let tr = link.transfer(SimTime::from_nanos(t), bytes);
            prop_assert!(tr.latency >= lo && tr.latency <= hi,
                "latency {} outside [{lo}, {hi}]", tr.latency);
            prop_assert!(tr.wire_done >= tr.start);
        }
    }

    /// Wire occupancy is work-conserving and FIFO: with admissions in time
    /// order, starts never precede admissions and never overlap.
    #[test]
    fn link_wire_is_serial(
        ops in proptest::collection::vec((0u64..10_000, 64u64..100_000), 1..100),
    ) {
        let mut link = Link::new(LinkProfile::link1());
        let mut sorted = ops.clone();
        sorted.sort_unstable();
        let mut last_done = SimTime::ZERO;
        for (t, bytes) in sorted {
            let now = SimTime::from_nanos(t);
            let tr = link.transfer(now, bytes);
            prop_assert!(tr.start >= now);
            prop_assert!(tr.start >= last_done, "wire overlap");
            last_done = tr.wire_done;
        }
    }

    /// Fabric reads complete after their issue time plus at least the
    /// unloaded latency, and byte counters add up.
    #[test]
    fn fabric_read_lower_bound(
        pairs in proptest::collection::vec((0u32..4, 0u32..4, 64u64..1_000_000), 1..100),
    ) {
        let mut fabric = Fabric::new(LinkProfile::link0(), 4);
        let mut total = 0u64;
        for (a, b, bytes) in pairs {
            if a == b {
                continue;
            }
            let c = fabric.read(SimTime::ZERO, NodeId(a), NodeId(b), bytes);
            prop_assert!(
                c.complete >= SimTime::ZERO + SimDuration::from_nanos(163),
                "read faster than unloaded latency"
            );
            total += bytes;
        }
        // Every payload crossed exactly two wires (holder up + requester
        // down), plus two 64B flits.
        let wires: u64 = (0..4)
            .flat_map(|n| {
                [
                    fabric.link(fabric.up(NodeId(n))).bytes_sent(),
                    fabric.link(fabric.down(NodeId(n))).bytes_sent(),
                ]
            })
            .sum();
        prop_assert_eq!(wires, total * 2 + fabric.read_count() * 2 * 64);
    }

    /// Aggregate throughput through one node never exceeds its link rate.
    #[test]
    fn node_throughput_capped(
        requesters in proptest::collection::vec(0u32..3, 10..100),
    ) {
        let mut fabric = Fabric::new(LinkProfile::link1(), 4);
        let holder = NodeId(3);
        let chunk = 500_000u64;
        let mut done = SimTime::ZERO;
        let mut total = 0u64;
        for (i, r) in requesters.iter().enumerate() {
            let c = fabric.read(SimTime::from_nanos(i as u64), NodeId(*r), holder, chunk);
            done = done.max(c.complete);
            total += chunk;
        }
        let bw = Bandwidth::measured(total, done.duration_since(SimTime::ZERO));
        prop_assert!(bw.as_gbps() <= 21.5, "exceeded holder uplink: {bw}");
    }
}
