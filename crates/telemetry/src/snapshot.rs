//! Immutable, mergeable, deterministically serializable telemetry snapshots.
//!
//! A [`TelemetrySnapshot`] is a frozen view of one registry. Snapshots from
//! different nodes merge commutatively — counters saturate-add, gauges sum,
//! histograms bucket-merge — so per-node registries roll up to a rack-level
//! view. Serialization is hand-written over `BTreeMap` iteration order, so
//! the JSON (and therefore the [`digest`](TelemetrySnapshot::digest)) is a
//! pure function of the recorded values: same seed, same bytes.

use crate::registry::MetricKey;
use lmp_sim::prelude::*;
use std::collections::BTreeMap;
use std::fmt;

/// A counter's exported state: its value and the sticky overflow flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterValue {
    /// Saturating accumulated value.
    pub value: u64,
    /// True if the counter ever saturated (here or before a merge).
    pub overflowed: bool,
}

/// Frozen, mergeable view of a [`MetricRegistry`](crate::MetricRegistry).
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    counters: BTreeMap<MetricKey, CounterValue>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- construction (used by `MetricRegistry::snapshot`) -----

    /// Insert (or merge into) a counter entry.
    pub fn insert_counter(&mut self, key: MetricKey, v: CounterValue) {
        let slot = self.counters.entry(key).or_default();
        let mut merged = Counter::from_parts(slot.value, slot.overflowed || v.overflowed);
        merged.add(v.value);
        *slot = CounterValue {
            value: merged.get(),
            overflowed: merged.overflowed(),
        };
    }

    /// Insert a gauge entry (summing with any existing entry).
    pub fn insert_gauge(&mut self, key: MetricKey, v: f64) {
        *self.gauges.entry(key).or_insert(0.0) += v;
    }

    /// Insert (or bucket-merge into) a histogram entry.
    pub fn insert_histogram(&mut self, key: MetricKey, h: Histogram) {
        match self.histograms.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(h);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                e.get_mut().merge(&h);
            }
        }
    }

    // ----- merge: per-node snapshots roll up to rack level -----

    /// Merge `other` into `self`. Counters saturate-add and OR their
    /// overflow flags, gauges sum (export per-node gauges with a `node`
    /// label if a sum is not meaningful), histograms bucket-merge.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (key, &v) in &other.counters {
            self.insert_counter(key.clone(), v);
        }
        for (key, &v) in &other.gauges {
            self.insert_gauge(key.clone(), v);
        }
        for (key, h) in &other.histograms {
            self.insert_histogram(key.clone(), h.clone());
        }
    }

    // ----- accessors -----

    /// Counter value for an exact `name{labels}` key (0 if absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&MetricKey::new(name, labels))
            .map_or(0, |c| c.value)
    }

    /// Counter value plus overflow flag, if the key exists.
    pub fn counter_with_flag(&self, name: &str, labels: &[(&str, &str)]) -> Option<(u64, bool)> {
        self.counters
            .get(&MetricKey::new(name, labels))
            .map(|c| (c.value, c.overflowed))
    }

    /// Sum of a counter across all label sets sharing `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        let mut total = Counter::new();
        for (key, v) in &self.counters {
            if key.name == name {
                total.add(v.value);
            }
        }
        total.get()
    }

    /// Gauge value for an exact key.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&MetricKey::new(name, labels)).copied()
    }

    /// Maximum gauge value across all label sets sharing `name`.
    pub fn gauge_max(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .filter(|(key, _)| key.name == name)
            .map(|(_, &v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Histogram for an exact key.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms.get(&MetricKey::new(name, labels))
    }

    /// Number of instruments across all three kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// True if no instruments were exported.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate counter entries in deterministic key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, &CounterValue)> {
        self.counters.iter()
    }

    /// Iterate gauge entries in deterministic key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, &f64)> {
        self.gauges.iter()
    }

    /// Iterate histogram entries in deterministic key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }

    // ----- deterministic export -----

    /// Deterministic JSON rendering. Keys appear in `BTreeMap` order;
    /// histograms serialize as a fixed summary (count/min/max/mean and
    /// p50/p95/p99) so the output is byte-stable across runs of the same
    /// seed.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"counters\":{");
        for (i, (key, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_key(&mut out, key);
            if v.overflowed {
                out.push_str(&format!(
                    "{{\"value\":{},\"overflowed\":true}}",
                    v.value
                ));
            } else {
                out.push_str(&v.value.to_string());
            }
        }
        out.push_str("},\"gauges\":{");
        for (i, (key, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_key(&mut out, key);
            out.push_str(&format_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_key(&mut out, key);
            out.push_str(&format!(
                "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count(),
                h.min(),
                h.max(),
                format_f64(h.mean()),
                h.p50(),
                h.p95(),
                h.p99(),
            ));
        }
        out.push_str("}}");
        out
    }

    /// FNV-1a digest over the JSON bytes — a compact determinism witness
    /// that pairs with the harness's trace digest.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.to_json().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// `"name{a=1,b=2}":` — the Display form of the key, JSON-escaped, plus the
/// colon separator.
fn push_json_key(out: &mut String, key: &MetricKey) {
    out.push('"');
    for ch in key.to_string().chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\":");
}

/// Deterministic float formatting: integers render without a fraction,
/// everything else through Rust's shortest-roundtrip `{}`.
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<48} {:>16}", "counter", "value")?;
        for (key, v) in &self.counters {
            let flag = if v.overflowed { " (overflowed)" } else { "" };
            writeln!(f, "{:<48} {:>16}{flag}", key.to_string(), v.value)?;
        }
        writeln!(f, "{:<48} {:>16}", "gauge", "value")?;
        for (key, v) in &self.gauges {
            writeln!(f, "{:<48} {:>16.3}", key.to_string(), v)?;
        }
        writeln!(
            f,
            "{:<40} {:>9} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50", "p99", "max"
        )?;
        for (key, h) in &self.histograms {
            writeln!(
                f,
                "{:<40} {:>9} {:>10} {:>10} {:>10}",
                key.to_string(),
                h.count(),
                h.p50(),
                h.p99(),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    fn sample_registry(offset: u64) -> MetricRegistry {
        let mut r = MetricRegistry::new();
        let c = r.counter("pool.reads", &[("server", "0")]);
        r.add(c, 10 + offset);
        let g = r.gauge("link.util", &[("node", "0")]);
        r.set(g, 0.5);
        let h = r.histogram("lat", &[]);
        for v in 1..=100u64 {
            r.record(h, v * (offset + 1));
        }
        r
    }

    #[test]
    fn merge_rolls_up_counters_gauges_histograms() {
        let a = sample_registry(0).snapshot();
        let b = sample_registry(5).snapshot();
        let mut rack = a.clone();
        rack.merge(&b);
        assert_eq!(rack.counter("pool.reads", &[("server", "0")]), 25);
        assert_eq!(rack.gauge("link.util", &[("node", "0")]), Some(1.0));
        assert_eq!(rack.histogram("lat", &[]).unwrap().count(), 200);
    }

    #[test]
    fn merge_is_commutative_on_json() {
        let a = sample_registry(1).snapshot();
        let b = sample_registry(7).snapshot();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.digest(), ba.digest());
    }

    #[test]
    fn json_is_deterministic_and_digest_tracks_content() {
        let a = sample_registry(0).snapshot();
        let b = sample_registry(0).snapshot();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.digest(), b.digest());
        let c = sample_registry(1).snapshot();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn overflowed_counter_survives_merge_and_json() {
        let mut r = MetricRegistry::new();
        r.fill_counter("big", &[], Counter::from_parts(u64::MAX, true));
        let snap = r.snapshot();
        let mut rack = TelemetrySnapshot::new();
        rack.merge(&snap);
        assert_eq!(rack.counter_with_flag("big", &[]), Some((u64::MAX, true)));
        assert!(rack.to_json().contains("\"overflowed\":true"));
    }

    #[test]
    fn totals_and_maxima_aggregate_across_labels() {
        let mut r = MetricRegistry::new();
        r.fill_counter_value("hits", &[("server", "0")], 3);
        r.fill_counter_value("hits", &[("server", "1")], 4);
        r.set_gauge_value("util", &[("node", "0")], 0.2);
        r.set_gauge_value("util", &[("node", "1")], 0.9);
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("hits"), 7);
        assert_eq!(snap.gauge_max("util"), Some(0.9));
    }
}
