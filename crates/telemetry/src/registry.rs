//! The metric registry: named, labelled instruments with cheap handles.
//!
//! Hot paths register an instrument once (`counter`/`gauge`/`histogram`)
//! and then record through a `Copy` handle — an index, so recording is one
//! bounds-checked array write, no string hashing per event. Exporters that
//! publish whole counters at once (a fabric or memory node dumping its
//! internal state) use the absolute-fill API (`fill_counter`,
//! `set_gauge_value`, `merge_histogram`) against a **fresh** registry per
//! export, so re-exporting never double counts.

use crate::snapshot::{CounterValue, TelemetrySnapshot};
use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Identity of one instrument: a name plus sorted key=value labels.
///
/// Labels are sorted at construction so the same logical instrument always
/// maps to the same key regardless of call-site label order, and so every
/// snapshot iterates instruments in one deterministic order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Instrument name, dot-separated by convention (`fabric.link.bytes`).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);
/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);
/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of counters, gauges, and log-linear histograms.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: Vec<Counter>,
    gauges: Vec<f64>,
    histograms: Vec<Histogram>,
    counter_index: BTreeMap<MetricKey, usize>,
    gauge_index: BTreeMap<MetricKey, usize>,
    histogram_index: BTreeMap<MetricKey, usize>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- registration (get-or-create; idempotent) -----

    /// Handle to the counter `name{labels}`, creating it at zero.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterId {
        let key = MetricKey::new(name, labels);
        let next = self.counters.len();
        let idx = *self.counter_index.entry(key).or_insert(next);
        if idx == next {
            self.counters.push(Counter::new());
        }
        CounterId(idx)
    }

    /// Handle to the gauge `name{labels}`, creating it at zero.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeId {
        let key = MetricKey::new(name, labels);
        let next = self.gauges.len();
        let idx = *self.gauge_index.entry(key).or_insert(next);
        if idx == next {
            self.gauges.push(0.0);
        }
        GaugeId(idx)
    }

    /// Handle to the histogram `name{labels}`, creating it empty.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> HistogramId {
        let key = MetricKey::new(name, labels);
        let next = self.histograms.len();
        let idx = *self.histogram_index.entry(key).or_insert(next);
        if idx == next {
            self.histograms.push(Histogram::new());
        }
        HistogramId(idx)
    }

    // ----- hot-path recording through handles -----

    /// Add `n` to a counter (saturating; see [`Counter`]).
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].add(n);
    }

    /// Add one to a counter.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].inc();
    }

    /// Set a gauge to `value`.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0] = value;
    }

    /// Record one histogram sample.
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].record(value);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, id: HistogramId, d: SimDuration) {
        self.histograms[id.0].record(d.as_nanos());
    }

    /// Current value of a counter handle.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].get()
    }

    // ----- absolute-fill API for exporters -----

    /// Publish a whole [`Counter`] (value plus sticky overflow flag) under
    /// `name{labels}`. Adds onto any prior fill of the same key, so fill a
    /// fresh registry per export rather than re-filling a long-lived one.
    pub fn fill_counter(&mut self, name: &str, labels: &[(&str, &str)], c: Counter) {
        let id = self.counter(name, labels);
        let mut merged = self.counters[id.0];
        merged.add(c.get());
        self.counters[id.0] = Counter::from_parts(
            merged.get(),
            merged.overflowed() || c.overflowed(),
        );
    }

    /// Publish a plain value as a counter under `name{labels}`.
    pub fn fill_counter_value(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let id = self.counter(name, labels);
        self.counters[id.0].add(value);
    }

    /// Publish a gauge value under `name{labels}` (overwrites).
    pub fn set_gauge_value(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let id = self.gauge(name, labels);
        self.gauges[id.0] = value;
    }

    /// Merge a whole histogram into `name{labels}`.
    pub fn merge_histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &Histogram) {
        let id = self.histogram(name, labels);
        self.histograms[id.0].merge(h);
    }

    /// Freeze the registry's current state into an immutable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        for (key, &idx) in &self.counter_index {
            let c = self.counters[idx];
            snap.insert_counter(
                key.clone(),
                CounterValue {
                    value: c.get(),
                    overflowed: c.overflowed(),
                },
            );
        }
        for (key, &idx) in &self.gauge_index {
            snap.insert_gauge(key.clone(), self.gauges[idx]);
        }
        for (key, &idx) in &self.histogram_index {
            snap.insert_histogram(key.clone(), self.histograms[idx].clone());
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_stable_and_idempotent() {
        let mut r = MetricRegistry::new();
        let a = r.counter("x", &[("server", "0")]);
        let b = r.counter("x", &[("server", "0")]);
        assert_eq!(a, b, "same key, same handle");
        let c = r.counter("x", &[("server", "1")]);
        assert_ne!(a, c);
        r.inc(a);
        r.add(b, 4);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.counter_value(c), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut r = MetricRegistry::new();
        let a = r.counter("y", &[("a", "1"), ("b", "2")]);
        let b = r.counter("y", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
    }

    #[test]
    fn gauges_and_histograms_record() {
        let mut r = MetricRegistry::new();
        let g = r.gauge("util", &[]);
        r.set(g, 0.75);
        let h = r.histogram("lat", &[]);
        r.record(h, 100);
        r.record_duration(h, SimDuration::from_nanos(300));
        let snap = r.snapshot();
        assert_eq!(snap.gauge("util", &[]), Some(0.75));
        assert_eq!(snap.histogram("lat", &[]).unwrap().count(), 2);
    }

    #[test]
    fn fill_counter_carries_overflow_flag() {
        let mut src = Counter::new();
        src.add(u64::MAX);
        src.inc(); // saturates, sets the sticky flag
        let mut r = MetricRegistry::new();
        r.fill_counter("pinned", &[], src);
        let snap = r.snapshot();
        let (v, overflowed) = snap.counter_with_flag("pinned", &[]).unwrap();
        assert_eq!(v, u64::MAX);
        assert!(overflowed);
    }
}
