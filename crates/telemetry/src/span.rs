//! Structured sim-time spans for flamegraph-style latency attribution.
//!
//! A pool access decomposes into phases — translate, DRAM service, fabric
//! hop — and the question "where did the nanoseconds go?" needs more than a
//! histogram: it needs parent/child structure. A [`SpanRecorder`] collects
//! closed intervals of sim-time with optional parent links; *self time*
//! (a span's duration minus its children's) attributes every nanosecond of
//! a root span to exactly one phase, so the breakdown sums back to the
//! end-to-end latency.

use lmp_sim::prelude::*;
use std::collections::BTreeMap;

/// Handle to a recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(u64);

/// One closed interval of sim-time with an optional parent.
#[derive(Debug, Clone)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Phase name (`access`, `dram`, `fabric`, ...).
    pub name: &'static str,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval (== `start` while still open).
    pub end: SimTime,
}

impl Span {
    /// Duration in nanoseconds (0 while open).
    pub fn duration_ns(&self) -> u64 {
        self.end.duration_since(self.start).as_nanos()
    }
}

/// Collects spans; answers self-time and root-time queries.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<Span>,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a span at `start`. Close it with [`span_end`](Self::span_end).
    pub fn span_start(
        &mut self,
        name: &'static str,
        parent: Option<SpanId>,
        start: SimTime,
    ) -> SpanId {
        let id = SpanId(self.spans.len() as u64);
        self.spans.push(Span {
            id,
            parent,
            name,
            start,
            end: start,
        });
        id
    }

    /// Close a span at `end`.
    pub fn span_end(&mut self, id: SpanId, end: SimTime) {
        let span = &mut self.spans[id.0 as usize];
        debug_assert!(end >= span.start, "span {id:?} ends before it starts");
        span.end = end;
    }

    /// Record an already-closed interval in one call.
    pub fn record_closed(
        &mut self,
        name: &'static str,
        parent: Option<SpanId>,
        start: SimTime,
        end: SimTime,
    ) -> SpanId {
        let id = self.span_start(name, parent, start);
        self.span_end(id, end);
        id
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Drop all recorded spans (registries persist; spans are per-window).
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Self time per phase name: each span's duration minus the summed
    /// durations of its direct children (clamped at zero if children
    /// overlap), keyed by name. Because children partition their parent,
    /// the values sum to [`total_root_ns`](Self::total_root_ns).
    pub fn self_time_by_name(&self) -> BTreeMap<&'static str, u64> {
        let mut child_ns = vec![0u64; self.spans.len()];
        for span in &self.spans {
            if let Some(parent) = span.parent {
                child_ns[parent.0 as usize] =
                    child_ns[parent.0 as usize].saturating_add(span.duration_ns());
            }
        }
        let mut by_name: BTreeMap<&'static str, u64> = BTreeMap::new();
        for span in &self.spans {
            let own = span.duration_ns().saturating_sub(child_ns[span.id.0 as usize]);
            *by_name.entry(span.name).or_insert(0) += own;
        }
        by_name
    }

    /// Total duration of all root (parentless) spans, in nanoseconds.
    pub fn total_root_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.parent.is_none())
            .map(|s| s.duration_ns())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    #[test]
    fn self_time_partitions_the_root() {
        let mut rec = SpanRecorder::new();
        // access [0, 100) = dram [0, 30) + fabric [30, 100)
        let root = rec.span_start("access", None, t(0));
        rec.record_closed("dram", Some(root), t(0), t(30));
        rec.record_closed("fabric", Some(root), t(30), t(100));
        rec.span_end(root, t(100));

        let own = rec.self_time_by_name();
        assert_eq!(own.get("dram"), Some(&30));
        assert_eq!(own.get("fabric"), Some(&70));
        assert_eq!(own.get("access"), Some(&0), "fully covered by children");
        let total: u64 = own.values().sum();
        assert_eq!(total, rec.total_root_ns());
        assert_eq!(total, 100);
    }

    #[test]
    fn uncovered_parent_time_is_parent_self_time() {
        let mut rec = SpanRecorder::new();
        let root = rec.record_closed("access", None, t(0), t(50));
        rec.record_closed("dram", Some(root), t(0), t(20));
        let own = rec.self_time_by_name();
        assert_eq!(own.get("access"), Some(&30));
        assert_eq!(own.get("dram"), Some(&20));
        assert_eq!(own.values().sum::<u64>(), rec.total_root_ns());
    }

    #[test]
    fn multiple_roots_accumulate() {
        let mut rec = SpanRecorder::new();
        rec.record_closed("access", None, t(0), t(10));
        rec.record_closed("access", None, t(10), t(25));
        assert_eq!(rec.total_root_ns(), 25);
        assert_eq!(rec.self_time_by_name().get("access"), Some(&25));
        assert_eq!(rec.len(), 2);
        rec.clear();
        assert!(rec.is_empty());
    }
}
