// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-telemetry — rack-wide observability
//!
//! The paper's sizing and locality challenges presuppose a live, rack-wide
//! view of per-node, per-link, and per-app behaviour that a periodic global
//! optimizer can consume. This crate is that view, in three layers:
//!
//! - **[`MetricRegistry`]** — named, labelled instruments (counters, gauges,
//!   log-linear histograms, reusing `lmp-sim::stats`). Hot paths record
//!   through `Copy` handles: one array write, no string hashing per event.
//! - **[`SpanRecorder`]** — structured sim-time spans with parent links, so
//!   a pool access can be attributed across translate → fabric hop → remote
//!   DRAM and the per-phase breakdown sums exactly to end-to-end latency.
//! - **[`TelemetrySnapshot`]** — frozen, mergeable views: per-node registries
//!   roll up to rack level, serialize to deterministic JSON (same seed ⇒
//!   byte-identical output), and fold to an FNV-1a digest that pairs with
//!   the harness's trace digest as a determinism witness.
//!
//! The consumer that turns this from dashboards into a control plane — the
//! `SizingController` that re-derives demands from observed hotness and
//! re-runs the solver — lives in `lmp-core`, next to the solver it drives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod registry;
pub mod snapshot;
pub mod span;

pub use registry::{CounterId, GaugeId, HistogramId, MetricKey, MetricRegistry};
pub use snapshot::{CounterValue, TelemetrySnapshot};
pub use span::{Span, SpanId, SpanRecorder};

/// Convenient single-line import for downstream crates.
pub mod prelude {
    pub use crate::registry::{CounterId, GaugeId, HistogramId, MetricKey, MetricRegistry};
    pub use crate::snapshot::{CounterValue, TelemetrySnapshot};
    pub use crate::span::{Span, SpanId, SpanRecorder};
}
