// Test/driver code: unwrap/expect on known-good setup is acceptable here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

//! Property tests for admission control: token buckets must be
//! *deterministic* (same op schedule, same decisions — they sit on a
//! digest path) and *conserving* (a tenant can never extract more work
//! than its configured rate plus burst, no matter how adversarial the
//! arrival schedule).

use lmp_qos::{AdmissionController, TenantId, TenantRate, TokenBucket};
use lmp_sim::prelude::*;
use proptest::prelude::*;

/// Replay a schedule of `(gap_ns, tokens)` requests against a fresh
/// bucket; returns the per-request decisions and the final instant.
fn replay(rate: TenantRate, sched: &[(u64, u64)]) -> (Vec<bool>, u64) {
    let mut b = TokenBucket::new(rate);
    let mut now_ns = 0u64;
    let mut decisions = Vec::with_capacity(sched.len());
    for &(gap, tokens) in sched {
        now_ns += gap;
        decisions.push(b.try_acquire(SimTime::from_nanos(now_ns), tokens));
    }
    (decisions, now_ns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Determinism: replaying the identical schedule against a fresh
    /// bucket yields byte-identical decisions. No wall clock, no hidden
    /// state — admission is a pure function of the op schedule.
    #[test]
    fn admission_is_deterministic(
        ops_per_sec in 1u64..10_000_000,
        burst in 1u64..64,
        sched in proptest::collection::vec((0u64..5_000, 1u64..8), 1..200),
    ) {
        let rate = TenantRate { ops_per_sec, burst };
        prop_assert_eq!(replay(rate, &sched), replay(rate, &sched));
    }

    /// Conservation: granted tokens never exceed the burst plus what the
    /// rate refills over the elapsed time. Checked in the bucket's own
    /// scaled integer arithmetic (1 token = 1e9 units), so the bound is
    /// exact — not a float approximation.
    #[test]
    fn admission_conserves_tokens(
        ops_per_sec in 1u64..10_000_000,
        burst in 1u64..64,
        sched in proptest::collection::vec((0u64..5_000, 1u64..8), 1..200),
    ) {
        let rate = TenantRate { ops_per_sec, burst };
        let (decisions, end_ns) = replay(rate, &sched);
        let granted: u128 = sched
            .iter()
            .zip(&decisions)
            .filter(|(_, &ok)| ok)
            .map(|(&(_, tokens), _)| u128::from(tokens))
            .sum();
        let scale = 1_000_000_000u128;
        let budget = u128::from(burst) * scale
            + u128::from(end_ns) * u128::from(ops_per_sec);
        prop_assert!(
            granted * scale <= budget,
            "granted {granted} tokens, budget {} ns-scaled units over {end_ns} ns",
            budget
        );
    }

    /// Prefix-conservation through the controller: at *every* point of
    /// the schedule the running grant total respects the rate+burst
    /// envelope — a bucket cannot go into debt and repay later.
    #[test]
    fn controller_conserves_at_every_prefix(
        ops_per_sec in 1u64..10_000_000,
        burst in 1u64..64,
        sched in proptest::collection::vec((0u64..5_000, 1u64..8), 1..200),
    ) {
        let tenant = TenantId(3);
        let mut ac = AdmissionController::new();
        ac.set_limit(tenant, TenantRate { ops_per_sec, burst });
        let scale = 1_000_000_000u128;
        let mut now_ns = 0u64;
        let mut granted: u128 = 0;
        for &(gap, tokens) in &sched {
            now_ns += gap;
            if ac.admit(SimTime::from_nanos(now_ns), tenant, tokens) {
                granted += u128::from(tokens);
            }
            let budget = u128::from(burst) * scale
                + u128::from(now_ns) * u128::from(ops_per_sec);
            prop_assert!(
                granted * scale <= budget,
                "at {now_ns} ns: granted {granted} exceeds envelope"
            );
        }
    }
}
