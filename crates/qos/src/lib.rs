// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `lmp-qos`: tenant-aware quality-of-service primitives.
//!
//! Disaggregated memory is shared infrastructure: one tenant flooding a
//! fabric link inflates every other tenant's remote-access tail latency.
//! This crate holds the two deterministic building blocks the stack uses
//! to bound that interference:
//!
//! * [`TokenBucket`] / [`AdmissionController`] — per-tenant request
//!   admission at the pool API. Integer fixed-point refill in sim-time
//!   nanoseconds, so admission decisions are a pure function of the
//!   (seeded) op schedule and never drift between runs.
//! * [`Band`] / [`BandedQueue`] — a small fixed set of priority bands
//!   replacing the strict-FIFO serialization backlog on a fabric link.
//!   Service is weighted water-filling: a flooded low band starves
//!   *loudly* (its backlog gauge grows without bound) but high-priority
//!   traffic keeps a guaranteed share of the wire.
//!
//! Everything here is integer arithmetic on [`SimTime`] /
//! [`SimDuration`]: no floats on decision paths, no wall clock, no
//! ambient randomness. Both structures are charged into digest-bearing
//! traces, so they are enrolled in the lmp-lint R2/R3 lists.
//!
//! [`SimTime`]: lmp_sim::time::SimTime
//! [`SimDuration`]: lmp_sim::time::SimDuration

mod admit;
mod band;

pub use admit::{AdmissionController, TenantId, TenantRate, TokenBucket};
pub use band::{Band, BandWeights, BandedQueue, BAND_COUNT};
