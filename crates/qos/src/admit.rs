//! Per-tenant token-bucket admission control.
//!
//! A [`TokenBucket`] holds up to `burst` tokens and refills at
//! `rate_per_sec` tokens per simulated second. Tokens are kept in fixed
//! point — one token is [`TOKEN_SCALE`] scaled units — so the per-
//! nanosecond refill increment (`rate_per_sec` scaled units per ns) is
//! exact integer arithmetic: admission decisions are a pure function of
//! the op schedule, bit-identical on every rerun.

use lmp_sim::time::SimTime;
use std::collections::BTreeMap;

/// Scaled units per token: refilling `rate_per_sec` tokens per second is
/// exactly `rate_per_sec` scaled units per nanosecond.
pub const TOKEN_SCALE: u128 = 1_000_000_000;

/// A tenant sharing the logical pool. Plain newtype so requester node and
/// tenant identity stay distinct types at the pool API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Admission limit for one tenant: sustained rate plus burst headroom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantRate {
    /// Sustained admissions per simulated second.
    pub ops_per_sec: u64,
    /// Bucket capacity: how many ops may be admitted back-to-back after
    /// an idle period.
    pub burst: u64,
}

/// Deterministic sim-time token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    /// Current fill in scaled units (1 token = [`TOKEN_SCALE`] units).
    scaled: u128,
    /// Instant the bucket was last refilled to.
    last: SimTime,
}

impl TokenBucket {
    /// A bucket that starts full (a fresh tenant gets its burst).
    pub fn new(rate: TenantRate) -> Self {
        TokenBucket {
            rate_per_sec: rate.ops_per_sec,
            burst: rate.burst,
            scaled: (rate.burst as u128).saturating_mul(TOKEN_SCALE),
            last: SimTime::ZERO,
        }
    }

    /// Refill for the time elapsed since the previous refill. A `now` in
    /// the past (events at the same instant, or an out-of-order probe)
    /// refills nothing and never drains the bucket.
    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_duration_since(self.last).as_nanos();
        if elapsed > 0 {
            let add = (elapsed as u128).saturating_mul(self.rate_per_sec as u128);
            let cap = (self.burst as u128).saturating_mul(TOKEN_SCALE);
            self.scaled = self.scaled.saturating_add(add).min(cap);
            self.last = now;
        }
    }

    /// Admit `tokens` ops at `now` if the bucket holds them; on success
    /// the tokens are consumed.
    pub fn try_acquire(&mut self, now: SimTime, tokens: u64) -> bool {
        self.refill(now);
        let need = (tokens as u128).saturating_mul(TOKEN_SCALE);
        if self.scaled >= need {
            self.scaled = self.scaled.saturating_sub(need);
            true
        } else {
            false
        }
    }

    /// Whole tokens currently available at `now` (refills first).
    pub fn available(&mut self, now: SimTime) -> u64 {
        self.refill(now);
        u64::try_from(self.scaled / TOKEN_SCALE).unwrap_or(u64::MAX)
    }

    /// The configured limit.
    pub fn rate(&self) -> TenantRate {
        TenantRate {
            ops_per_sec: self.rate_per_sec,
            burst: self.burst,
        }
    }
}

/// Per-tenant admission control: a [`TokenBucket`] per limited tenant.
/// Tenants without a configured limit are always admitted, so wiring the
/// controller in changes nothing until a limit is set.
#[derive(Debug, Clone, Default)]
pub struct AdmissionController {
    buckets: BTreeMap<TenantId, TokenBucket>,
}

impl AdmissionController {
    /// An empty controller: every tenant unlimited.
    pub fn new() -> Self {
        AdmissionController::default()
    }

    /// Set (or replace) `tenant`'s limit. The new bucket starts full.
    pub fn set_limit(&mut self, tenant: TenantId, rate: TenantRate) {
        self.buckets.insert(tenant, TokenBucket::new(rate));
    }

    /// Remove `tenant`'s limit; it is admitted unconditionally again.
    pub fn clear_limit(&mut self, tenant: TenantId) {
        self.buckets.remove(&tenant);
    }

    /// Whether `tenant` has a configured limit.
    pub fn is_limited(&self, tenant: TenantId) -> bool {
        self.buckets.contains_key(&tenant)
    }

    /// Admit `tokens` ops from `tenant` at `now`. Unlimited tenants are
    /// always admitted; limited tenants consume from their bucket.
    pub fn admit(&mut self, now: SimTime, tenant: TenantId, tokens: u64) -> bool {
        match self.buckets.get_mut(&tenant) {
            Some(b) => b.try_acquire(now, tokens),
            None => true,
        }
    }

    /// Whole tokens `tenant` could spend at `now` (`u64::MAX` when
    /// unlimited).
    pub fn available(&mut self, now: SimTime, tenant: TenantId) -> u64 {
        match self.buckets.get_mut(&tenant) {
            Some(b) => b.available(now),
            None => u64::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(TenantRate {
            ops_per_sec: 1_000_000, // 1 op per µs
            burst: 4,
        });
        for _ in 0..4 {
            assert!(b.try_acquire(SimTime::ZERO, 1));
        }
        assert!(!b.try_acquire(SimTime::ZERO, 1), "burst exhausted");
    }

    #[test]
    fn refill_is_exact_integer_ns() {
        // 1 op/µs: after 999 ns the bucket holds 0.999 tokens — not one.
        let mut b = TokenBucket::new(TenantRate {
            ops_per_sec: 1_000_000,
            burst: 1,
        });
        assert!(b.try_acquire(SimTime::ZERO, 1));
        assert!(!b.try_acquire(at(999), 1));
        assert!(b.try_acquire(at(1_000), 1));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(TenantRate {
            ops_per_sec: 1_000_000,
            burst: 3,
        });
        assert!(b.try_acquire(SimTime::ZERO, 3));
        // A long idle period refills to burst, not beyond.
        assert_eq!(b.available(at(1_000_000)), 3);
    }

    #[test]
    fn backwards_clock_never_drains() {
        let mut b = TokenBucket::new(TenantRate {
            ops_per_sec: 1_000_000,
            burst: 2,
        });
        assert!(b.try_acquire(at(5_000), 2));
        let before = b.available(at(5_000));
        // An earlier instant refills nothing (and must not underflow).
        assert_eq!(b.available(at(1_000)), before);
    }

    #[test]
    fn controller_unlimited_by_default() {
        let mut ac = AdmissionController::new();
        assert!(ac.admit(SimTime::ZERO, TenantId(7), 1_000_000));
        assert_eq!(ac.available(SimTime::ZERO, TenantId(7)), u64::MAX);
    }

    #[test]
    fn controller_limits_only_configured_tenant() {
        let mut ac = AdmissionController::new();
        ac.set_limit(
            TenantId(1),
            TenantRate {
                ops_per_sec: 1_000_000,
                burst: 2,
            },
        );
        assert!(ac.admit(SimTime::ZERO, TenantId(1), 2));
        assert!(!ac.admit(SimTime::ZERO, TenantId(1), 1));
        assert!(ac.admit(SimTime::ZERO, TenantId(2), 100), "other tenant untouched");
        ac.clear_limit(TenantId(1));
        assert!(ac.admit(SimTime::ZERO, TenantId(1), 100));
    }

    #[test]
    fn same_schedule_same_decisions() {
        let run = || {
            let mut ac = AdmissionController::new();
            ac.set_limit(
                TenantId(0),
                TenantRate {
                    ops_per_sec: 2_000_000,
                    burst: 3,
                },
            );
            (0..200u64)
                .map(|i| ac.admit(at(i * 137), TenantId(0), 1 + i % 2))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
    }
}
