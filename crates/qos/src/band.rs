//! Priority band queueing for a serial wire.
//!
//! A [`BandedQueue`] models one link direction's serialization backlog as
//! [`BAND_COUNT`] priority bands served by weighted water-filling: over
//! any interval the wire moves one nanosecond of work per nanosecond,
//! split among the non-empty bands in proportion to their weights. High-
//! priority traffic therefore keeps a guaranteed share under flood, while
//! a flooded band's backlog grows visibly — starvation is loud (the
//! per-band gauge climbs), never silent (weights are clamped ≥ 1, so
//! every band always drains at *some* rate).
//!
//! All state is integer nanoseconds of queued wire time; service splits
//! use `u128` products with the truncation remainder granted to the
//! highest-priority non-empty band. Same arrivals ⇒ same completions,
//! bit-for-bit.

use lmp_sim::time::{SimDuration, SimTime};

/// Number of priority bands.
pub const BAND_COUNT: usize = 3;

/// Priority band of one fabric transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Band {
    /// Control traffic: health probes, leases, recovery coordination.
    High,
    /// Default data traffic.
    Normal,
    /// Background / bulk traffic: migration sweeps, rebuild copies.
    Low,
}

impl Band {
    /// All bands, highest priority first (index order).
    pub const ALL: [Band; BAND_COUNT] = [Band::High, Band::Normal, Band::Low];

    /// Dense index (0 = highest priority).
    pub fn index(self) -> usize {
        match self {
            Band::High => 0,
            Band::Normal => 1,
            Band::Low => 2,
        }
    }

    /// Stable label for telemetry.
    pub fn label(self) -> &'static str {
        match self {
            Band::High => "high",
            Band::Normal => "normal",
            Band::Low => "low",
        }
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Service weights per band. Higher weight ⇒ larger share of the wire
/// while contended. Weights are clamped to ≥ 1 at construction so no
/// band can be silently starved forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandWeights([u64; BAND_COUNT]);

impl BandWeights {
    /// Build from `[high, normal, low]`, clamping each to ≥ 1.
    pub fn new(weights: [u64; BAND_COUNT]) -> Self {
        BandWeights([weights[0].max(1), weights[1].max(1), weights[2].max(1)])
    }

    /// Weight of one band.
    pub fn get(&self, band: Band) -> u64 {
        self.0[band.index()]
    }

    fn raw(&self) -> &[u64; BAND_COUNT] {
        &self.0
    }
}

impl Default for BandWeights {
    /// `[8, 4, 1]`: control traffic dominates, bulk trickles.
    fn default() -> Self {
        BandWeights([8, 4, 1])
    }
}

/// One service interval: advance the queues by at most `budget` ns of
/// wire time, stopping early when a band would empty mid-interval (so
/// the proportional split stays piecewise-exact). Returns the elapsed
/// nanoseconds actually advanced (0 iff every band is empty or
/// `budget` is 0).
fn service_step(q: &mut [u64; BAND_COUNT], w: &[u64; BAND_COUNT], budget: u64) -> u64 {
    let mut wsum: u64 = 0;
    for i in 0..BAND_COUNT {
        if q[i] > 0 {
            wsum = wsum.saturating_add(w[i]);
        }
    }
    if wsum == 0 || budget == 0 {
        return 0;
    }
    // Longest interval before some active band empties: min over active
    // bands of ceil(q_i · wsum / w_i).
    let mut t_empty = u64::MAX;
    for i in 0..BAND_COUNT {
        if q[i] == 0 {
            continue;
        }
        let prod = (q[i] as u128).saturating_mul(wsum as u128);
        let t = prod.div_ceil(w[i] as u128);
        t_empty = t_empty.min(u64::try_from(t).unwrap_or(u64::MAX));
    }
    let step = budget.min(t_empty);
    // Proportional shares, truncated; capped at the band's backlog.
    let mut served = [0u64; BAND_COUNT];
    let mut used = 0u64;
    for i in 0..BAND_COUNT {
        if q[i] == 0 {
            continue;
        }
        let share = (step as u128).saturating_mul(w[i] as u128) / wsum as u128;
        let s = u64::try_from(share).unwrap_or(u64::MAX).min(q[i]);
        served[i] = s;
        used = used.saturating_add(s);
    }
    // The truncation remainder goes to the highest-priority band with
    // backlog left, keeping the wire work-conserving over the step.
    let mut left = step.saturating_sub(used);
    for i in 0..BAND_COUNT {
        if left == 0 {
            break;
        }
        let room = q[i].saturating_sub(served[i]);
        let extra = left.min(room);
        served[i] = served[i].saturating_add(extra);
        left = left.saturating_sub(extra);
    }
    for i in 0..BAND_COUNT {
        q[i] = q[i].saturating_sub(served[i]);
    }
    step
}

/// Deterministic weighted-priority serialization queue for one wire.
///
/// [`BandedQueue::occupy`] is the banded analogue of the FIFO
/// `BusyTracker::occupy`: it charges `work` nanoseconds of wire time to
/// a band and returns the `(start, done)` window the transfer occupies,
/// where `done` accounts for weighted sharing with the other bands'
/// backlogs and `start = done − work`.
#[derive(Debug, Clone)]
pub struct BandedQueue {
    weights: BandWeights,
    /// Backlog per band, in nanoseconds of wire time.
    q: [u64; BAND_COUNT],
    /// Instant the backlogs were last drained to.
    last: SimTime,
}

impl BandedQueue {
    /// An empty queue with the given weights.
    pub fn new(weights: BandWeights) -> Self {
        BandedQueue {
            weights,
            q: [0; BAND_COUNT],
            last: SimTime::ZERO,
        }
    }

    /// The configured weights.
    pub fn weights(&self) -> BandWeights {
        self.weights
    }

    /// Advance the water-filling service to `now`. A `now` in the past
    /// (same-instant events) drains nothing.
    fn drain_to(&mut self, now: SimTime) {
        let mut e = now.saturating_duration_since(self.last).as_nanos();
        while e > 0 {
            let advanced = service_step(&mut self.q, self.weights.raw(), e);
            if advanced == 0 {
                break;
            }
            e = e.saturating_sub(advanced);
        }
        if now > self.last {
            self.last = now;
        }
    }

    /// Charge `work` nanoseconds of wire time to `band` at `now`; returns
    /// the `(start, done)` occupancy window. `done` is exactly when the
    /// weighted service would finish this band's backlog (including the
    /// new work) with no further arrivals.
    pub fn occupy(&mut self, now: SimTime, band: Band, work: SimDuration) -> (SimTime, SimTime) {
        self.drain_to(now);
        let i = band.index();
        self.q[i] = self.q[i].saturating_add(work.as_nanos());
        // Predict the drain of band `i` by running the same service steps
        // forward on a copy; each step empties at least one band, so this
        // terminates within BAND_COUNT steps.
        let mut q = self.q;
        let mut t: u64 = 0;
        while q[i] > 0 {
            let advanced = service_step(&mut q, self.weights.raw(), u64::MAX);
            if advanced == 0 {
                break;
            }
            t = t.saturating_add(advanced);
        }
        let done = now + SimDuration::from_nanos(t);
        // The band drains at rate ≤ 1, so t ≥ work and start ≥ now.
        let start = done - work.min(SimDuration::from_nanos(t));
        (start, done)
    }

    /// Per-band backlog at `now` (drains first), highest priority first.
    pub fn backlogs(&mut self, now: SimTime) -> [SimDuration; BAND_COUNT] {
        self.drain_to(now);
        [
            SimDuration::from_nanos(self.q[0]),
            SimDuration::from_nanos(self.q[1]),
            SimDuration::from_nanos(self.q[2]),
        ]
    }

    /// Total backlog at `now` across all bands (drains first).
    pub fn total_backlog(&mut self, now: SimTime) -> SimDuration {
        self.drain_to(now);
        SimDuration::from_nanos(
            self.q
                .iter()
                .fold(0u64, |acc, &b| acc.saturating_add(b)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn empty_queue_serves_immediately() {
        let mut q = BandedQueue::new(BandWeights::default());
        let (start, done) = q.occupy(at(100), Band::Normal, ns(40));
        assert_eq!(start, at(100));
        assert_eq!(done, at(140));
    }

    #[test]
    fn single_band_behaves_like_fifo() {
        let mut q = BandedQueue::new(BandWeights::default());
        let (_, d1) = q.occupy(at(0), Band::Normal, ns(100));
        let (s2, d2) = q.occupy(at(0), Band::Normal, ns(50));
        assert_eq!(d1, at(100));
        assert_eq!(s2, at(100));
        assert_eq!(d2, at(150));
    }

    #[test]
    fn weighted_sharing_splits_the_wire() {
        // Equal weights across two contending bands: the second arrival
        // gets half the wire against the first's backlog, so its 100 ns
        // of work takes 200 ns wall time.
        let mut q = BandedQueue::new(BandWeights::new([1, 1, 1]));
        let (_, dh) = q.occupy(at(0), Band::High, ns(100));
        let (_, dl) = q.occupy(at(0), Band::Low, ns(100));
        assert_eq!(dh, at(100), "first arrival sees an idle wire");
        assert_eq!(dl, at(200), "second arrival shares the wire equally");
    }

    #[test]
    fn high_priority_keeps_its_share_under_flood() {
        let mut q = BandedQueue::new(BandWeights::default()); // 8:4:1
        // A huge low-band flood is already queued...
        q.occupy(at(0), Band::Low, ns(13_000));
        // ...yet barely delays high-band work: high gets 8/9 of the wire.
        let (_, dh) = q.occupy(at(0), Band::High, ns(800));
        assert_eq!(dh, at(900), "800 ns at 8/9 of the wire = 900 ns");
        // The flood is the one that waits: its backlog is still draining
        // at the instant it would have finished on an idle wire.
        assert!(q.backlogs(at(13_000))[2].as_nanos() > 0);
    }

    #[test]
    fn low_band_starves_loudly_not_silently() {
        let mut q = BandedQueue::new(BandWeights::default());
        q.occupy(at(0), Band::Low, ns(9_000));
        q.occupy(at(0), Band::High, ns(8_000));
        // Mid-contention the low backlog is visible on the gauge...
        let b = q.backlogs(at(4_500));
        assert!(b[2].as_nanos() > 0, "backlog visible: {b:?}");
        // ...but weight ≥ 1 guarantees it still drains eventually.
        let b = q.backlogs(at(60_000));
        assert_eq!(b[2], SimDuration::ZERO);
    }

    #[test]
    fn work_is_conserved() {
        // With every band contending, total drain time equals total work:
        // the wire never idles while backlog remains.
        let mut q = BandedQueue::new(BandWeights::default());
        q.occupy(at(0), Band::High, ns(300));
        q.occupy(at(0), Band::Normal, ns(500));
        let (_, done) = q.occupy(at(0), Band::Low, ns(200));
        let all_done = done.as_nanos().max(1_000);
        assert!(q.total_backlog(at(999)).as_nanos() > 0);
        assert_eq!(q.total_backlog(at(all_done)), SimDuration::ZERO);
    }

    #[test]
    fn completion_prediction_matches_drain() {
        let mut q = BandedQueue::new(BandWeights::new([8, 4, 1]));
        q.occupy(at(0), Band::Normal, ns(700));
        let (_, done) = q.occupy(at(0), Band::Low, ns(130));
        // One instant before the predicted completion the band still has
        // backlog; at the prediction it is empty.
        assert!(q.clone().backlogs(done - ns(1))[2].as_nanos() > 0);
        assert_eq!(q.backlogs(done)[2], SimDuration::ZERO);
    }

    #[test]
    fn deterministic_across_reruns() {
        let run = || {
            let mut q = BandedQueue::new(BandWeights::default());
            let mut out = Vec::new();
            for i in 0..300u64 {
                let band = Band::ALL[(i % 3) as usize];
                let (s, d) = q.occupy(at(i * 17), band, ns(11 + i % 97));
                out.push((s.as_nanos(), d.as_nanos()));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn weights_clamped_to_one() {
        let w = BandWeights::new([0, 5, 0]);
        assert_eq!(w.get(Band::High), 1);
        assert_eq!(w.get(Band::Normal), 5);
        assert_eq!(w.get(Band::Low), 1);
    }

    #[test]
    fn past_instants_do_not_rewind_service() {
        let mut q = BandedQueue::new(BandWeights::default());
        q.occupy(at(1_000), Band::Normal, ns(500));
        let before = q.clone().backlogs(at(1_000));
        // Draining "to" an earlier instant must be a no-op.
        let again = q.backlogs(at(400));
        assert_eq!(before, again);
    }
}
