//! Deterministic random numbers.
//!
//! Every stochastic component takes a [`DetRng`] derived from a single run
//! seed, so a whole experiment replays bit-for-bit. Substreams are derived by
//! hashing a label into the parent seed ([`DetRng::fork`]), which keeps
//! component randomness independent of the order components are constructed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic, forkable random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
    seed: u64,
}

impl DetRng {
    /// Create from a run seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent substream for the component named `label`.
    ///
    /// Forking does not consume randomness from the parent stream, so adding
    /// a new component does not perturb existing ones.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::new(splitmix(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// Derive an independent substream for item `index` of a family (e.g.
    /// per-core or per-server streams).
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(splitmix(
            self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(index.wrapping_add(0x9E37_79B9)),
        ))
    }

    /// Uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        // lmp-lint: allow(no-panic) — documented `# Panics` precondition;
        // below(0) has no valid result.
        assert!(bound > 0, "below(0)");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// inter-arrival times in open-loop load generators).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse-CDF; guard against ln(0).
        let u = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = DetRng::new(42);
        let fork_before = parent.fork("link");
        let mut consumed = parent.clone();
        for _ in 0..10 {
            consumed.next_u64();
        }
        let fork_after = consumed.fork("link");
        let mut x = fork_before.clone();
        let mut y = fork_after.clone();
        assert_eq!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn distinct_labels_distinct_streams() {
        let parent = DetRng::new(1);
        let mut a = parent.fork("a");
        let mut b = parent.fork("b");
        // Statistically certain to differ on the first draw.
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_forks_differ() {
        let parent = DetRng::new(1);
        let mut a = parent.fork_indexed("core", 0);
        let mut b = parent.fork_indexed("core", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = DetRng::new(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(100.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(11);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
