//! Measurement primitives: counters, histograms, time-weighted averages.
//!
//! These are the building blocks of every number the benchmark harness
//! reports. The histogram uses log-linear buckets (HdrHistogram-style) so
//! latency distributions spanning 80 ns to 500+ ns (and far beyond, under
//! load) are captured with bounded error and O(1) recording.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A monotonically increasing event/byte counter.
///
/// Additions saturate at `u64::MAX` instead of panicking, so a week-long
/// chaos run degrades (the value pins, the [`Counter::overflowed`] flag
/// sticks) rather than aborting. Snapshot layers surface the flag so a
/// pinned counter is never mistaken for an exact count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
    overflowed: bool,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }
    /// Reconstruct a counter from snapshot parts (value + sticky flag).
    /// Used by telemetry layers that merge exported counters.
    pub fn from_parts(value: u64, overflowed: bool) -> Self {
        Counter { value, overflowed }
    }
    /// Add `n`, saturating at `u64::MAX`. On saturation the sticky
    /// [`Counter::overflowed`] flag is set.
    pub fn add(&mut self, n: u64) {
        match self.value.checked_add(n) {
            Some(v) => self.value = v,
            None => {
                self.value = u64::MAX;
                self.overflowed = true;
            }
        }
    }
    /// Add one.
    pub fn inc(&mut self) {
        self.add(1)
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
    /// Whether the counter ever saturated. Sticky: survives [`Counter::take`].
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }
    /// Reset the value to zero, returning the previous value. The sticky
    /// overflow flag is preserved — a counter that lost events once cannot
    /// regain exactness by being reset.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.value)
    }
}

/// A log-linear histogram of `u64` samples (typically nanoseconds).
///
/// Values are bucketed with ~3% relative error: 32 linear buckets per
/// power-of-two range. Percentiles are interpolated within a bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// buckets[b] = count of samples in bucket b.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const SUB_BUCKET_BITS: u32 = 5; // 32 sub-buckets per octave
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
    let shift = octave - SUB_BUCKET_BITS;
    let sub = (value >> shift) - SUB_BUCKETS; // in [0, SUB_BUCKETS)
    (SUB_BUCKETS as usize) + ((octave - SUB_BUCKET_BITS) as usize * SUB_BUCKETS as usize)
        + sub as usize
}

fn bucket_low(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let rest = index - SUB_BUCKETS as usize;
    let octave = (rest / SUB_BUCKETS as usize) as u32 + SUB_BUCKET_BITS;
    let sub = (rest % SUB_BUCKETS as usize) as u64;
    (SUB_BUCKETS + sub) << (octave - SUB_BUCKET_BITS)
}

fn bucket_high(index: usize) -> u64 {
    if index < SUB_BUCKETS as usize {
        return index as u64;
    }
    let rest = index - SUB_BUCKETS as usize;
    let octave = (rest / SUB_BUCKETS as usize) as u32 + SUB_BUCKET_BITS;
    let width = 1u64 << (octave - SUB_BUCKET_BITS);
    bucket_low(index) + width - 1
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` with linear interpolation inside
    /// the containing bucket. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let within = (target - seen) as f64 / c as f64;
                let low = bucket_low(idx) as f64;
                let high = bucket_high(idx) as f64;
                let v = low + (high - low) * within;
                return (v.round() as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }
    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.1} p50={} p95={} p99={} max={}",
            self.count,
            self.min(),
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.max()
        )
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue depth,
/// utilization). Integrates `value × dt` between updates.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: value,
            integral: 0.0,
            start,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let dt = now.duration_since(self.last_time).as_secs_f64();
        self.integral += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Average over `[start, now]`. Returns the current value when the
    /// window is empty.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.saturating_duration_since(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        let tail = now.saturating_duration_since(self.last_time).as_secs_f64();
        (self.integral + self.last_value * tail) / total
    }
}

/// Exponentially weighted moving average with a configurable smoothing
/// factor; used for link-utilization estimates that feed the loaded-latency
/// model.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` in `(0, 1]`: weight of the newest observation.
    ///
    /// # Panics
    /// Panics for alpha outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // alpha outside (0, 1] is not a smoothing factor.
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of range: {alpha}");
        Ewma { alpha, value: None }
    }

    /// Fold in an observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current estimate (`default` before any observation).
    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_saturates_with_sticky_flag() {
        let mut c = Counter::new();
        c.add(u64::MAX - 1);
        assert!(!c.overflowed());
        c.add(5); // would exceed u64::MAX
        assert_eq!(c.get(), u64::MAX);
        assert!(c.overflowed());
        // Further additions stay pinned.
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        // The flag survives a reset: the history is tainted.
        assert_eq!(c.take(), u64::MAX);
        assert_eq!(c.get(), 0);
        assert!(c.overflowed());
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn bucket_round_trip_small_values() {
        for v in 0..SUB_BUCKETS {
            let idx = bucket_index(v);
            assert_eq!(bucket_low(idx), v);
            assert_eq!(bucket_high(idx), v);
        }
    }

    #[test]
    fn bucket_bounds_contain_value() {
        for &v in &[33u64, 100, 1_000, 82_000, u32::MAX as u64, 1 << 50] {
            let idx = bucket_index(v);
            assert!(bucket_low(idx) <= v, "low({idx})={} > {v}", bucket_low(idx));
            assert!(v <= bucket_high(idx), "{v} > high({idx})={}", bucket_high(idx));
        }
    }

    #[test]
    fn exact_stats_for_small_values() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-9);
        assert_eq!(h.p50(), 3);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.05, "q={q}: got {got}, want {expect} (err {err})");
        }
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn time_weighted_average() {
        let t = |ns| SimTime::from_nanos(ns);
        let mut tw = TimeWeighted::new(t(0), 0.0);
        tw.update(t(500_000_000), 1.0); // 0.0 for first half-second
        let avg = tw.average(t(1_000_000_000)); // 1.0 for second half
        assert!((avg - 0.5).abs() < 1e-9, "avg {avg}");
        assert_eq!(tw.current(), 1.0);
    }

    #[test]
    fn time_weighted_empty_window() {
        let tw = TimeWeighted::new(SimTime::from_nanos(5), 3.0);
        assert_eq!(tw.average(SimTime::from_nanos(5)), 3.0);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get_or(7.0), 7.0);
        for _ in 0..64 {
            e.observe(10.0);
        }
        assert!((e.get_or(0.0) - 10.0).abs() < 1e-6);
    }
}
