//! Lightweight simulation tracing.
//!
//! A [`TraceSink`] receives timestamped, component-tagged records. The
//! default [`NullSink`] compiles to nothing; [`MemorySink`] collects records
//! for tests and debugging; [`StderrSink`] streams them for interactive runs.

use crate::time::SimTime;
use std::fmt;

/// Severity/category of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Normal protocol/progress events.
    Event,
    /// Policy decisions (migration chosen, region resized, …).
    Policy,
    /// Injected faults and recovery actions.
    Fault,
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceKind::Event => write!(f, "event"),
            TraceKind::Policy => write!(f, "policy"),
            TraceKind::Fault => write!(f, "fault"),
        }
    }
}

/// A consumer of trace records.
pub trait TraceSink {
    /// Deliver one record. `component` identifies the emitter (e.g.
    /// `"link[0->1]"`, `"server3.balancer"`).
    fn emit(&mut self, at: SimTime, kind: TraceKind, component: &str, message: fmt::Arguments<'_>);

    /// Whether records would be observed at all; lets hot paths skip
    /// formatting entirely.
    fn enabled(&self) -> bool {
        true
    }
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _: SimTime, _: TraceKind, _: &str, _: fmt::Arguments<'_>) {}
    fn enabled(&self) -> bool {
        false
    }
}

/// One captured record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulated timestamp.
    pub at: SimTime,
    /// Record category.
    pub kind: TraceKind,
    /// Emitting component.
    pub component: String,
    /// Rendered message.
    pub message: String,
}

/// Collects records in memory (tests, post-run inspection).
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Captured records, in emission order.
    pub records: Vec<TraceRecord>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records whose component contains `needle`.
    pub fn matching(&self, needle: &str) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.component.contains(needle))
            .collect()
    }
}

impl TraceSink for MemorySink {
    fn emit(&mut self, at: SimTime, kind: TraceKind, component: &str, message: fmt::Arguments<'_>) {
        self.records.push(TraceRecord {
            at,
            kind,
            component: component.to_string(),
            message: message.to_string(),
        });
    }
}

/// Streams records to stderr.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn emit(&mut self, at: SimTime, kind: TraceKind, component: &str, message: fmt::Arguments<'_>) {
        eprintln!("[{at}] {kind} {component}: {message}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_captures() {
        let mut sink = MemorySink::new();
        sink.emit(
            SimTime::from_nanos(5),
            TraceKind::Policy,
            "balancer",
            format_args!("migrated {} pages", 3),
        );
        assert_eq!(sink.records.len(), 1);
        let r = &sink.records[0];
        assert_eq!(r.at.as_nanos(), 5);
        assert_eq!(r.kind, TraceKind::Policy);
        assert_eq!(r.message, "migrated 3 pages");
    }

    #[test]
    fn null_sink_reports_disabled() {
        assert!(!NullSink.enabled());
        let mut sink = MemorySink::new();
        assert!(TraceSink::enabled(&sink));
        sink.emit(SimTime::ZERO, TraceKind::Event, "x", format_args!("y"));
        assert_eq!(sink.records.len(), 1);
    }

    #[test]
    fn matching_filters_by_component() {
        let mut sink = MemorySink::new();
        sink.emit(SimTime::ZERO, TraceKind::Event, "link[0]", format_args!("a"));
        sink.emit(SimTime::ZERO, TraceKind::Event, "server1", format_args!("b"));
        assert_eq!(sink.matching("link").len(), 1);
    }
}
