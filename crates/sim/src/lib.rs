// Tests may unwrap/expect freely; production code must not (see crates/lint).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

//! # lmp-sim — deterministic discrete-event simulation kernel
//!
//! Foundation of the Logical Memory Pools reproduction: integer-nanosecond
//! simulated time, a deterministic event engine, seeded forkable randomness,
//! and the measurement primitives (histograms, utilization trackers) every
//! reported number is built from.
//!
//! Design goals, in order: **reproducibility** (same seed ⇒ same run, on any
//! platform), **simplicity** (no macros or type tricks; the engine is a
//! pending-event set and a loop), and **speed** (amortized O(1) scheduling
//! via the [`calendar`] queue, O(1) recording).
//!
//! ## Quick tour
//!
//! ```
//! use lmp_sim::prelude::*;
//!
//! // 1. Events are any user type.
//! enum Ev { Arrive, Depart }
//!
//! // 2. The engine delivers them in timestamp order.
//! let mut eng = Engine::new();
//! eng.schedule_at(SimTime::from_nanos(100), Ev::Arrive).expect("future time");
//! let mut latency = Histogram::new();
//! eng.run(|eng, ev| match ev {
//!     Ev::Arrive => { eng.schedule_after(SimDuration::from_nanos(280), Ev::Depart); }
//!     Ev::Depart => { latency.record(280); }
//! });
//! assert_eq!(latency.count(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod engine;
pub mod latency;
pub mod queue;
pub mod rate;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

/// Commonly used items, re-exported for `use lmp_sim::prelude::*`.
pub mod prelude {
    pub use crate::calendar::CalendarQueue;
    pub use crate::engine::{Engine, SchedulePastError};
    pub use crate::latency::LoadedLatencyCurve;
    pub use crate::queue::{EventId, EventQueue};
    pub use crate::rate::{BusyTracker, SlidingRate};
    pub use crate::rng::DetRng;
    pub use crate::stats::{Counter, Ewma, Histogram, TimeWeighted};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{MemorySink, NullSink, TraceKind, TraceSink};
    pub use crate::units::{fmt_bytes, Bandwidth, GIB, KIB, MIB, TIB};
}
