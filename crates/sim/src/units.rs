//! Byte-size and bandwidth units.
//!
//! Memory capacities use binary units ([`GIB`], [`MIB`], …) like the paper's
//! "96GB per NUMA node". Bandwidth is a first-class type so transfer-time
//! arithmetic is impossible to get dimensionally wrong.

use crate::time::SimDuration;
use std::fmt;

/// One kibibyte (2^10 bytes).
pub const KIB: u64 = 1 << 10;
/// One mebibyte (2^20 bytes).
pub const MIB: u64 = 1 << 20;
/// One gibibyte (2^30 bytes).
pub const GIB: u64 = 1 << 30;
/// One tebibyte (2^40 bytes).
pub const TIB: u64 = 1 << 40;

/// A transfer rate in bytes per second.
///
/// Constructed from the paper's GB/s figures via [`Bandwidth::from_gbps`]
/// (decimal gigabytes, matching how vendors and the paper quote link speeds).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// A zero-rate link (transfers never complete); useful as a sentinel.
    pub const ZERO: Bandwidth = Bandwidth { bytes_per_sec: 0.0 };

    /// From raw bytes per second.
    ///
    /// # Panics
    /// Panics on negative or non-finite rates.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        // lmp-lint: allow(no-panic) — documented `# Panics` ctor precondition;
        // a negative or NaN bandwidth is a model-configuration bug.
        assert!(bps.is_finite() && bps >= 0.0, "invalid bandwidth: {bps}");
        Bandwidth { bytes_per_sec: bps }
    }

    /// From decimal gigabytes per second (1 GB/s = 1e9 B/s), the unit used
    /// throughout the paper's tables.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9)
    }

    /// Raw bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Decimal gigabytes per second.
    pub fn as_gbps(self) -> f64 {
        self.bytes_per_sec / 1e9
    }

    /// Time to move `bytes` at this rate, rounded up to whole nanoseconds.
    ///
    /// A zero-byte transfer takes zero time. On a zero-rate link any
    /// non-empty transfer takes [`SimDuration::MAX`] (never completes).
    pub fn time_to_transfer(self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        if self.bytes_per_sec <= 0.0 {
            return SimDuration::MAX;
        }
        let ns = (bytes as f64) / self.bytes_per_sec * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration::from_nanos(ns.ceil() as u64)
        }
    }

    /// The rate achieved by moving `bytes` in `elapsed` time.
    ///
    /// Returns [`Bandwidth::ZERO`] for a zero-length interval — callers
    /// measuring over a window must ensure the window is non-empty.
    pub fn measured(bytes: u64, elapsed: SimDuration) -> Bandwidth {
        if elapsed.is_zero() {
            return Bandwidth::ZERO;
        }
        Self::from_bytes_per_sec(bytes as f64 / elapsed.as_secs_f64())
    }

    /// Scale the rate by `factor` (e.g., dividing a link among flows).
    pub fn scale(self, factor: f64) -> Bandwidth {
        Self::from_bytes_per_sec(self.bytes_per_sec * factor)
    }

    /// The smaller of two rates (a path is limited by its slowest hop).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.bytes_per_sec <= other.bytes_per_sec {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}GB/s", self.as_gbps())
    }
}

/// Render a byte count with a binary-unit suffix, e.g. `24.0GiB`.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= TIB {
        format!("{:.1}TiB", bytes as f64 / TIB as f64)
    } else if bytes >= GIB {
        format!("{:.1}GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1}MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_round_trip() {
        let bw = Bandwidth::from_gbps(34.5);
        assert!((bw.as_gbps() - 34.5).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_is_exact_for_simple_rates() {
        // 1 GB/s moves 1 byte per nanosecond.
        let bw = Bandwidth::from_gbps(1.0);
        assert_eq!(bw.time_to_transfer(1_000).as_nanos(), 1_000);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 3 B/s: 1 byte takes ceil(1e9/3) ns.
        let bw = Bandwidth::from_bytes_per_sec(3.0);
        assert_eq!(bw.time_to_transfer(1).as_nanos(), 333_333_334);
    }

    #[test]
    fn zero_cases() {
        assert_eq!(Bandwidth::from_gbps(5.0).time_to_transfer(0), SimDuration::ZERO);
        assert_eq!(Bandwidth::ZERO.time_to_transfer(1), SimDuration::MAX);
        assert_eq!(Bandwidth::measured(100, SimDuration::ZERO), Bandwidth::ZERO);
    }

    #[test]
    fn measured_inverts_transfer() {
        let bw = Bandwidth::from_gbps(21.0);
        let bytes = 64 * MIB;
        let t = bw.time_to_transfer(bytes);
        let back = Bandwidth::measured(bytes, t);
        assert!((back.as_gbps() - 21.0).abs() < 0.01, "got {back}");
    }

    #[test]
    fn min_and_scale() {
        let a = Bandwidth::from_gbps(10.0);
        let b = Bandwidth::from_gbps(4.0);
        assert_eq!(a.min(b), b);
        assert!((a.scale(0.5).as_gbps() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(8 * GIB), "8.0GiB");
        assert_eq!(fmt_bytes(3 * MIB / 2), "1.5MiB");
    }
}
