//! The discrete-event engine.
//!
//! [`Engine`] owns the clock and the pending-event set. Users define an event
//! payload type and drive the loop with a handler closure; the handler
//! receives `&mut Engine` so it can schedule follow-up events:
//!
//! ```
//! use lmp_sim::engine::Engine;
//! use lmp_sim::time::SimDuration;
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut eng = Engine::new();
//! eng.schedule_after(SimDuration::from_nanos(10), Ev::Ping(0));
//! let mut seen = Vec::new();
//! eng.run(|eng, ev| {
//!     let Ev::Ping(n) = ev;
//!     seen.push((eng.now().as_nanos(), n));
//!     if n < 2 {
//!         eng.schedule_after(SimDuration::from_nanos(5), Ev::Ping(n + 1));
//!     }
//! });
//! assert_eq!(seen, [(10, 0), (15, 1), (20, 2)]);
//! ```

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Error returned when an absolute-time schedule lands before the engine's
/// current clock. Recoverable by contract: simulation models decide whether
/// a late schedule is a bug (propagate it) or a race to clamp to `now`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePastError {
    /// The requested (past) timestamp.
    pub at: SimTime,
    /// The engine clock at the time of the request.
    pub now: SimTime,
}

impl std::fmt::Display for SchedulePastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scheduling into the past: {} < {} (engine clock)",
            self.at, self.now
        )
    }
}

impl std::error::Error for SchedulePastError {}

/// A discrete-event simulation engine over event payload type `E`.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
}

// Manual impl: payloads need not be `Debug`.
impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("processed", &self.processed)
            .finish_non_exhaustive()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Errors
    /// Returns [`SchedulePastError`] (scheduling nothing) when `at` is
    /// before the current clock — events cannot fire before `now`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> Result<EventId, SchedulePastError> {
        if at < self.now {
            return Err(SchedulePastError { at, now: self.now });
        }
        Ok(self.queue.push(at, event))
    }

    /// Schedule a batch of `(time, event)` pairs in one call, returning the
    /// ids in input order. The batch is atomic: if any timestamp is in the
    /// past, *nothing* is scheduled and the first offending time is
    /// reported. This is the entry point the scatter-gather access engine
    /// uses to turn one per-holder completion list into one queue insertion
    /// pass (see `lmp_core::batch::schedule_holder_completions`).
    ///
    /// # Errors
    /// Returns [`SchedulePastError`] for the earliest-indexed pair whose
    /// time precedes the current clock; no event from the batch is queued.
    pub fn schedule_batch<I>(&mut self, items: I) -> Result<Vec<EventId>, SchedulePastError>
    where
        I: IntoIterator<Item = (SimTime, E)>,
    {
        let items: Vec<(SimTime, E)> = items.into_iter().collect();
        for (at, _) in &items {
            if *at < self.now {
                return Err(SchedulePastError {
                    at: *at,
                    now: self.now,
                });
            }
        }
        let mut ids = Vec::with_capacity(items.len());
        for (at, ev) in items {
            ids.push(self.queue.push(at, ev));
        }
        Ok(ids)
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.queue.push(self.now + delay, event)
    }

    /// Schedule `event` at the current instant (fires after all events
    /// already scheduled for `now`, preserving FIFO order).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.queue.push(self.now, event)
    }

    /// Cancel a pending event; returns whether it was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Deliver a single event, advancing the clock to its timestamp.
    /// Returns `false` when the queue is empty.
    pub fn step<F: FnMut(&mut Engine<E>, E)>(&mut self, handler: &mut F) -> bool {
        match self.queue.pop() {
            Some((at, _, ev)) => {
                debug_assert!(at >= self.now);
                self.now = at;
                self.processed += 1;
                handler(self, ev);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains.
    pub fn run<F: FnMut(&mut Engine<E>, E)>(&mut self, mut handler: F) {
        while self.step(&mut handler) {}
    }

    /// Run until the queue drains or the clock would pass `deadline`.
    /// Events scheduled strictly after `deadline` stay pending; the clock is
    /// left at the last delivered event (or `deadline` if nothing fired late).
    pub fn run_until<F: FnMut(&mut Engine<E>, E)>(&mut self, deadline: SimTime, mut handler: F) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step(&mut handler);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run until `stop` returns true (checked after each event) or the queue
    /// drains. Useful for "run until this request completes" patterns.
    pub fn run_while<F, P>(&mut self, mut handler: F, mut keep_going: P)
    where
        F: FnMut(&mut Engine<E>, E),
        P: FnMut(&Engine<E>) -> bool,
    {
        while keep_going(self) && self.step(&mut handler) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_nanos(100), Ev::Tick(1))
            .expect("future schedule");
        let mut fired = 0;
        eng.run(|eng, _| {
            fired += 1;
            assert_eq!(eng.now().as_nanos(), 100);
        });
        assert_eq!(fired, 1);
        assert_eq!(eng.events_processed(), 1);
    }

    #[test]
    fn handler_can_chain_events() {
        let mut eng = Engine::new();
        eng.schedule_now(Ev::Tick(0));
        let mut count = 0u32;
        eng.run(|eng, Ev::Tick(n)| {
            count += 1;
            if n < 9 {
                eng.schedule_after(SimDuration::from_nanos(1), Ev::Tick(n + 1));
            }
        });
        assert_eq!(count, 10);
        assert_eq!(eng.now().as_nanos(), 9);
    }

    #[test]
    fn run_until_leaves_future_events_pending() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_nanos(5), Ev::Tick(1))
            .expect("future schedule");
        eng.schedule_at(SimTime::from_nanos(50), Ev::Tick(2))
            .expect("future schedule");
        let mut fired = Vec::new();
        eng.run_until(SimTime::from_nanos(10), |_, Ev::Tick(n)| fired.push(n));
        assert_eq!(fired, [1]);
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.now().as_nanos(), 10);
    }

    #[test]
    fn schedule_in_past_is_a_recoverable_error() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_nanos(10), Ev::Tick(1))
            .expect("future schedule");
        let mut err = None;
        eng.run(|eng, _| {
            err = eng.schedule_at(SimTime::from_nanos(5), Ev::Tick(2)).err();
        });
        let err = err.expect("past schedule must be rejected");
        assert_eq!(err.at.as_nanos(), 5);
        assert_eq!(err.now.as_nanos(), 10);
        assert!(err.to_string().contains("scheduling into the past"));
        // Nothing was queued and the engine keeps working.
        assert_eq!(eng.pending(), 0);
        assert_eq!(eng.events_processed(), 1);
        assert!(eng.schedule_at(SimTime::from_nanos(11), Ev::Tick(3)).is_ok());
    }

    #[test]
    fn schedule_batch_returns_ids_in_input_order() {
        let mut eng = Engine::new();
        let ids = eng
            .schedule_batch([
                (SimTime::from_nanos(30), Ev::Tick(3)),
                (SimTime::from_nanos(10), Ev::Tick(1)),
                (SimTime::from_nanos(20), Ev::Tick(2)),
            ])
            .expect("all future");
        assert_eq!(ids.len(), 3);
        assert!(ids[0].as_u64() < ids[1].as_u64() && ids[1].as_u64() < ids[2].as_u64());
        let mut fired = Vec::new();
        eng.run(|_, Ev::Tick(n)| fired.push(n));
        assert_eq!(fired, [1, 2, 3]);
    }

    #[test]
    fn schedule_batch_is_atomic_on_error() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_nanos(10), Ev::Tick(0))
            .expect("future schedule");
        let mut outcome = None;
        eng.run(|eng, Ev::Tick(n)| {
            if n == 0 {
                outcome = Some(eng.schedule_batch([
                    (SimTime::from_nanos(20), Ev::Tick(1)),
                    (SimTime::from_nanos(3), Ev::Tick(2)), // in the past
                    (SimTime::from_nanos(30), Ev::Tick(3)),
                ]));
            }
        });
        let err = outcome
            .expect("batch attempted")
            .expect_err("past time must fail the whole batch");
        assert_eq!(err.at.as_nanos(), 3);
        // Atomic: the valid pairs were not scheduled either.
        assert_eq!(eng.pending(), 0);
        assert_eq!(eng.events_processed(), 1);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut eng = Engine::new();
        let id = eng
            .schedule_at(SimTime::from_nanos(5), Ev::Tick(1))
            .expect("future schedule");
        eng.schedule_at(SimTime::from_nanos(6), Ev::Tick(2))
            .expect("future schedule");
        assert!(eng.cancel(id));
        let mut fired = Vec::new();
        eng.run(|_, Ev::Tick(n)| fired.push(n));
        assert_eq!(fired, [2]);
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut eng = Engine::new();
        for i in 0..100 {
            eng.schedule_at(SimTime::from_nanos(i), Ev::Tick(i as u32))
                .expect("future schedule");
        }
        let mut fired = 0;
        eng.run_while(|_, _| fired += 1, |e| e.events_processed() < 10);
        assert_eq!(fired, 10);
        assert_eq!(eng.pending(), 90);
    }
}
