//! Deterministic pending-event set.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`] with FIFO
//! tie-breaking: two events scheduled for the same instant pop in the order
//! they were pushed. That makes whole-simulation runs reproducible, which the
//! benchmark harness depends on. Events can be cancelled by id in O(1)
//! without scanning the structure (lazy deletion).
//!
//! The production implementation is the zero-steady-state-allocation
//! [`crate::calendar::CalendarQueue`], re-exported here under its historical
//! name. The original `BinaryHeap + BTreeSet` implementation survives as
//! [`reference::BinaryHeapQueue`]: it is the executable specification the
//! differential tests (`tests/queue_equivalence.rs`) and the `simbench`
//! baseline drive against the calendar queue, never the hot path.

pub use crate::calendar::CalendarQueue as EventQueue;

/// Identifier of a scheduled event, unique within one queue's lifetime.
///
/// Ids are the queue's monotone push sequence (the first push gets 0), a
/// contract both implementations share and the differential tests pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number (stable across queue implementations).
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// The original heap-based queue, kept as a reference model.
pub mod reference {
    use super::EventId;
    use crate::time::SimTime;
    use std::cmp::Ordering;
    use std::collections::{BTreeSet, BinaryHeap};

    struct Entry<E> {
        at: SimTime,
        seq: u64,
        id: EventId,
        payload: E,
    }

    // Reverse ordering: BinaryHeap is a max-heap, we want earliest-first with
    // lowest-sequence-first tie-breaking.
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}

    /// The pre-calendar event queue: `O(log n)` push/pop over a
    /// `BinaryHeap`, `O(log n)` cancellation through a `BTreeSet` of
    /// pending ids. Behaviourally identical to
    /// [`crate::calendar::CalendarQueue`] (same ids, same pop order, same
    /// cancel semantics); exists only as the differential-test oracle and
    /// the `simbench` speedup baseline.
    pub struct BinaryHeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        /// Ids currently in the heap and not cancelled.
        pending: BTreeSet<EventId>,
        next_seq: u64,
    }

    // Manual impl: payloads need not be `Debug`, so summarize the queue shape.
    impl<E> std::fmt::Debug for BinaryHeapQueue<E> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("BinaryHeapQueue")
                .field("pending", &self.pending.len())
                .field("next_seq", &self.next_seq)
                .finish_non_exhaustive()
        }
    }

    impl<E> Default for BinaryHeapQueue<E> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<E> BinaryHeapQueue<E> {
        /// An empty queue.
        pub fn new() -> Self {
            BinaryHeapQueue {
                heap: BinaryHeap::new(),
                pending: BTreeSet::new(),
                next_seq: 0,
            }
        }

        /// Schedule `payload` to fire at `at`. Returns an id usable with
        /// [`BinaryHeapQueue::cancel`].
        pub fn push(&mut self, at: SimTime, payload: E) -> EventId {
            let seq = self.next_seq;
            self.next_seq += 1;
            let id = EventId(seq);
            self.heap.push(Entry {
                at,
                seq,
                id,
                payload,
            });
            self.pending.insert(id);
            id
        }

        /// Cancel a previously scheduled event. Returns `true` if the event
        /// was still pending (it will never be delivered), `false` if it
        /// already fired or was already cancelled.
        pub fn cancel(&mut self, id: EventId) -> bool {
            self.pending.remove(&id)
        }

        /// Remove and return the earliest live event as `(time, id, payload)`.
        pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
            while let Some(entry) = self.heap.pop() {
                if self.pending.remove(&entry.id) {
                    return Some((entry.at, entry.id, entry.payload));
                }
                // else: cancelled entry, skip it.
            }
            None
        }

        /// The timestamp of the earliest live event, without removing it.
        pub fn peek_time(&mut self) -> Option<SimTime> {
            // Drain cancelled heads so the answer reflects a live event.
            while let Some(entry) = self.heap.peek() {
                if self.pending.contains(&entry.id) {
                    return Some(entry.at);
                }
                self.heap.pop();
            }
            None
        }

        /// Number of live (non-cancelled) pending events.
        pub fn len(&self) -> usize {
            self.pending.len()
        }

        /// True when no live events are pending.
        pub fn is_empty(&self) -> bool {
            self.pending.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::BinaryHeapQueue;
    use super::*;
    use crate::time::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    // The reference model must itself honor the queue contract: the
    // differential tests lean on it as the oracle.

    #[test]
    fn reference_pops_in_time_order() {
        let mut q = BinaryHeapQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn reference_ties_break_fifo() {
        let mut q = BinaryHeapQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn reference_cancel_prevents_delivery() {
        let mut q = BinaryHeapQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, _, p)| p), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn reference_cancel_after_fire_is_noop() {
        let mut q = BinaryHeapQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.pop().is_some());
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn reference_cancel_unknown_id_is_noop() {
        let mut q: BinaryHeapQueue<()> = BinaryHeapQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn reference_double_cancel_counts_once() {
        let mut q = BinaryHeapQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn reference_peek_time_skips_cancelled() {
        let mut q = BinaryHeapQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
    }

    #[test]
    fn reference_is_empty_tracks_live_count() {
        let mut q = BinaryHeapQueue::new();
        assert!(q.is_empty());
        let a = q.push(t(1), 0);
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn both_implementations_hand_out_the_same_ids() {
        let mut cal: EventQueue<u8> = EventQueue::new();
        let mut heap: BinaryHeapQueue<u8> = BinaryHeapQueue::new();
        for i in 0..10 {
            let a = cal.push(t(100 - i), 0);
            let b = heap.push(t(100 - i), 0);
            assert_eq!(a, b);
        }
    }
}
